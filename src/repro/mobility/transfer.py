"""The migration protocol: ship an object to another site as data.

The sequence follows the paper's Import/Export narrative (Section 5),
hardened into an idempotent **two-phase handoff** so that a migration
survives dropped, duplicated, reordered and delayed messages with
exactly one live copy of the object at the end:

1. **PREPARE** — the sender packs the object and ships it under a fresh
   *transfer id* (a per-site package sequence number). The request is
   retried with timeout and backoff; every retry carries the same id.
2. **settle** — the receiving :class:`MobilityManager` runs its
   *admission policy* (the host restricting the guest — one half of the
   security duality), unpacks, registers and installs the object, and
   records the outcome in its transfer ledger. A re-delivered PREPARE —
   a network duplicate or a retry whose first copy already settled — is
   suppressed by the ledger and answered with the recorded report.
3. **ACK** — the settle report travels back as the reply. Only on a
   confirmed ACK does the sender unregister its original; a rejected or
   failed transfer leaves the object exactly where it was.

If every attempt times out the transfer is *unresolved* (the PREPARE may
or may not have settled remotely): the sender keeps its original, records
the transfer id, and raises
:class:`~repro.core.errors.TransferUnresolvedError`.
:meth:`MobilityManager.reconcile` later asks the destination
(``transfer.query``) and either completes the move (unregister the
original) or confirms the abort — the destination marks never-seen ids
*aborted* on query, so a PREPARE that is still crawling through the
network when the verdict falls is refused on arrival. The result is
exactly-once migration under any message-fault schedule, given eventual
connectivity.

Two modes:

* :meth:`MobilityManager.migrate` *moves* the object (unregisters the
  local original — there is exactly one of it afterwards);
* :meth:`MobilityManager.deploy_copy` ships an independent replica and
  keeps the original (how an APO deploys Ambassadors to many sites).

A ``forward`` request lets a remote party that is entitled to do so bounce
an object onward to a third site — the hop primitive multi-site agent
itineraries are built from. Forwards ride the same two-phase machinery.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Mapping, Sequence

from ..core.acl import Principal
from ..core.errors import (
    MobilityError,
    MROMError,
    PolicyViolationError,
    RemoteInvocationError,
    RequestTimeoutError,
    TransferUnresolvedError,
)
from ..core.mobject import MROMObject
from ..net.rmi import RemoteRef, RetryPolicy
from ..net.site import Site
from ..net.transport import Message
from ..telemetry import state as _telemetry
from ..telemetry.context import TraceContext
from .package import pack, unpack

__all__ = ["MobilityManager", "InstallReport"]

#: signature: policy(package, src_site_id) -> None or raise PolicyViolationError
AdmissionPolicy = Callable[[Mapping, str], None]


class InstallReport(dict):
    """What a completed transfer reports back (a plain mapping on the
    wire): the settled object's guid, site, and its ``install`` result."""


class MobilityManager:
    """Attaches the migration protocol to a :class:`~repro.net.site.Site`."""

    #: receiver-side dedup table size: settled/aborted transfer ids kept
    _LEDGER_CAP = 1024

    def __init__(
        self,
        site: Site,
        policy: AdmissionPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        verify_arrivals: bool = False,
        strict_admission: bool = False,
    ):
        self.site = site
        if verify_arrivals:
            # the opt-in admission gate: run the static admission analysis
            # over every arriving package at PREPARE, before the caller's
            # own policy and before anything is unpacked. Lazy import —
            # the analysis subsystem depends on this module.
            from ..analysis.admission import admission_policy

            gate = admission_policy(strict=strict_admission)
            if policy is None:
                policy = gate
            else:
                caller_policy = policy

                def policy(package: Mapping, src: str) -> None:
                    gate(package, src)
                    caller_policy(package, src)

        self.policy = policy
        #: per-manager override for outgoing transfer requests; None
        #: falls through to the site's default retry policy
        self.retry_policy = retry_policy
        self.arrivals = 0
        self.departures = 0
        self.rejections = 0
        self.duplicates_suppressed = 0
        self._transfer_seq = itertools.count(1)
        self._ledger: OrderedDict[str, dict] = OrderedDict()
        #: transfer_id -> {"guid", "dst", "mode"} for unresolved handoffs
        self.unresolved: dict[str, dict] = {}
        #: observers of transfer verdicts, called as
        #: ``hook(transfer_id, guid, dst, mode, outcome)`` with outcome
        #: ``"committed"`` or ``"aborted"`` — at the COMMIT/ABORT point of
        #: a handoff and when :meth:`reconcile` settles an ambiguous one.
        #: The cluster directory hangs its placement/lease update here so
        #: exactly-once transfer and lease invalidation land atomically.
        self.resolution_hooks: list[Callable[[str, str, str, str, str], None]] = []
        #: let the site's journal snapshot transfer state at checkpoints
        site.mobility = self
        site.add_handler("transfer", self._handle_transfer)
        site.add_handler("transfer.prepare", self._handle_prepare)
        site.add_handler("transfer.query", self._handle_query)
        site.add_handler("forward", self._handle_forward)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def migrate(
        self,
        obj: MROMObject,
        dst: str,
        install_args: Sequence[Any] = (),
    ) -> RemoteRef:
        """Move *obj* to *dst*; the local original ceases to exist here.

        The local object is unregistered only after the destination's
        confirmed ACK, so a rejected or failed transfer leaves the
        object where it was — and an ambiguous one (timeout) keeps it
        here too, flagged for :meth:`reconcile`.
        """
        report = self._handoff(obj, dst, install_args, mode="move")
        return RemoteRef(self.site, dst, str(report["guid"]))

    def deploy_copy(
        self,
        obj: MROMObject,
        dst: str,
        install_args: Sequence[Any] = (),
    ) -> RemoteRef:
        """Ship an independent replica of *obj* to *dst*, keeping the
        original registered here (the APO → Ambassador pattern)."""
        report = self._handoff(obj, dst, install_args, mode="copy")
        return RemoteRef(self.site, dst, str(report["guid"]))

    def preflight(self, obj: MROMObject, concurrency: bool = False) -> list:
        """Sender-side admission analysis of a live object.

        Returns the :class:`~repro.analysis.diagnostics.Diagnostic` list a
        destination running the admission gate would raise about *obj* —
        run it before :meth:`migrate` to avoid paying for a round trip
        that ends in an :class:`~repro.analysis.admission.AdmissionRefusal`.
        Pass ``concurrency=True`` to also see the ``adm.race.*``/
        ``adm.cycle.*`` advice a *strict* gate would veto on.
        """
        from ..analysis.admission import analyze_object

        return analyze_object(obj, concurrency=concurrency)

    def _notify(
        self, transfer_id: str, guid: str, dst: str, mode: str, outcome: str
    ) -> None:
        for hook in list(self.resolution_hooks):
            hook(transfer_id, guid, dst, mode, outcome)

    def _mint_transfer_id(self) -> str:
        """A package sequence number, unique across site incarnations."""
        return (
            f"xfer:{self.site.site_id}#{self.site.incarnation}"
            f":{next(self._transfer_seq)}"
        )

    def _handoff(
        self, obj: MROMObject, dst: str, install_args: Sequence[Any], mode: str
    ) -> Mapping:
        tel = _telemetry.ACTIVE
        span = None
        trace_stamp = None
        if tel is not None:
            span = tel.begin_span(
                "transfer.handoff",
                attrs={
                    "mode": mode,
                    "guid": obj.guid,
                    "src": self.site.site_id,
                    "dst": dst,
                    "sim_time": self.site.network.now,
                },
            )
            # the package carries the handoff span's context: the object's
            # journey stamp, readable by the receiving host
            trace_stamp = tel.context_of(span).to_wire()
        package = pack(obj, trace=trace_stamp)
        transfer_id = self._mint_transfer_id()
        journal = self.site.journal
        if journal is not None:
            # write-ahead intent: if this incarnation dies between
            # PREPARE and COMMIT, recovery re-raises the transfer as
            # unresolved and reconcile() settles it via transfer.query
            journal.note_intent(
                transfer_id, {"guid": obj.guid, "dst": dst, "mode": mode}
            )
        if span is not None:
            span.set(transfer_id=transfer_id)
            span.event("PREPARE", transfer_id=transfer_id,
                       sim_time=self.site.network.now)
        try:
            report = self.site.request(
                dst,
                "transfer.prepare",
                {
                    "transfer_id": transfer_id,
                    "package": package,
                    "install_args": list(install_args),
                },
                policy=self.retry_policy,
            )
        except RemoteInvocationError as exc:
            # the destination answered and refused: nothing settled there
            if journal is not None:
                journal.note_resolved(transfer_id, "aborted")
            if span is not None:
                span.event("ABORT", reason=type(exc).__name__,
                           sim_time=self.site.network.now)
                tel.end_span(span, status="aborted")
                tel.metrics.counter("transfers.refused").inc()
            self._notify(transfer_id, obj.guid, dst, mode, "aborted")
            raise
        except RequestTimeoutError as exc:
            # ambiguous: the PREPARE may have settled; keep the original
            # and leave the verdict to reconcile()
            self.unresolved[transfer_id] = {
                "guid": obj.guid, "dst": dst, "mode": mode,
            }
            if span is not None:
                span.event("UNRESOLVED", transfer_id=transfer_id,
                           sim_time=self.site.network.now)
                tel.end_span(span, status="unresolved")
                tel.metrics.counter("transfers.unresolved").inc()
            raise TransferUnresolvedError(transfer_id, obj.guid, dst) from exc
        except BaseException:
            # PartitionError before anything was sent propagates as-is:
            # the failure is atomic, the object never left
            if journal is not None:
                journal.note_resolved(transfer_id, "aborted")
            if span is not None:
                span.event("ABORT", reason="send-failure",
                           sim_time=self.site.network.now)
                tel.end_span(span, status="error")
            self._notify(transfer_id, obj.guid, dst, mode, "aborted")
            raise
        if not isinstance(report, Mapping):
            if span is not None:
                span.event("ABORT", reason="malformed-report")
                tel.end_span(span, status="error")
            raise MobilityError(f"malformed transfer report from {dst!r}")
        if mode == "move" and self.site.has_object(obj.guid):
            self.site.unregister_object(obj.guid)
        if journal is not None:
            journal.note_resolved(transfer_id, "committed")
        # the COMMIT point: the original is gone, the destination's copy
        # is the object — observers (the cluster directory) update
        # placements and leases here, inside the same verdict
        self._notify(transfer_id, obj.guid, dst, mode, "committed")
        self.departures += 1
        if span is not None:
            span.event("COMMIT", transfer_id=transfer_id,
                       sim_time=self.site.network.now)
            tel.end_span(span)
            tel.metrics.counter(
                "migrations" if mode == "move" else "deploys"
            ).inc()
        return report

    def reconcile(self) -> dict[str, str]:
        """Resolve unresolved transfers; returns transfer_id -> outcome.

        ``settled``: the destination installed the object — for a move,
        the local original is unregistered now (the deferred half of the
        handoff). ``aborted``: the destination never saw the PREPARE and
        has vetoed late arrivals — the original simply stays. Still
        unreachable destinations stay ``unreachable`` and keep their
        entry for a later reconcile.
        """
        tel = _telemetry.ACTIVE
        span = None
        if tel is not None and self.unresolved:
            span = tel.begin_span(
                "transfer.reconcile",
                attrs={
                    "site": self.site.site_id,
                    "pending": len(self.unresolved),
                },
            )
        outcomes: dict[str, str] = {}
        try:
            for transfer_id, entry in sorted(self.unresolved.items()):
                try:
                    status = self.site.request(
                        entry["dst"],
                        "transfer.query",
                        {"transfer_id": transfer_id},
                        policy=self.retry_policy,
                    )
                except MROMError:
                    outcomes[transfer_id] = "unreachable"
                    if span is not None:
                        span.event("reconcile.outcome",
                                   transfer_id=transfer_id,
                                   outcome="unreachable")
                    continue
                state = (
                    status.get("state") if isinstance(status, Mapping) else None
                )
                if state == "settled":
                    if entry["mode"] == "move" and self.site.has_object(
                        entry["guid"]
                    ):
                        self.site.unregister_object(entry["guid"])
                    self.departures += 1
                    outcomes[transfer_id] = "settled"
                    self._notify(transfer_id, entry["guid"], entry["dst"],
                                 entry["mode"], "committed")
                else:
                    outcomes[transfer_id] = "aborted"
                    self._notify(transfer_id, entry["guid"], entry["dst"],
                                 entry["mode"], "aborted")
                if span is not None:
                    span.event("reconcile.outcome", transfer_id=transfer_id,
                               outcome=outcomes[transfer_id])
                    tel.metrics.counter("transfers.reconciled").inc()
                journal = self.site.journal
                if journal is not None:
                    journal.note_resolved(transfer_id, outcomes[transfer_id])
                del self.unresolved[transfer_id]
        finally:
            if span is not None:
                tel.end_span(span)
        return outcomes

    def forward(
        self,
        via: str,
        guid: str,
        dst: str,
        install_args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> RemoteRef:
        """Ask site *via* to move its local object *guid* on to *dst*."""
        report = self.site.request(
            via,
            "forward",
            {
                "target": guid,
                "dst": dst,
                "install_args": list(install_args),
                "caller": self.site._caller_payload(caller),
            },
            policy=self.retry_policy,
        )
        if not isinstance(report, Mapping):
            raise MobilityError(f"malformed forward report from {via!r}")
        return RemoteRef(self.site, dst, str(report["guid"]))

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def _record(self, transfer_id: str, state: str, report: dict | None = None) -> None:
        if not transfer_id:
            return
        self._ledger[transfer_id] = {"state": state, "report": report}
        self._ledger.move_to_end(transfer_id)
        while len(self._ledger) > self._LEDGER_CAP:
            self._ledger.popitem(last=False)
        journal = self.site.journal
        if journal is not None:
            # durable dedup: a restarted receiver must still suppress
            # re-delivered PREPAREs and still veto queried-away ones
            journal.note_ledger(transfer_id, state, report)

    def _suppress_duplicate(self, transfer_id: str, cause: str) -> None:
        self.duplicates_suppressed += 1
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("transfer.dedup_hits").inc()
            current = tel.current_span
            if current is not None:
                current.event("transfer.duplicate",
                              transfer_id=transfer_id, cause=cause)

    def _handle_prepare(self, message: Message) -> dict:
        body = message.payload
        transfer_id = str(body.get("transfer_id", ""))
        entry = self._ledger.get(transfer_id) if transfer_id else None
        if entry is not None:
            if entry["state"] == "settled":
                # re-delivery (network duplicate, or a retry racing its
                # own first copy): answer with the recorded report
                self._suppress_duplicate(transfer_id, "ledger-replay")
                return dict(entry["report"])
            raise MobilityError(
                f"transfer {transfer_id} was aborted by reconciliation"
            )
        package = body.get("package")
        if not isinstance(package, Mapping):
            raise MobilityError("transfer message carries no package")
        guid = str(package.get("guid", ""))
        if guid and self.site.has_object(guid):
            # the object is already here — an earlier incarnation settled
            # it before a crash, or a checkpoint restore brought it back;
            # settle without installing a second copy
            self._suppress_duplicate(transfer_id, "already-resident")
            report = InstallReport(
                guid=guid, site=self.site.site_id, install_result=None
            )
            self._record(transfer_id, "settled", dict(report))
            return report
        install_args = self.site.import_value(body.get("install_args", []))
        report = self.install_package(package, install_args, src=message.src)
        self._record(transfer_id, "settled", dict(report))
        return report

    def _handle_query(self, message: Message) -> dict:
        transfer_id = str(message.payload.get("transfer_id", ""))
        entry = self._ledger.get(transfer_id)
        if entry is None:
            # never seen: veto it, so a PREPARE still in flight when the
            # sender gave up cannot settle afterwards and mint a second copy
            self._record(transfer_id, "aborted")
            return {"state": "aborted"}
        return {"state": entry["state"]}

    def _handle_transfer(self, message: Message) -> dict:
        """Legacy single-shot transfer (no transfer id, no dedup)."""
        body = message.payload
        package = body.get("package")
        if not isinstance(package, Mapping):
            raise MobilityError("transfer message carries no package")
        install_args = self.site.import_value(body.get("install_args", []))
        return self.install_package(package, install_args, src=message.src)

    def install_package(
        self,
        package: Mapping,
        install_args: Sequence[Any] = (),
        src: str = "",
    ) -> dict:
        """Admit, unpack and install a package that arrived as data.

        Shared by the transfer handler and by protocols that carry
        packages inside their own replies (HADAS Link and Import/Export).
        Wire references inside the package become live remote proxies
        before the object is rebuilt.
        """
        tel = _telemetry.ACTIVE
        if self.policy is not None:
            try:
                self.policy(package, src)
            except PolicyViolationError as exc:
                self.rejections += 1
                if tel is not None:
                    tel.metrics.counter("admission.refusals").inc()
                    current = tel.current_span
                    if current is not None:
                        current.event(
                            "admission.refused",
                            src=src,
                            guid=str(package.get("guid", "")),
                            reason=type(exc).__name__,
                        )
                raise
        obj = unpack(self.site.import_value(package))
        if tel is None:
            return self._install(obj, install_args)
        # parent preference: the journey stamp the sender packed with the
        # object; without one, nest under whatever span is serving this
        # request (begin_span falls back to the current context)
        span = tel.begin_span(
            "transfer.install",
            attrs={"site": self.site.site_id, "guid": obj.guid, "src": src,
                   "sim_time": self.site.network.now},
            parent=TraceContext.from_wire(package.get("trace")),
        )
        try:
            report = self._install(obj, install_args)
        except BaseException as exc:
            span.set(error=type(exc).__name__)
            tel.end_span(span, status="error")
            raise
        tel.end_span(span)
        tel.metrics.counter("installs").inc()
        return report

    def _install(self, obj: MROMObject, install_args: Sequence[Any]) -> dict:
        # a migrated object's caches arrive cold on every tier — memo
        # tables and compiled closures alike. Compiled state is never
        # packaged (a closure pins handles of the *sender's* live object
        # and would be meaningless, and dangerous, here); unpack builds a
        # fresh object, and this reset keeps the guarantee even if
        # pack/unpack ever learns to carry live state across.
        obj.fastpath_reset()
        self.site.register_object(obj)
        # the installation context: what the host tells the newcomer
        obj.environment["install_context"] = {
            "site": self.site.site_id,
            "domain": self.site.domain,
            "arrived_at": self.site.network.now,
        }
        self.arrivals += 1
        install_result = None
        if obj.containers.has_method("install"):
            # "passes to it an installation context and invokes the
            # Ambassador, which in turn installs itself"
            try:
                install_result = obj.invoke(
                    "install", list(install_args), caller=self.site.principal
                )
            except MROMError:
                # a guest that cannot install does not stay: the sender
                # keeps its original on a failed transfer, so leaving the
                # copy registered would mint a second live object
                self.site.unregister_object(obj.guid)
                self.arrivals -= 1
                raise
        return InstallReport(
            guid=obj.guid,
            site=self.site.site_id,
            install_result=install_result,
        )

    def _handle_forward(self, message: Message) -> Mapping:
        body = message.payload
        guid = str(body.get("target", ""))
        dst = str(body.get("dst", ""))
        obj = self.site.local_object(guid)
        caller = self.site._caller_from(body.get("caller"))
        # only the object's owner (or this site itself) may bounce it on —
        # a hostile third party must not be able to teleport guests around
        if caller.guid not in (obj.owner.guid, self.site.principal.guid):
            raise PolicyViolationError(
                f"{caller.guid} may not forward {guid} (owner: {obj.owner.guid})"
            )
        return self._handoff(obj, dst, list(body.get("install_args", [])), mode="move")
