"""Code mobility: sandbox, packing, migration, itineraries."""

from .itinerary import AgentTour, AutonomousTour, Itinerary, make_collector_agent
from .package import (
    FORMAT,
    pack,
    pack_bytes,
    pack_frame,
    portability_report,
    unpack,
    unpack_bytes,
)
from .sandbox import ALLOWED_BUILTINS, build_function, compile_restricted, validate_source
from .transfer import InstallReport, MobilityManager

__all__ = [
    "pack",
    "pack_bytes",
    "pack_frame",
    "unpack",
    "unpack_bytes",
    "portability_report",
    "FORMAT",
    "MobilityManager",
    "InstallReport",
    "Itinerary",
    "AgentTour",
    "AutonomousTour",
    "make_collector_agent",
    "validate_source",
    "compile_restricted",
    "build_function",
    "ALLOWED_BUILTINS",
]
