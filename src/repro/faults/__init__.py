"""Deterministic fault injection for the simulated internetwork.

Everything here is seed-driven: a :class:`FaultPlane` binds each injector
to a random stream derived from the run seed, faults execute as ordinary
simulator events, and the plane's trace digest fingerprints the whole
schedule — so any chaos run can be replayed bit-for-bit from its seed.
See ``docs/FAULTS.md`` for the model and the exactly-once argument.
"""

from .injectors import (
    CrashRestartInjector,
    DropInjector,
    DurableCrashInjector,
    DuplicateInjector,
    JitterInjector,
    LinkFlapInjector,
    MessageInjector,
    ReorderInjector,
    ScheduledInjector,
)
from .plane import FaultPlane, FaultRecord, MessageInfo
from .scenario import CHAOS_POLICY, ChaosReport, run_chaos_scenario

__all__ = [
    "FaultPlane",
    "FaultRecord",
    "MessageInfo",
    "MessageInjector",
    "DropInjector",
    "DuplicateInjector",
    "ReorderInjector",
    "JitterInjector",
    "ScheduledInjector",
    "LinkFlapInjector",
    "CrashRestartInjector",
    "DurableCrashInjector",
    "ChaosReport",
    "run_chaos_scenario",
    "CHAOS_POLICY",
]
