"""The fault plane: a deterministic, seed-driven chaos controller.

A :class:`FaultPlane` attaches to a :class:`~repro.net.transport.Network`
and arbitrates every send. Message injectors (drop, duplicate, reorder,
jitter) issue a *verdict* per message; scheduled injectors (link flaps,
site crash/restart) arm themselves as ordinary simulator events. Every
random draw comes from a stream derived from ``(seed, injector name)``
via :meth:`~repro.sim.kernel.Simulator.derive_rng`, and the simulator
already fires equal-time events in scheduling order — so an identical
seed over an identical workload reproduces the *exact* same fault
schedule, message for message. The plane keeps a trace of everything it
did; :meth:`FaultPlane.digest` is the fingerprint reproducibility tests
compare.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..telemetry import state as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..net.transport import Network
    from .injectors import Injector, MessageInjector

__all__ = ["FaultPlane", "FaultRecord", "MessageInfo"]


@dataclass(frozen=True)
class MessageInfo:
    """What an injector gets to judge: metadata, never the payload."""

    time: float
    kind: str
    src: str
    dst: str
    msg_id: int
    size: int
    base_delay: float


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, fully attributed.

    Every injection carries the *scenario* name the plane was seeded
    under and a monotonically increasing *seq* number, so a fault seen
    in a span, a log line, or a bug report can be traced back to the
    exact seeded schedule (and position within it) that produced it.
    The legacy tuple trace (see :attr:`FaultPlane.trace`) is unchanged —
    this is the structured, attributable view of the same events.
    """

    seq: int
    scenario: str
    label: str
    time: float
    details: tuple


class FaultPlane:
    """Seeded fault arbiter for one network.

    >>> from repro.net import Network
    >>> from repro.sim import Simulator
    >>> from repro.faults import DropInjector, FaultPlane
    >>> plane = FaultPlane(Network(Simulator(7)), seed=7)
    >>> _ = plane.add(DropInjector(rate=0.5))
    """

    def __init__(
        self, network: "Network", seed: int | None = None, scenario: str = ""
    ):
        self.network = network
        self.seed = network.simulator.seed if seed is None else seed
        #: the named fault schedule this plane runs; defaults to the seed
        #: identity so every injection is attributable even when the
        #: caller never names the run
        self.scenario = scenario or f"seed:{self.seed}"
        self.trace: list[tuple] = []
        #: structured, attributed view of the trace (scenario + seq per fault)
        self.injections: list[FaultRecord] = []
        self._injection_seq = 0
        self.counts: Counter[str] = Counter()
        self._message_injectors: list["MessageInjector"] = []
        self._names: Counter[str] = Counter()
        network.fault_plane = self

    # -- wiring ------------------------------------------------------------

    def add(self, injector: "Injector") -> "Injector":
        """Register an injector, binding it to a derived random stream."""
        ordinal = self._names[injector.name]
        self._names[injector.name] += 1
        rng = random.Random(f"faults:{self.seed}:{injector.name}:{ordinal}")
        injector.bind(self, rng)
        if hasattr(injector, "judge"):
            self._message_injectors.append(injector)  # type: ignore[arg-type]
        else:
            injector.arm()  # type: ignore[union-attr]
        return injector

    # -- the send-path hook -------------------------------------------------

    def intercept(
        self,
        kind: str,
        src: str,
        dst: str,
        msg_id: int,
        size: int,
        base_delay: float,
    ) -> tuple[str, list[float]]:
        """Judge one message; returns ``(verdict, delivery delays)``.

        An empty delay list means the message is dropped; more than one
        means duplication. The verdict names every fault applied
        (``"drop"``, ``"duplicate+jitter"``, ...) or is ``"ok"``.
        """
        info = MessageInfo(
            time=self.network.simulator.now,
            kind=kind,
            src=src,
            dst=dst,
            msg_id=msg_id,
            size=size,
            base_delay=base_delay,
        )
        delays = [base_delay]
        labels: list[str] = []
        for injector in self._message_injectors:
            if not injector.applies(info):
                continue
            label, delays = injector.judge(info, delays)
            if label:
                labels.append(label)
            if not delays:
                break
        verdict = "+".join(labels) if labels else "ok"
        if verdict != "ok":
            for label in labels:
                self.counts[label] += 1
            self.record(verdict, kind, src, dst, msg_id)
        return verdict, delays

    # -- the trace ----------------------------------------------------------

    def record(self, label: str, *details) -> None:
        """Append one fault event to the reproducibility trace.

        The single funnel every injection passes through: it feeds the
        legacy tuple trace (whose :meth:`digest` reproducibility tests
        compare), the attributed :attr:`injections` list, and — when
        telemetry is enabled — tags the currently open span with a
        ``fault`` event and bumps the ``faults.injected`` counter.
        """
        now = round(self.network.simulator.now, 9)
        self.trace.append((now, label, *details))
        self._injection_seq += 1
        self.injections.append(
            FaultRecord(
                seq=self._injection_seq,
                scenario=self.scenario,
                label=label,
                time=now,
                details=tuple(details),
            )
        )
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("faults.injected").inc()
            current = tel.current_span
            if current is not None:
                current.event(
                    "fault",
                    label=label,
                    scenario=self.scenario,
                    seq=self._injection_seq,
                    sim_time=now,
                )
            tel.events.emit(
                "fault.injected",
                time=now,
                scenario=self.scenario,
                seq=self._injection_seq,
                label=label,
            )

    def digest(self) -> str:
        """A stable fingerprint of the whole fault schedule."""
        body = "\n".join(repr(entry) for entry in self.trace)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"FaultPlane(seed={self.seed}, "
            f"{len(self._message_injectors)} message injectors, "
            f"{len(self.trace)} trace entries)"
        )
