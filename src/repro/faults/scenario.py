"""The canonical chaos scenario: a seeded agent tour through hostile weather.

One function, :func:`run_chaos_scenario`, builds a deterministic world —
N sites on a WAN ring with chords, a collector agent, retrying sites, a
fault plane with the full injector set — runs a multi-pass itinerary
while links flap and one site crash-restarts from a checkpoint, then
reconciles, audits the single-live-copy invariant, and returns a
:class:`ChaosReport` whose rendered form is a pure function of the
parameters. ``repro chaos --seed N`` prints it; running the same seed
twice is bit-for-bit identical.

The crash model is fail-stop-with-image: at the crash instant the victim
site checkpoints its guests to an :class:`~repro.persistence.store.ObjectStore`
and its protocol ledgers (served-request replies, transfer ledger) to
memory, exactly the durable state a production host would keep in a
write-ahead log; the restarted incarnation restores both. That is what
lets exactly-once semantics span the restart.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import MROMError
from ..mobility import AgentTour, Itinerary, MobilityManager, make_collector_agent
from ..net import Network, RetryPolicy, Site, WAN
from ..persistence import ObjectStore, checkpoint_site, restore_site
from ..sim import Simulator
from .injectors import (
    CrashRestartInjector,
    DropInjector,
    DuplicateInjector,
    JitterInjector,
    LinkFlapInjector,
    ReorderInjector,
)
from .plane import FaultPlane

__all__ = ["ChaosReport", "run_chaos_scenario", "CHAOS_POLICY"]

#: generous enough to ride out the default flap outages and crash window
CHAOS_POLICY = RetryPolicy(
    attempts=6, timeout=0.75, backoff=0.25, multiplier=2.0, max_backoff=2.0
)


@dataclass
class ChaosReport:
    """Everything a chaos run observed, rendered deterministically."""

    seed: int
    sites: tuple[str, ...]
    itinerary: tuple[str, ...]
    completed: bool
    observations: list | None
    live_copies: int
    agent_at: tuple[str, ...]
    stray_objects: int
    unresolved: int
    faults: dict[str, int] = field(default_factory=dict)
    messages: dict[str, int] = field(default_factory=dict)
    trace_digest: str = ""
    sim_time: float = 0.0

    @property
    def ok(self) -> bool:
        """The exactly-once verdict: one live agent, nothing dangling."""
        return self.live_copies == 1 and self.unresolved == 0 and self.stray_objects == 0

    def to_lines(self) -> list[str]:
        lines = [
            f"chaos seed {self.seed}: {'OK' if self.ok else 'VIOLATED'}",
            f"sites:        {' '.join(self.sites)}",
            f"itinerary:    {' '.join(self.itinerary)}",
            f"completed:    {self.completed}",
            f"live copies:  {self.live_copies} (at: {' '.join(self.agent_at) or '-'})",
            f"stray objects: {self.stray_objects}",
            f"unresolved:   {self.unresolved}",
            f"sim time:     {self.sim_time:.6f}s",
        ]
        for label in sorted(self.faults):
            lines.append(f"fault {label:<12} {self.faults[label]}")
        for label in sorted(self.messages):
            lines.append(f"net {label:<14} {self.messages[label]}")
        lines.append(f"trace digest: {self.trace_digest}")
        if self.observations is not None:
            for stop, finding in self.observations:
                lines.append(f"observed {stop}: {finding!r}")
        return lines


def _build_world(seed: int, n_sites: int):
    simulator = Simulator(seed)
    network = Network(simulator)
    names = [f"site{i}" for i in range(n_sites)]
    sites: dict[str, Site] = {}
    managers: dict[str, MobilityManager] = {}
    for name in names:
        site = Site(network, name, f"dom.{name}")
        site.retry_policy = CHAOS_POLICY
        sites[name] = site
        managers[name] = MobilityManager(site)
    for index in range(n_sites):  # the WAN ring
        a, b = names[index], names[(index + 1) % n_sites]
        network.topology.connect(a, b, *WAN)
    if n_sites > 3:  # a chord, so a single flapping ring link rarely partitions
        network.topology.connect(names[0], names[n_sites // 2], *WAN)
    return network, names, sites, managers


def run_chaos_scenario(
    seed: int = 0,
    n_sites: int = 5,
    passes: int = 2,
    drop: float = 0.10,
    dup: float = 0.10,
    reorder: float = 0.05,
    jitter: float = 0.005,
    flap: bool = True,
    crash: bool = True,
    crash_at: float = 0.4,
    crash_down_for: float = 0.8,
    store_root: "Path | str | None" = None,
) -> ChaosReport:
    """Run the seeded chaos scenario; see the module docstring."""
    if n_sites < 3:
        raise MROMError("the chaos scenario needs at least 3 sites")
    network, names, sites, managers = _build_world(seed, n_sites)
    home = names[0]
    plane = FaultPlane(network, seed, scenario=f"chaos-{seed}")
    if drop > 0:
        plane.add(DropInjector(rate=drop))
    if dup > 0:
        plane.add(DuplicateInjector(rate=dup, spread=0.05))
    if reorder > 0:
        plane.add(ReorderInjector(rate=reorder, hold=0.1))
    if jitter > 0:
        plane.add(JitterInjector(max_jitter=jitter))
    if flap:
        # flap one ring link that the chord routes around
        victim_link = (names[1], names[2])
        plane.add(
            LinkFlapInjector(*victim_link, every=0.6, down_for=0.15, flaps=8)
        )

    tempdir: tempfile.TemporaryDirectory | None = None
    if crash:
        crash_site = names[n_sites // 2]
        if store_root is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            store_root = tempdir.name
        store = ObjectStore(Path(store_root) / crash_site)
        durable: dict = {}

        def on_crash(network: Network, site_id: str) -> None:
            site = sites[site_id]
            checkpoint_site(site, store)
            # the host's write-ahead log: protocol state survives the crash
            durable["served"] = dict(site._served)
            durable["ledger"] = dict(managers[site_id]._ledger)
            durable["unresolved"] = dict(managers[site_id].unresolved)
            network.unregister(site_id)

        def on_restart(network: Network, site_id: str) -> None:
            reborn = Site(network, site_id, f"dom.{site_id}")
            reborn.retry_policy = CHAOS_POLICY
            manager = MobilityManager(reborn)
            reborn._served.update(durable.get("served", {}))
            manager._ledger.update(durable.get("ledger", {}))
            manager.unresolved.update(durable.get("unresolved", {}))
            restore_site(reborn, store)
            sites[site_id] = reborn
            managers[site_id] = manager

        plane.add(
            CrashRestartInjector(
                crash_site, at=crash_at, down_for=crash_down_for,
                on_crash=on_crash, on_restart=on_restart,
            )
        )

    route_rng = random.Random(f"chaos:{seed}:itinerary")
    stops = names[1:]
    route_rng.shuffle(stops)
    itinerary = Itinerary(tuple(stops * passes))

    agent = make_collector_agent(sites[home])
    sites[home].register_object(agent)
    guid = agent.guid
    owner = agent.owner

    completed = True
    try:
        AgentTour(managers[home]).run(agent, itinerary)
    except MROMError:
        completed = False
    network.run()  # drain remaining traffic, flaps, the restart
    network.topology.heal()
    for _ in range(10):  # resolve every ambiguous handoff
        if not any(manager.unresolved for manager in managers.values()):
            break
        for name in sorted(managers):
            managers[name].reconcile()
        network.run()

    holders = tuple(
        name for name in sorted(sites) if sites[name].has_object(guid)
    )
    stray = sum(
        1
        for name in sites
        for obj in sites[name].objects()
        if obj.guid != guid
    )
    observations = None
    if len(holders) == 1:
        holder = sites[holders[0]]
        try:
            observations = holder.local_object(guid).invoke(
                "report", [], caller=owner
            )
        except MROMError:
            observations = None
    report = ChaosReport(
        seed=seed,
        sites=tuple(names),
        itinerary=tuple(itinerary.stops),
        completed=completed,
        observations=observations,
        live_copies=len(holders),
        agent_at=holders,
        stray_objects=stray,
        unresolved=sum(len(m.unresolved) for m in managers.values()),
        faults=dict(sorted(plane.counts.items())),
        messages={
            "sent": network.messages_sent,
            "dropped": network.messages_dropped,
            "duplicated": network.messages_duplicated,
            "undeliverable": network.messages_undeliverable,
            "stale_replies": sum(sites[n].stale_replies for n in sorted(sites)),
            "replayed": sum(sites[n].replayed_requests for n in sorted(sites)),
        },
        trace_digest=plane.digest(),
        sim_time=round(network.now, 6),
    )
    if tempdir is not None:
        tempdir.cleanup()
    return report
