"""The injectors: each models one failure from the threat taxonomy.

Two families:

* **Message injectors** sit on the send path and judge every message
  the :class:`~repro.faults.plane.FaultPlane` shows them — silent loss
  (:class:`DropInjector`), duplication (:class:`DuplicateInjector`),
  reordering by holding a message back (:class:`ReorderInjector`), and
  latency jitter (:class:`JitterInjector`).
* **Scheduled injectors** translate themselves into ordinary simulator
  events at arm time — link flapping (:class:`LinkFlapInjector`) and
  fail-stop site crash/restart (:class:`CrashRestartInjector`).

Every injector draws only from the random stream the plane binds to it
(derived from the run seed and the injector's name), which is what makes
a chaos schedule a pure function of the seed.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, TYPE_CHECKING

from ..core.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from ..net.transport import Network
    from .plane import FaultPlane, MessageInfo

__all__ = [
    "MessageInjector",
    "DropInjector",
    "DuplicateInjector",
    "ReorderInjector",
    "JitterInjector",
    "ScheduledInjector",
    "LinkFlapInjector",
    "CrashRestartInjector",
    "DurableCrashInjector",
]


class _Bound:
    """Shared plumbing: a name, a plane, and a derived random stream."""

    name = "injector"

    def __init__(self) -> None:
        self.plane: "FaultPlane | None" = None
        self.rng: random.Random = random.Random(0)

    def bind(self, plane: "FaultPlane", rng: random.Random) -> None:
        self.plane = plane
        self.rng = rng

    @property
    def network(self) -> "Network":
        assert self.plane is not None, f"{self.name} injector is not bound"
        return self.plane.network


class MessageInjector(_Bound):
    """Base class for per-message fault decisions.

    *rate* is the fault probability per applicable message; *only_kinds*
    / *skip_kinds* focus the injector on specific message kinds (e.g.
    only ``reply`` traffic); *limit* caps how many faults this injector
    may inject in total — handy for deterministic tests ("drop exactly
    the first two messages").
    """

    def __init__(
        self,
        rate: float = 1.0,
        only_kinds: Iterable[str] | None = None,
        skip_kinds: Iterable[str] = (),
        limit: int | None = None,
    ):
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"fault rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.only_kinds = frozenset(only_kinds) if only_kinds is not None else None
        self.skip_kinds = frozenset(skip_kinds)
        self.limit = limit
        self.injected = 0

    def applies(self, info: "MessageInfo") -> bool:
        if self.only_kinds is not None and info.kind not in self.only_kinds:
            return False
        return info.kind not in self.skip_kinds

    def _fires(self) -> bool:
        # the rng is consulted for every applicable message, fault or
        # not, so the stream stays aligned with the message sequence
        fires = self.rng.random() < self.rate
        if not fires:
            return False
        if self.limit is not None and self.injected >= self.limit:
            return False
        self.injected += 1
        return True

    def judge(
        self, info: "MessageInfo", delays: list[float]
    ) -> tuple[str | None, list[float]]:
        raise NotImplementedError


class DropInjector(MessageInjector):
    """Silent message loss: the message is never delivered."""

    name = "drop"

    def judge(self, info, delays):
        if self._fires():
            return "drop", []
        return None, delays


class DuplicateInjector(MessageInjector):
    """The message arrives twice, the copy trailing by up to *spread*."""

    name = "duplicate"

    def __init__(self, rate: float = 1.0, spread: float = 0.05, **kwargs):
        super().__init__(rate, **kwargs)
        self.spread = spread

    def judge(self, info, delays):
        gap = self.rng.uniform(0.0, self.spread)
        if self._fires():
            return "duplicate", delays + [delays[0] + gap]
        return None, delays


class ReorderInjector(MessageInjector):
    """Hold a message back so later traffic overtakes it."""

    name = "reorder"

    def __init__(self, rate: float = 1.0, hold: float = 0.25, **kwargs):
        super().__init__(rate, **kwargs)
        self.hold = hold

    def judge(self, info, delays):
        pause = self.rng.uniform(0.5, 1.5) * self.hold
        if self._fires():
            return "reorder", [delay + pause for delay in delays]
        return None, delays


class JitterInjector(MessageInjector):
    """Additive latency noise on every delivery of the message."""

    name = "jitter"

    def __init__(self, max_jitter: float = 0.01, rate: float = 1.0, **kwargs):
        super().__init__(rate, **kwargs)
        self.max_jitter = max_jitter

    def judge(self, info, delays):
        noise = self.rng.uniform(0.0, self.max_jitter)
        if self._fires():
            return "jitter", [delay + noise for delay in delays]
        return None, delays


class ScheduledInjector(_Bound):
    """Base class for injectors that act through simulator events."""

    def arm(self) -> None:
        raise NotImplementedError


class LinkFlapInjector(ScheduledInjector):
    """Take one link down and up repeatedly on a seeded rhythm.

    The first flap starts uniformly within one *every* interval; each
    outage lasts *down_for* seconds; successive flaps are spaced by
    0.5–1.5 × *every*; *flaps* bounds the total number of outages.
    Messages crossing the dead link fail at send time with
    :class:`~repro.core.errors.PartitionError`, exactly like a real
    partition — retry policies are what survive this injector.
    """

    name = "flap"

    def __init__(self, a: str, b: str, every: float = 1.0,
                 down_for: float = 0.25, flaps: int = 10):
        super().__init__()
        self.a = a
        self.b = b
        self.every = every
        self.down_for = down_for
        self.flaps = flaps
        self._remaining = flaps

    def arm(self) -> None:
        first = self.rng.uniform(0.0, self.every)
        self.network.simulator.schedule(
            first, self._down, label=f"flap-down {self.a}<->{self.b}"
        )

    def _down(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        self.network.topology.set_link_state(self.a, self.b, False)
        self.plane.record("flap-down", self.a, self.b)
        self.plane.counts["flap"] += 1
        self.network.simulator.schedule(
            self.down_for, self._up, label=f"flap-up {self.a}<->{self.b}"
        )

    def _up(self) -> None:
        self.network.topology.set_link_state(self.a, self.b, True)
        self.plane.record("flap-up", self.a, self.b)
        if self._remaining > 0:
            gap = self.rng.uniform(0.5, 1.5) * self.every
            self.network.simulator.schedule(
                gap, self._down, label=f"flap-down {self.a}<->{self.b}"
            )


class CrashRestartInjector(ScheduledInjector):
    """Fail-stop one site at *at*, bring it back *down_for* later.

    The crash model is fail-stop-with-image: *on_crash* (default:
    unregister the endpoint) may checkpoint first, and *on_restart*
    rebuilds the site — typically a fresh :class:`~repro.net.site.Site`
    restored from the checkpoint (see
    :func:`repro.faults.scenario.run_chaos_scenario` for the canonical
    wiring). While the site is down, sends to it fail and in-flight
    deliveries are dropped by the transport.
    """

    name = "crash"

    def __init__(
        self,
        site_id: str,
        at: float,
        down_for: float = 1.0,
        on_crash: Callable[["Network", str], None] | None = None,
        on_restart: Callable[["Network", str], None] | None = None,
        grace: float = 0.05,
    ):
        super().__init__()
        self.site_id = site_id
        self.at = at
        self.down_for = down_for
        self.on_crash = on_crash
        self.on_restart = on_restart
        self.grace = grace

    def arm(self) -> None:
        self.network.simulator.schedule(
            self.at, self._crash, label=f"crash {self.site_id}"
        )

    def _crash(self) -> None:
        if not self.network.is_live(self.site_id):
            return  # already down (e.g. crashed by another injector)
        endpoint = self.network.endpoint(self.site_id)
        if getattr(endpoint, "handling_depth", 0) > 0:
            # fail-stop at a quiescent instant: a handler frame cannot be
            # killed mid-flight in-process, so the crash waits it out
            self.network.simulator.schedule(
                self.grace, self._crash, label=f"crash {self.site_id}"
            )
            return
        if self.on_crash is not None:
            self.on_crash(self.network, self.site_id)
        else:
            self.network.unregister(self.site_id)
        self.plane.record("crash", self.site_id)
        self.plane.counts["crash"] += 1
        self.network.simulator.schedule(
            self.down_for, self._restart, label=f"restart {self.site_id}"
        )

    def _restart(self) -> None:
        if self.on_restart is not None:
            self.on_restart(self.network, self.site_id)
        self.plane.record("restart", self.site_id)


class DurableCrashInjector(ScheduledInjector):
    """Kill a whole site repeatedly and restart it from its WAL.

    The durable sibling of :class:`CrashRestartInjector`: no checkpoint
    is taken at the crash instant — durability must already be on disk,
    that is the point — and the site's journal is *closed* first, so
    nothing the dead incarnation does afterwards (late scheduled serves,
    stale replies) can reach the log. *recover* is the restart procedure
    (typically wrapping :func:`repro.persistence.recovery.recover_site`);
    it runs once per cycle, *cycles* times, with successive crashes
    spaced by 0.5–1.5 × *every* on the injector's seeded stream.

    Like its sibling, the crash fires only at a quiescent instant
    (``handling_depth == 0``), retrying every *grace* seconds — an
    in-process simulation cannot kill a handler frame mid-flight, so
    torn in-flight writes are exercised through the WAL corpus instead.
    """

    name = "crash"

    def __init__(
        self,
        site_id: str,
        recover: Callable[["Network", str], None],
        at: float = 0.5,
        down_for: float = 0.4,
        cycles: int = 1,
        every: float = 1.2,
        grace: float = 0.05,
    ):
        super().__init__()
        self.site_id = site_id
        self.recover = recover
        self.at = at
        self.down_for = down_for
        self.cycles = cycles
        self.every = every
        self.grace = grace
        self.completed = 0

    def arm(self) -> None:
        self.network.simulator.schedule(
            self.at, self._crash, label=f"crash {self.site_id}"
        )

    def _crash(self) -> None:
        if not self.network.is_live(self.site_id):
            # down through some other injector; try again shortly rather
            # than dropping a cycle from the schedule
            self.network.simulator.schedule(
                self.grace, self._crash, label=f"crash {self.site_id}"
            )
            return
        endpoint = self.network.endpoint(self.site_id)
        if getattr(endpoint, "handling_depth", 0) > 0:
            self.network.simulator.schedule(
                self.grace, self._crash, label=f"crash {self.site_id}"
            )
            return
        journal = getattr(endpoint, "journal", None)
        if journal is not None:
            journal.close()  # the fail-stop instant: the log goes silent
        self.network.unregister(self.site_id)
        self.plane.record("crash", self.site_id, self.completed + 1)
        self.plane.counts["crash"] += 1
        self.network.simulator.schedule(
            self.down_for, self._restart, label=f"restart {self.site_id}"
        )

    def _restart(self) -> None:
        self.recover(self.network, self.site_id)
        self.completed += 1
        self.plane.record("restart", self.site_id, self.completed)
        self.plane.counts["restart"] += 1
        if self.completed < self.cycles:
            gap = self.rng.uniform(0.5, 1.5) * self.every
            self.network.simulator.schedule(
                gap, self._crash, label=f"crash {self.site_id}"
            )
