"""Setup shim: enables legacy editable installs where the environment
lacks the `wheel` package required by PEP 660 (offline installs)."""
from setuptools import setup

setup()
