"""FIG-1 / PERF-2: invocation cost vs meta-invoke tower depth.

The paper implements level 0 as a primitive precisely because a
reflective level "can be implemented in a more efficient way" below the
tower; each additional meta-invoke level should add a roughly constant
increment. This bench regenerates the series: latency at levels 0..4,
plus the marginal per-level cost.
"""

import pytest

from repro.core import MROMObject, Principal, allow_all

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")
PASS_THROUGH = "return ctx.proceed()"


def build_tower(levels: int) -> MROMObject:
    obj = MROMObject(display_name=f"tower{levels}", owner=OWNER, extensible_meta=True)
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method("Mfoo", "return args[0] + 1")
    obj.seal()
    for _ in range(levels):
        obj.invoke(
            "addMethod",
            ["invoke", PASS_THROUGH, {"acl": allow_all().describe()}],
            caller=OWNER,
        )
    return obj


@pytest.mark.parametrize("levels", [0, 1, 2, 3, 4])
def test_invocation_at_level(benchmark, levels):
    obj = build_tower(levels)
    result = benchmark(lambda: obj.invoke("Mfoo", [41], caller=OWNER))
    assert result == 42


def test_fig1_series(benchmark):
    objs = {levels: build_tower(levels) for levels in range(5)}
    times = {
        levels: time_per_call(lambda o=obj: o.invoke("Mfoo", [1], caller=OWNER))
        for levels, obj in objs.items()
    }
    rows = []
    for levels in range(5):
        marginal = times[levels] - times[levels - 1] if levels else 0.0
        rows.append(
            (
                levels,
                times[levels] * 1e6,
                marginal * 1e6,
                times[levels] / times[0],
            )
        )
    emit(
        "fig1_invocation_levels",
        "FIG-1 / PERF-2: invocation latency vs meta-invoke tower depth",
        ["levels", "us/call", "marginal_us", "vs_level0"],
        rows,
    )
    # the shape the paper predicts: monotone growth, roughly linear
    assert times[1] > times[0]
    assert times[4] > times[2] > times[0]
    benchmark(lambda: objs[2].invoke("Mfoo", [1], caller=OWNER))


def test_primitive_bypass_is_depth_independent(benchmark):
    deep = build_tower(4)
    via_tower = time_per_call(lambda: deep.invoke("Mfoo", [1], caller=OWNER))
    primitive = time_per_call(
        lambda: deep.invoke_primitive("Mfoo", [1], caller=OWNER)
    )
    assert primitive < via_tower
    benchmark(lambda: deep.invoke_primitive("Mfoo", [1], caller=OWNER))
