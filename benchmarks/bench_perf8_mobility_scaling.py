"""PERF-8 (ablation): what migration itself costs as objects grow.

DESIGN.md's substitution table claims source-carried code + eager
verification preserves the JVM's verify-then-run economics; this bench
quantifies the pipeline: pack -> wire-encode -> admission-verify ->
unpack -> first-invocation compile, as the object's method count and
data payload grow. Also prices the eager-vs-lazy verification choice
(HostPolicy ablation).
"""

from repro.core import MROMObject, Principal
from repro.mobility import pack, pack_bytes, unpack
from repro.net.marshal import unmarshal
from repro.security import HostPolicy

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")

BODY = (
    "total = 0\n"
    "for value in args:\n"
    "    total = total + value\n"
    "return total"
)


def build(methods: int, payload_rows: int) -> MROMObject:
    obj = MROMObject(display_name=f"m{methods}-p{payload_rows}", owner=OWNER)
    obj.define_fixed_data(
        "payload", {f"row{index}": "x" * 40 for index in range(payload_rows)}
    )
    for index in range(methods):
        obj.define_fixed_method(f"op{index}", BODY)
    obj.seal()
    return obj


def test_perf8_pipeline_series(benchmark):
    shapes = [(2, 10), (8, 10), (32, 10), (8, 100), (8, 1000)]
    policy = HostPolicy()
    rows = []
    for methods, payload in shapes:
        obj = build(methods, payload)
        wire = pack_bytes(obj)
        package = pack(obj)
        pack_cost = time_per_call(lambda o=obj: pack_bytes(o))
        unpack_cost = time_per_call(lambda p=package: unpack(p))
        admit_cost = time_per_call(lambda p=package: policy.admit(p, "src"))
        decode_cost = time_per_call(lambda w=wire: unmarshal(w))
        rows.append(
            (
                methods,
                payload,
                len(wire),
                pack_cost * 1e6,
                decode_cost * 1e6,
                admit_cost * 1e6,
                unpack_cost * 1e6,
            )
        )
    emit(
        "perf8_mobility_scaling",
        "PERF-8: migration pipeline cost vs object shape",
        ["methods", "payload", "wire_bytes", "pack_us", "decode_us",
         "admit_us", "unpack_us"],
        rows,
    )
    by_shape = {(r[0], r[1]): r for r in rows}
    # wire size grows with both axes
    assert by_shape[(32, 10)][2] > by_shape[(2, 10)][2]
    assert by_shape[(8, 1000)][2] > by_shape[(8, 10)][2]
    obj = build(8, 10)
    benchmark(lambda: pack_bytes(obj))


def test_perf8_eager_vs_lazy_admission(benchmark):
    obj = build(16, 10)
    package = pack(obj)
    eager = HostPolicy(verify_code_eagerly=True)
    lazy = HostPolicy(verify_code_eagerly=False)
    eager_cost = time_per_call(lambda: eager.admit(package, "src"))
    lazy_cost = time_per_call(lambda: lazy.admit(package, "src"))
    first_call = time_per_call(
        lambda: unpack(package).invoke("op0", [1, 2], caller=OWNER)
    )
    emit(
        "perf8_admission_ablation",
        "PERF-8 ablation: eager vs lazy code verification (16 methods)",
        ["variant", "us"],
        [
            ("admit (eager verify)", eager_cost * 1e6),
            ("admit (structural only)", lazy_cost * 1e6),
            ("unpack + first compiled call", first_call * 1e6),
        ],
    )
    # eager verification costs real work at admission; lazy defers it to
    # first invocation — the classic verify-now vs verify-on-use trade
    assert lazy_cost < eager_cost
    benchmark(lambda: eager.admit(package, "src"))


def test_pack_unpack_round_trip(benchmark):
    obj = build(8, 100)

    def round_trip():
        unpack(pack(obj))

    benchmark(round_trip)
