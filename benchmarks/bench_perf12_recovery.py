"""PERF-12: WAL durability and crash recovery.

Drives the durability plane's acceptance shapes and snapshots what they
measure into ``BENCH_recovery.json`` at the repo root:

* **crash soak** — a durable closed-loop soak in which whole sites are
  killed and recovered from their write-ahead logs ``CYCLES`` times
  must keep every closed-form invariant: zero lost replies, zero lost
  updates, exactly-once ownership of every application object after
  the dust settles;
* **recovery time** — no single in-soak recovery may take longer than
  ``MAX_RECOVERY_SECONDS`` of wall clock (restart latency is the
  durability plane's service-level number);
* **replay throughput** — folding a ``REPLAY_RECORDS``-record log back
  into a live site must sustain at least ``MIN_REPLAY_RATE`` records
  per wall second (decode + checksum + fold, the whole pipeline);
* **durability-off overhead** — with no journal attached the hot path
  pays only ``journal is not None`` guards; their measured cost per
  request must stay under ``MAX_OFF_OVERHEAD`` of the request cost
  (same method as PERF-9's telemetry-off guard accounting).

Soak numbers are simulated-time and seeded — a regression there is a
behavioural change. The two wall-clock numbers (recovery time, replay
rate) have deliberately loose floors so CI jitter cannot trip them.
"""

import time
from pathlib import Path

from repro.load import LoadConfig, run_load_scenario, run_soak_scenario
from repro.mobility.package import pack
from repro.net.site import Site
from repro.net.transport import Network
from repro.persistence import MemoryStore, WriteAheadLog, recover_site
from repro.sim import Simulator
from repro.telemetry import Telemetry, enabled
from repro.telemetry.exporters import write_bench_json

from .series import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: enforced floors/ceilings (the PR's acceptance criteria)
MAX_RECOVERY_SECONDS = 1.0    # wall clock, per in-soak recovery
MIN_REPLAY_RATE = 2_000.0     # records per wall second, big-log replay
MAX_OFF_OVERHEAD = 0.03       # durability-off guard cost / request cost

REQUESTS = 3_000
SITES = 4
CLIENTS = 4
CYCLES = 3
REPLAY_RECORDS = 4_000


def _big_log() -> WriteAheadLog:
    """A log the size a busy site accumulates between compactions: one
    object image followed by REPLAY_RECORDS served-reply records."""
    network = Network(Simulator(0))
    site = Site(network, "bench", "bench")
    counter = site.create_object(display_name="bench-counter")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "increment",
        "self.set('count', self.get('count') + 1)\nreturn self.get('count')",
    )
    counter.seal()
    site.register_object(counter)
    image = pack(counter, strip_native_wrappers=True)

    wal = WriteAheadLog(MemoryStore())
    wal.append(
        "object.image", {"guid": counter.guid, "package": image},
        site="bench", time=0.0,
    )
    for index in range(REPLAY_RECORDS - 1):
        wal.append(
            "served.reply",
            {"kind": "invoke", "request_id": f"req-{index}",
             "reply": {"status": "ok", "value": index}},
            site="bench", time=float(index),
        )
    return wal


def _guard_seconds() -> float:
    """Mean wall cost of one ``site.journal is not None`` check."""
    network = Network(Simulator(0))
    site = Site(network, "guard", "guard")
    assert site.journal is None
    rounds = 200_000
    started = time.perf_counter()
    hits = 0
    for _ in range(rounds):
        if site.journal is not None:  # the durability-off hot path
            hits += 1
    elapsed = time.perf_counter() - started
    assert hits == 0
    return elapsed / rounds


def test_perf12_recovery(benchmark):
    # -- crash soak: kill/restart whole sites under faulty load ---------
    with enabled(Telemetry()) as tel:
        soak = run_soak_scenario(LoadConfig(
            sites=SITES, clients=CLIENTS, requests=REQUESTS, mode="closed",
            durable=True, crash_cycles=CYCLES,
        ))
    recoveries = soak.recovery_reports
    slowest = max(
        (report.replay_seconds for report in recoveries), default=0.0
    )
    replayed = sum(report.records_replayed for report in recoveries)

    # -- replay throughput: a big log folded back into a live site ------
    wal = _big_log()
    _site, _manager, replay = recover_site(
        Network(Simulator(0)), "bench", wal, domain="bench"
    )
    replay_rate = replay.records_replayed / max(replay.replay_seconds, 1e-9)

    # -- durability-off overhead: guards on a journal-less hot path -----
    started = time.perf_counter()
    off = run_load_scenario(LoadConfig(
        sites=SITES, clients=CLIENTS, requests=REQUESTS, mode="closed",
    ))
    off_wall = time.perf_counter() - started
    per_request = off_wall / off.issued
    # the serve path consults the guard a handful of times per request
    # (register/reply/batch plus the transfer hooks); 8 is a ceiling
    guard = _guard_seconds()
    off_overhead = (guard * 8) / per_request

    emit(
        "perf12_recovery",
        f"PERF-12: WAL durability and crash recovery "
        f"({SITES} sites x {CLIENTS} clients, {REQUESTS} requests, "
        f"{CYCLES} kill/restart cycles)",
        ["metric", "value", "floor/ceiling"],
        [
            ("soak ok", soak.ok, f"== {REQUESTS}"),
            ("soak unresolved", soak.unresolved, "== 0"),
            ("restarts completed", soak.restarts, f">= {CYCLES}"),
            ("exactly-once ownership", soak.exactly_once, "True"),
            ("records replayed in soak", replayed, ">= 1"),
            ("slowest recovery s", slowest, f"<= {MAX_RECOVERY_SECONDS}"),
            ("replay records", replay.records_replayed,
             f"== {REPLAY_RECORDS}"),
            ("replay rate records/s", replay_rate, f">= {MIN_REPLAY_RATE}"),
            ("guard cost ns", guard * 1e9, "-"),
            ("request cost us", per_request * 1e6, "-"),
            ("durability-off overhead", off_overhead,
             f"<= {MAX_OFF_OVERHEAD}"),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_recovery.json",
        tel.metrics,
        name="perf12_recovery",
        extra={
            "requests": REQUESTS,
            "sites": SITES,
            "clients": CLIENTS,
            "crash_cycles": CYCLES,
            "soak_ok": soak.ok,
            "soak_unresolved": soak.unresolved,
            "restarts": soak.restarts,
            "exactly_once": soak.exactly_once,
            "soak_records_replayed": replayed,
            "slowest_recovery_s": round(slowest, 6),
            "max_recovery_s": MAX_RECOVERY_SECONDS,
            "replay_records": replay.records_replayed,
            "replay_rate_per_s": round(replay_rate, 2),
            "min_replay_rate_per_s": MIN_REPLAY_RATE,
            "guard_cost_ns": round(guard * 1e9, 3),
            "request_cost_us": round(per_request * 1e6, 3),
            "durability_off_overhead": round(off_overhead, 6),
            "max_durability_off_overhead": MAX_OFF_OVERHEAD,
        },
    )

    assert soak.ok == REQUESTS and soak.unresolved == 0, (
        f"crash soak lost requests: ok={soak.ok} "
        f"unresolved={soak.unresolved}"
    )
    assert soak.consistent, "crash soak lost updates across restarts"
    assert soak.restarts >= CYCLES, (
        f"only {soak.restarts}/{CYCLES} kill/restart cycles completed"
    )
    assert soak.exactly_once, (
        f"ownership not exactly-once after recovery: "
        f"{soak.durable.get('ownership')}"
    )
    assert slowest <= MAX_RECOVERY_SECONDS, (
        f"slowest in-soak recovery took {slowest:.3f}s "
        f"(ceiling {MAX_RECOVERY_SECONDS}s)"
    )
    assert replay.records_replayed == REPLAY_RECORDS
    assert replay_rate >= MIN_REPLAY_RATE, (
        f"replay sustained only {replay_rate:.0f} records/s "
        f"(floor {MIN_REPLAY_RATE})"
    )
    assert off_overhead <= MAX_OFF_OVERHEAD, (
        f"durability-off guards cost {off_overhead * 100:.2f}% of a "
        f"request (ceiling {MAX_OFF_OVERHEAD * 100:.0f}%)"
    )

    benchmark(lambda: run_soak_scenario(LoadConfig(
        sites=SITES, clients=CLIENTS, requests=500,
        durable=True, crash_cycles=1,
    )))
