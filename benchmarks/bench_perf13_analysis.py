"""PERF-13: happens-before sanitizer overhead on a cross-wire workload.

The sanitizer follows the telemetry plane's contract: when no sanitizer
is installed, every hook in the RMI path (wait tracking, send/serve
clock plumbing, access expansion) costs one module-attribute read plus
an identity test. This bench enforces that on a synchronous remote
invocation — the workload that crosses *every* hook class in one call:
``request`` wait edges, ``note_sent``, ``begin_serve``/``end_serve``,
the invoke access expansion and the reply join.

Two directions, both under the same 2% budget telemetry lives under:

* **guard budget** — measured per-site guard cost, times a generous
  per-RMI site count, must stay under 2% of the disabled-path call;
* **stability** — disabled-path timings taken before and after an
  enabled interlude must agree within 2%: switching the sanitizer on
  and off leaves no residual cost.

Writes ``BENCH_analysis.json`` at the repo root for the CI archive.
"""

import gc
from pathlib import Path

from repro.analysis import sanitizer as hb
from repro.core import allow_all
from repro.net import LAN, Network, Site
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import write_bench_json

from .series import emit, time_per_call

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the disabled path may cost at most this fraction of one RMI call
BUDGET = 0.02
#: guarded hook sites one sync RMI can cross (wait begin/end, send,
#: serve begin/end, invoke expansion, reply join, protocol read) —
#: deliberately over-counted
SITES_PER_RMI = 10
TRIALS = 3

RMW_BODY = (
    "n = self.get('total') + 1\n"
    "self.set('total', n)\n"
    "return n"
)


def _best(fn, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        gc.collect()
        best = min(best, time_per_call(fn))
    return best


def _guard_cost() -> float:
    """Seconds per disabled-path guard (loop overhead subtracted)."""
    n = 100_000

    def guarded() -> None:
        for _ in range(n):
            san = hb.ACTIVE
            if san is not None:  # pragma: no cover - disabled in this loop
                raise AssertionError("sanitizer unexpectedly active")

    def bare() -> None:
        for _ in range(n):
            pass

    per_guarded = _best(guarded) / n
    per_bare = _best(bare) / n
    return max(per_guarded - per_bare, 0.0)


def _remote_world():
    network = Network(Simulator())
    client = Site(network, "client", "perf13.client")
    server = Site(network, "server", "perf13.server")
    network.topology.connect("client", "server", *LAN)
    obj = server.create_object(display_name="perf13-counter")
    obj.define_fixed_data("total", 0)
    obj.define_fixed_method("bump", RMW_BODY, acl=allow_all())
    obj.seal()
    server.register_object(obj)
    return client, obj.guid


def test_perf13_sanitizer_overhead(benchmark):
    assert hb.ACTIVE is None, "sanitizer must start disabled"
    client, guid = _remote_world()
    workload = lambda: client.remote_invoke("server", guid, "bump", [])  # noqa: E731

    workload()  # warm caches before the first trial is believed

    # measured in a retry loop: a preempted trial can fake a drift far
    # above anything the guard could cause — keep the cleanest attempt
    best = None
    for _attempt in range(5):
        disabled_before = _best(workload)
        san = hb.enable()
        try:
            enabled_time = _best(workload)
        finally:
            hb.disable()
        gc.collect()
        disabled_after = _best(workload)
        disabled = min(disabled_before, disabled_after)
        drift = abs(disabled_before - disabled_after) / disabled
        if best is None or drift < best[0]:
            best = (drift, disabled, enabled_time, san)
        if drift < BUDGET:
            break
    drift, disabled, enabled_time, san = best
    guard = _guard_cost()
    guard_share = (SITES_PER_RMI * guard) / disabled
    emit(
        "perf13_sanitizer_overhead",
        "PERF-13: happens-before sanitizer overhead on one sync RMI",
        ["variant", "us/call", "vs_disabled"],
        [
            ("disabled", disabled * 1e6, 1.0),
            ("enabled", enabled_time * 1e6, enabled_time / disabled),
            ("guard (x%d)" % SITES_PER_RMI,
             SITES_PER_RMI * guard * 1e6, guard_share),
        ],
    )
    registry = MetricsRegistry()
    registry.counter("hb.tasks").inc(san.tasks_created)
    registry.counter("hb.accesses").inc(san.access_count)
    registry.counter("hb.sends").inc(san.send_count)
    registry.counter("hb.syncs").inc(san.sync_count)
    registry.counter("hb.races").inc(len(san.races))
    write_bench_json(
        REPO_ROOT / "BENCH_analysis.json",
        registry,
        name="perf13_sanitizer_overhead",
        extra={
            "disabled_us_per_call": round(disabled * 1e6, 4),
            "enabled_us_per_call": round(enabled_time * 1e6, 4),
            "enabled_over_disabled": round(enabled_time / disabled, 4),
            "guard_ns": round(guard * 1e9, 2),
            "disabled_drift": round(drift, 4),
            "budget": BUDGET,
        },
    )
    # the contract: the sanitizer-off path regresses the RMI by < 2%
    assert guard_share < BUDGET, (
        f"disabled-path guards cost {guard_share:.2%} of one RMI "
        f"(budget {BUDGET:.0%})"
    )
    assert drift < BUDGET, (
        f"disabled path drifted {drift:.2%} across an enable/disable "
        f"cycle (budget {BUDGET:.0%})"
    )
    # switching the sanitizer on must record something, not nothing — a
    # free enabled path would mean the hooks silently stopped observing
    assert san.tasks_created > 0
    assert san.access_count > 0
    benchmark(workload)
    assert hb.ACTIVE is None
