"""FIG-2: the HADAS operations over the simulated internetwork.

Regenerates the figure's topology live and prices its protocol verbs:
Link (IOO Ambassador installation), Import/Export (APO Ambassador
shipped as data), remote invocation through an Ambassador, and — after a
functionality split — the same query answered locally. Simulated-time
rows show the protocol economics; pytest-benchmark times the in-process
machinery (what the paper's planned performance evaluation would have
measured on one JVM).
"""


from repro.apps import sample_database
from repro.hadas import IOO
from repro.net import Network, Site, WAN
from repro.sim import Simulator

from .series import emit


def build_world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    ioo_h, ioo_b = IOO(haifa), IOO(boston)
    db = sample_database()
    apo = ioo_h.integrate(
        "employees",
        db,
        operations={
            "salary_of": db.salary_of,
            "headcount": db.headcount,
            "departments": db.departments,
        },
    )
    return network, ioo_h, ioo_b, apo


def test_fig2_series(benchmark):
    network, _ioo_h, ioo_b, apo = build_world()
    rows = []

    t0 = network.now
    ioo_b.link("haifa")
    rows.append(("Link (IOO ambassador installed)", network.now - t0))

    t0 = network.now
    amb = ioo_b.import_apo("haifa", "employees")
    rows.append(("Import/Export (APO ambassador)", network.now - t0))

    t0 = network.now
    amb.invoke("salary_of", ["moshe"])
    rows.append(("forwarded query (1 WAN round trip)", network.now - t0))

    t0 = network.now
    apo.broadcast_add_data("cached_departments", ["engineering", "research", "sales"])
    apo.broadcast_add_method(
        "departments_local", "return self.get('cached_departments')"
    )
    rows.append(("functionality split (2 meta-updates)", network.now - t0))

    t0 = network.now
    amb.invoke("departments_local")
    rows.append(("local query after split", network.now - t0))

    emit(
        "fig2_hadas_ops",
        "FIG-2: HADAS operation costs (simulated seconds, WAN link)",
        ["operation", "sim_seconds"],
        rows,
    )
    costs = dict(rows)
    # shape: import ships more than a link handshake; a local query after
    # the split is free of network time entirely
    assert costs["local query after split"] == 0.0
    assert costs["forwarded query (1 WAN round trip)"] > 0.1  # 2x 80ms + payload
    benchmark(lambda: amb.invoke("departments_local"))


def test_ambassador_forwarded_invoke(benchmark):
    _network, _ioo_h, ioo_b, _apo = build_world()
    ioo_b.link("haifa")
    amb = ioo_b.import_apo("haifa", "employees")
    benchmark(lambda: amb.invoke("salary_of", ["moshe"]))


def test_ambassador_local_invoke_after_split(benchmark):
    _network, _ioo_h, ioo_b, apo = build_world()
    ioo_b.link("haifa")
    amb = ioo_b.import_apo("haifa", "employees")
    apo.broadcast_add_method("constant", "return 42")
    benchmark(lambda: amb.invoke("constant"))


def test_link_plus_import_machinery(benchmark):
    def full_handshake():
        _network, _ioo_h, ioo_b, _apo = build_world()
        ioo_b.link("haifa")
        ioo_b.import_apo("haifa", "employees")

    benchmark(full_handshake)


def test_interop_program(benchmark):
    _network, _ioo_h, ioo_b, _apo = build_world()
    ioo_b.link("haifa")
    ioo_b.import_apo("haifa", "employees")
    ioo_b.add_program(
        "avg",
        "db = self.get('imports')['employees']\n"
        "return db.invoke('headcount', [])",
    )
    benchmark(lambda: ioo_b.run_program("avg"))
