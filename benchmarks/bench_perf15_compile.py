"""PERF-15: the compile tier and the zero-copy migration path.

Four contracts, each enforced as an assertion and recorded in
``BENCH_compile.json`` at the repo root:

* **compiled speedup** — repeated invocation of one method by one
  caller must run at least 3x faster with the compiled tier than with
  the memo tables alone (the whole Lookup→Match→Apply pipeline
  collapses into one specialized closure whose guard is four loads and
  compares);
* **off-switch overhead** — with the compile tier disabled the
  dispatcher pays one attribute read and an empty-dict truth test per
  call; that guard, generously multiplied, must stay under 3% of a
  cached invocation;
* **zero-copy migration scaling** — unpacking a wire image lazily must
  beat eager unpacking when the receiver touches little of the state,
  and the cost series must grow with the state actually touched;
* **wire identity** — the zero-copy frame encoder must produce bytes
  identical to the eager encoder (same package, same image).

The speedup workload reuses the PERF-10 shape: a 16-entry ACL guarding
the hot method, so the Match work the closure pins away is the modest
HADAS-style policy, not a strawman.
"""

import gc
from pathlib import Path

import pytest

from repro.core import AccessControlList, Kind, MROMObject, Permission, Principal
from repro.mobility import pack_bytes, pack_frame, unpack_bytes
from repro.telemetry import Telemetry, enabled
from repro.telemetry.exporters import write_bench_json

from .series import emit, time_per_call

pytestmark = pytest.mark.compile

REPO_ROOT = Path(__file__).resolve().parent.parent

#: enforced floors/ceilings (the PR's acceptance criteria)
MIN_COMPILE_SPEEDUP = 3.0
MAX_OFF_OVERHEAD = 0.03
MIN_LAZY_SPEEDUP = 1.5

ACL_ENTRIES = 16
TRIALS = 3
PACK_ITEMS = 8
PACK_BLOB = b"\xa5" * (4 << 20)  # 4 MiB of bulk state per item

CALLER = Principal("mrom://perf15/caller", "perf15", "caller")
OWNER = Principal("mrom://perf15/owner", "perf15", "owner")


def _best(fn, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        gc.collect()
        best = min(best, time_per_call(fn))
    return best


def build_worker(compiled: bool, acl_entries: int = ACL_ENTRIES) -> MROMObject:
    obj = MROMObject(
        guid="mrom:obj:perf15",
        domain="perf15",
        display_name="worker",
        fastpath=True,
    )
    obj.enable_fastpath(True, compiled=compiled)
    acl = AccessControlList()
    for index in range(acl_entries):
        acl.grant(f"mrom://perf15/member{index}", Permission.INVOKE)
    acl.grant(CALLER.guid, Permission.INVOKE)
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method("work", "return args[0] + 1", acl=acl)
    obj.seal()
    return obj


def _off_guard_cost() -> float:
    """Seconds per disabled-compile-tier guard: an attribute read plus
    an empty-dict truth test (what invoke pays when no closures exist)."""
    n = 100_000
    obj = build_worker(False)
    cache = obj._fastpath

    def guarded() -> None:
        for _ in range(n):
            table = cache.compiled
            if table:  # pragma: no cover - empty in this loop
                raise AssertionError("compiled table unexpectedly populated")

    def bare() -> None:
        for _ in range(n):
            pass

    return max((_best(guarded) - _best(bare)) / n, 0.0)


def build_heavy_traveller() -> MROMObject:
    """A migration subject whose cost is dominated by bulk data values
    (the shape zero-copy exists for: an object carrying files, images,
    serialized state — wire slices the receiver may never decode)."""
    obj = MROMObject(
        guid="mrom:obj:perf15:traveller",
        domain="perf15",
        display_name="traveller",
        owner=OWNER,
    )
    for index in range(PACK_ITEMS):
        obj.define_fixed_data(f"item{index}", PACK_BLOB, kind=Kind.ANY)
    obj.define_fixed_method("noop", "return None")
    obj.seal()
    return obj


def test_perf15_compile(benchmark):
    # -- compiled-invocation speedup over the memo tables ----------------
    compiled_worker = build_worker(True)
    cached_worker = build_worker(False)
    hot = lambda: compiled_worker.invoke("work", [1], caller=CALLER)  # noqa: E731
    warm = lambda: cached_worker.invoke("work", [1], caller=CALLER)  # noqa: E731
    hot(), hot(), hot()  # lookup miss, match hit + compile, compiled hit
    warm(), warm()
    assert compiled_worker.fastpath.compiled_hits > 0, (
        "the compiled tier must be serving before it is timed"
    )
    assert cached_worker.fastpath.compiled_hits == 0
    compiled_time = _best(hot)
    cached_time = _best(warm)
    speedup = cached_time / compiled_time

    # -- off-switch overhead ---------------------------------------------
    guard = _off_guard_cost()
    # one guard at the top of invoke; count it four times over to be
    # generous about call-path variants and attribute-cache effects
    guard_share = (4 * guard) / cached_time

    # -- counters through the MetricsRegistry -----------------------------
    with enabled(Telemetry()) as tel:
        for _ in range(100):
            hot()
        compiled_hits = tel.metrics.counter_value("fastpath.compiled.hits")
        assert compiled_hits == 100, (
            "a warm compiled pair must serve every repeated invocation"
        )

    # -- zero-copy migration: wire identity and touch scaling -------------
    traveller = build_heavy_traveller()
    wire = pack_bytes(traveller)
    with pack_frame(traveller) as frame:
        assert frame.tobytes() == wire, (
            "zero-copy frame must be byte-identical to the eager image"
        )

    def unpack_eager():
        return unpack_bytes(wire, lazy=False)

    def unpack_touch(count: int):
        def run():
            arrived = unpack_bytes(wire, lazy=True)
            for index in range(count):
                arrived.get_data(f"item{index}", caller=OWNER)
            return arrived

        return run

    eager_time = _best(unpack_eager)
    touch_series = [
        (count, _best(unpack_touch(count)))
        for count in (0, 1, PACK_ITEMS // 2, PACK_ITEMS)
    ]
    untouched_time = touch_series[0][1]
    lazy_speedup = eager_time / untouched_time
    # sanity: a fully-touched lazy object equals the eager one
    full = unpack_touch(PACK_ITEMS)()
    assert full.get_data("item0", caller=OWNER) == PACK_BLOB
    assert full.get_data(f"item{PACK_ITEMS - 1}", caller=OWNER) == PACK_BLOB

    emit(
        "perf15_compile",
        "PERF-15: compiled invocations + zero-copy migration"
        f" (ACL {ACL_ENTRIES} entries, package of {PACK_ITEMS}x"
        f"{len(PACK_BLOB) >> 20}MiB items)",
        ["metric", "value", "floor/ceiling"],
        [
            ("compiled us/call", compiled_time * 1e6, "-"),
            ("cached us/call", cached_time * 1e6, "-"),
            ("compile speedup", speedup, f">= {MIN_COMPILE_SPEEDUP}"),
            ("guard share (x4)", guard_share, f"< {MAX_OFF_OVERHEAD}"),
            ("eager unpack us", eager_time * 1e6, "-"),
        ]
        + [
            (f"lazy unpack touch {count} us", seconds * 1e6, "-")
            for count, seconds in touch_series
        ]
        + [
            ("lazy speedup (untouched)", lazy_speedup, f">= {MIN_LAZY_SPEEDUP}"),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_compile.json",
        tel.metrics,
        name="perf15_compile",
        extra={
            "compiled_us_per_call": round(compiled_time * 1e6, 4),
            "cached_us_per_call": round(cached_time * 1e6, 4),
            "compile_speedup": round(speedup, 4),
            "min_compile_speedup": MIN_COMPILE_SPEEDUP,
            "guard_ns": round(guard * 1e9, 2),
            "off_overhead": round(guard_share, 4),
            "max_off_overhead": MAX_OFF_OVERHEAD,
            "eager_unpack_us": round(eager_time * 1e6, 4),
            "lazy_unpack_us_by_touched": {
                str(count): round(seconds * 1e6, 4)
                for count, seconds in touch_series
            },
            "lazy_speedup_untouched": round(lazy_speedup, 4),
            "min_lazy_speedup": MIN_LAZY_SPEEDUP,
            "acl_entries": ACL_ENTRIES,
            "pack_items": PACK_ITEMS,
        },
    )

    assert speedup >= MIN_COMPILE_SPEEDUP, (
        f"compiled invocations sped up only {speedup:.2f}x over the memo "
        f"tables (floor {MIN_COMPILE_SPEEDUP}x)"
    )
    assert guard_share < MAX_OFF_OVERHEAD, (
        f"compile-off guard costs {guard_share:.2%} of a cached invocation "
        f"(ceiling {MAX_OFF_OVERHEAD:.0%})"
    )
    assert lazy_speedup >= MIN_LAZY_SPEEDUP, (
        f"untouched lazy unpack only {lazy_speedup:.2f}x faster than eager "
        f"(floor {MIN_LAZY_SPEEDUP}x)"
    )
    benchmark(hot)


def test_perf15_compile_correctness_smoke(benchmark):
    """The compiled closure under the benchmark harness: results and
    record streams identical to the interpreted path."""
    compiled_worker = build_worker(True)
    interpreted = MROMObject(
        guid="mrom:obj:perf15", domain="perf15", display_name="worker",
        fastpath=False,
    )
    acl = AccessControlList().grant(CALLER.guid, Permission.INVOKE)
    interpreted.define_fixed_data("count", 0)
    interpreted.define_fixed_method("work", "return args[0] + 1", acl=acl)
    interpreted.seal()
    for obj in (compiled_worker, interpreted):
        obj.enable_tracing(True)
        for n in range(5):
            assert obj.invoke("work", [n], caller=CALLER) == n + 1

    def stream(obj):
        return [
            (event.level, event.phase.value, event.method, event.note)
            for record in obj.invocation_records()
            for event in record.events
        ]

    assert stream(compiled_worker) == stream(interpreted)
    assert compiled_worker.fastpath.compiled_hits >= 3
    benchmark(lambda: compiled_worker.invoke("work", [1], caller=CALLER))
