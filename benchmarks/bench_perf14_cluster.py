"""PERF-14: the sharded cluster — directory leases and scaling.

Drives the cluster plane's acceptance shapes and snapshots what they
measure into ``BENCH_cluster.json`` at the repo root:

* **sim sustain** — a closed-loop run of ``REQUESTS`` cluster ops
  (invokes / peeks / lease refreshes / ring-mediated migrations)
  through a 4-site sharded world must settle every request with no
  lost updates, exactly one live owner per name, a converged directory,
  and at least one stale-lease redirect actually exercised;
* **sim scaling** — the same workload over 8 sites must deliver at
  least ``SIM_SCALING_FLOOR``x the 4-site simulated throughput: the
  ring spreads names, so independent sites serve in parallel;
* **process scaling** — the real-OS-process driver (one process per
  site, gateways over TCP, directory-mediated placement) must deliver
  at least ``PROC_SCALING_FLOOR``x aggregate throughput going from
  ``PROC_SITES_SMALL`` to ``PROC_SITES_LARGE`` sites, with closed-form
  accounting intact (counters == acknowledged increments, exactly one
  active placement per name) and the stale-lease rate reported.

The simulated numbers are seeded and deterministic: a regression in
them is a behavioural change, not measurement noise. The process pair
is wall-clock but latency-bound by design (``service_sleep`` dwarfs
per-op CPU), so the scaling ratio is stable on a loaded 1-core box.
"""

import sys
from pathlib import Path

import pytest

from repro.load import (
    ClusterConfig,
    ClusterProcsConfig,
    run_cluster_procs,
    run_cluster_scenario,
)
from repro.telemetry import Telemetry, enabled
from repro.telemetry.exporters import write_bench_json

from .series import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: enforced floors (the PR's acceptance criteria)
SIM_SCALING_FLOOR = 1.6    # 8-site / 4-site simulated throughput
PROC_SCALING_FLOOR = 3.0   # 16-site / 4-site real-process throughput
MAX_STALE_RATE = 0.20      # stale redirects per ok op, process runs

REQUESTS = 1_600
PROC_SITES_SMALL = 4
PROC_SITES_LARGE = 16
#: the process recipe: per-op service dwell dominates per-op CPU, so
#: aggregate throughput measures parallel service lanes, not the
#: (shared, single-core) interpreter; 6s amortizes lease warm-up
PROC_DURATION = 6.0
PROC_SERVICE_SLEEP = 0.08


def _proc_config(sites: int) -> ClusterProcsConfig:
    return ClusterProcsConfig(
        sites=sites, duration=PROC_DURATION, keys_per_site=4,
        service_sleep=PROC_SERVICE_SLEEP, client_procs=2,
        moves=max(2, sites // 2), seed=0,
    )


@pytest.mark.skipif(
    sys.platform == "win32", reason="fork-based multi-process driver"
)
def test_perf14_cluster(benchmark):
    # -- sim: sustain at 4 sites, scale to 8 ----------------------------
    with enabled(Telemetry()) as tel:
        small = run_cluster_scenario(ClusterConfig(
            sites=4, clients=8, requests=REQUESTS, seed=0,
            service_delay=0.002,
        ))
        large = run_cluster_scenario(ClusterConfig(
            sites=8, clients=16, requests=REQUESTS, seed=0,
            service_delay=0.002,
        ))
    sim_ratio = large.throughput / small.throughput

    # -- processes: 4 vs 16 real sites over TCP gateways ----------------
    proc_small = run_cluster_procs(_proc_config(PROC_SITES_SMALL))
    proc_large = run_cluster_procs(_proc_config(PROC_SITES_LARGE))
    proc_ratio = proc_large["throughput"] / proc_small["throughput"]

    emit(
        "perf14_cluster",
        f"PERF-14: sharded cluster scaling ({REQUESTS} sim requests; "
        f"{PROC_DURATION:.0f}s process runs at "
        f"{PROC_SERVICE_SLEEP * 1e3:.0f}ms service dwell)",
        ["metric", "value", "floor/ceiling"],
        [
            ("sim 4-site ok", small.ok, f"== {REQUESTS}"),
            ("sim 4-site throughput", small.throughput, "-"),
            ("sim 8-site throughput", large.throughput, "-"),
            ("sim scaling 8/4", sim_ratio, f">= {SIM_SCALING_FLOOR}"),
            ("sim stale redirects", small.stale_client, ">= 1"),
            ("sim migrations", small.migrations, ">= 1"),
            ("proc 4-site ops/s", proc_small["throughput"], "-"),
            ("proc 16-site ops/s", proc_large["throughput"], "-"),
            ("proc scaling 16/4", proc_ratio, f">= {PROC_SCALING_FLOOR}"),
            ("proc 16-site stale rate", proc_large["stale_rate"],
             f"<= {MAX_STALE_RATE}"),
            ("proc failed (both)", proc_small["failed"] + proc_large["failed"],
             "== 0"),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_cluster.json",
        tel.metrics,
        name="perf14_cluster",
        extra={
            "requests": REQUESTS,
            "sim_throughput_4": round(small.throughput, 2),
            "sim_throughput_8": round(large.throughput, 2),
            "sim_scaling": round(sim_ratio, 3),
            "sim_scaling_floor": SIM_SCALING_FLOOR,
            "sim_stale_redirects": small.stale_client,
            "sim_migrations": small.migrations,
            "proc_sites": [PROC_SITES_SMALL, PROC_SITES_LARGE],
            "proc_duration_s": PROC_DURATION,
            "proc_service_sleep_s": PROC_SERVICE_SLEEP,
            "proc_ok_4": proc_small["ok"],
            "proc_ok_16": proc_large["ok"],
            "proc_throughput_4": round(proc_small["throughput"], 2),
            "proc_throughput_16": round(proc_large["throughput"], 2),
            "proc_scaling": round(proc_ratio, 3),
            "proc_scaling_floor": PROC_SCALING_FLOOR,
            "proc_stale_rate_4": round(proc_small["stale_rate"], 5),
            "proc_stale_rate_16": round(proc_large["stale_rate"], 5),
            "proc_moves_4": proc_small["moves"],
            "proc_moves_16": proc_large["moves"],
            "proc_consistent": proc_small["consistent"]
            and proc_large["consistent"],
            "proc_single_owner": proc_small["single_owner"]
            and proc_large["single_owner"],
        },
    )

    # sim floors: deterministic, so CI gates on them directly
    for report, label in ((small, "4-site"), (large, "8-site")):
        assert report.ok == REQUESTS and report.unresolved == 0, (
            f"sim {label}: lost requests (ok={report.ok} "
            f"unresolved={report.unresolved})"
        )
        assert report.consistent, f"sim {label}: lost updates"
        assert report.single_owner and not report.owner_violations, (
            f"sim {label}: a name had two live owners"
        )
        assert report.converged, f"sim {label}: directory did not converge"
    assert small.stale_client >= 1, "no stale-lease redirect was exercised"
    assert small.migrations >= 1, "no ring-mediated migration happened"
    assert sim_ratio >= SIM_SCALING_FLOOR, (
        f"sim scaling {sim_ratio:.2f}x (floor {SIM_SCALING_FLOOR}x)"
    )

    # process floors: accounting is exact even though timing is wall-clock
    for report, label in ((proc_small, "4-site"), (proc_large, "16-site")):
        assert report["consistent"], (
            f"proc {label}: counters {report['counter_total']} != "
            f"acknowledged increments {report['ok']}"
        )
        assert report["single_owner"], (
            f"proc {label}: a name had two active placements"
        )
        assert report["failed"] == 0, (
            f"proc {label}: {report['failed']} op(s) exhausted retries"
        )
        assert report["stale_rate"] <= MAX_STALE_RATE, (
            f"proc {label}: stale rate {report['stale_rate']:.3f} "
            f"(ceiling {MAX_STALE_RATE})"
        )
    assert proc_ratio >= PROC_SCALING_FLOOR, (
        f"process scaling {proc_ratio:.2f}x going "
        f"{PROC_SITES_SMALL} -> {PROC_SITES_LARGE} sites "
        f"(floor {PROC_SCALING_FLOOR}x)"
    )

    benchmark(lambda: run_cluster_scenario(
        ClusterConfig(sites=4, clients=8, requests=400, seed=0)
    ))
