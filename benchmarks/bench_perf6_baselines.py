"""PERF-6: dynamic invocation across the Section-2 object models.

Each baseline re-implements one comparator's dynamic-invocation
mechanics; this bench regenerates the comparison the paper makes
qualitatively — what each model *can* do, and what its dynamic call
costs — as a capability matrix plus a latency series.
"""

from repro.baselines import (
    Component,
    InterfaceDef,
    InterfaceRepository,
    JClass,
    JField,
    JMethod,
    OperationDef,
    ORB,
    Servant,
    StaticCounter,
)
from repro.core import Kind, MROMObject, Principal

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")


def build_mrom():
    obj = MROMObject(display_name="counter", owner=OWNER, extensible_meta=True)
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method(
        "increment",
        "self.set('count', self.get('count') + args[0])\nreturn self.get('count')",
    )
    obj.seal()
    return obj


def build_corba():
    repository = InterfaceRepository()
    interface = InterfaceDef("Counter")
    interface.add_operation(OperationDef("increment", (Kind.INTEGER,), Kind.INTEGER))
    repository.register(interface)
    orb = ORB(repository)
    state = {"count": 0}

    def increment(step):
        state["count"] += step
        return state["count"]

    orb.bind("Counter", Servant("counter", {"increment": increment}))
    return orb


def build_dcom():
    component = Component("counter")
    state = {"count": 0}

    def increment(step):
        state["count"] += step
        return state["count"]

    component.register_interface("IID_Counter", {"increment": increment})
    return component.unknown().query_interface("IID_Counter")


def build_java():
    def increment(obj, step):
        field = obj.get_class().get_field("count")
        field.set(obj, field.get(obj) + step)
        return field.get(obj)

    jclass = JClass(
        "Counter",
        methods={"increment": JMethod("increment", ("int",), "int", increment)},
        fields={"count": JField("count", "int")},
    )
    return jclass.new_instance(count=0)


def test_static(benchmark):
    counter = StaticCounter()
    benchmark(lambda: counter.increment(1))


def test_mrom(benchmark):
    obj = build_mrom()
    benchmark(lambda: obj.invoke("increment", [1], caller=OWNER))


def test_corba_dii(benchmark):
    orb = build_corba()

    def call():
        return orb.create_request("Counter", "increment").add_argument(1).invoke()

    benchmark(call)


def test_dcom(benchmark):
    pointer = build_dcom()
    benchmark(lambda: pointer.call("increment", 1))


def test_java_reflect(benchmark):
    instance = build_java()
    benchmark(lambda: instance.invoke("increment", 1))


def test_perf6_series(benchmark):
    static = StaticCounter()
    mrom = build_mrom()
    orb = build_corba()
    dcom_ptr = build_dcom()
    java_obj = build_java()

    calls = {
        "static": lambda: static.increment(1),
        "java-reflect": lambda: java_obj.invoke("increment", 1),
        "dcom-qi": lambda: dcom_ptr.call("increment", 1),
        "corba-dii": lambda: orb.create_request("Counter", "increment")
        .add_argument(1)
        .invoke(),
        "mrom": lambda: mrom.invoke("increment", [1], caller=OWNER),
    }
    timings = {label: time_per_call(fn) for label, fn in calls.items()}

    # the capability matrix the paper argues in prose (Section 2)
    capabilities = {
        "static": ("no", "no", "no", "no"),
        "java-reflect": ("yes", "no", "no", "no"),
        "dcom-qi": ("partial", "interfaces-only", "no", "no"),
        "corba-dii": ("repository", "repository-only", "no", "no"),
        "mrom": ("yes", "yes", "yes", "yes"),
    }
    rows = [
        (
            label,
            timings[label] * 1e6,
            timings[label] / timings["static"],
            *capabilities[label],
        )
        for label in calls
    ]
    emit(
        "perf6_baselines",
        "PERF-6: dynamic invocation across object models",
        [
            "model",
            "us/call",
            "vs_static",
            "self-repr",
            "mutability",
            "meta-mutability",
            "per-item-security",
        ],
        rows,
    )
    assert timings["static"] < timings["mrom"]
    benchmark(calls["mrom"])
