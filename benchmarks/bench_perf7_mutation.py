"""PERF-7: throughput of the mutation meta-methods.

The reflective surface — add/get/set/delete of data items and methods —
at container populations of 10 / 100 / 1000 items, to confirm the
structure scales (hash containers: population-independent costs).
"""

import pytest

from repro.core import MROMObject, Principal

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")


def build_populated(population: int) -> MROMObject:
    obj = MROMObject(display_name="populated", owner=OWNER, extensible_meta=True)
    obj.seal()
    view = obj.self_view()
    for index in range(population):
        view.add_data(f"item{index}", index)
    return obj


def add_delete_cycle(obj: MROMObject) -> None:
    obj.invoke("addDataItem", ["cycle", 1], caller=OWNER)
    obj.invoke("deleteDataItem", ["cycle"], caller=OWNER)


def add_delete_method_cycle(obj: MROMObject) -> None:
    obj.invoke("addMethod", ["cycle", "return 1"], caller=OWNER)
    obj.invoke("deleteMethod", ["cycle"], caller=OWNER)


@pytest.mark.parametrize("population", [10, 100, 1000])
def test_add_delete_data_item(benchmark, population):
    obj = build_populated(population)
    benchmark(lambda: add_delete_cycle(obj))


@pytest.mark.parametrize("population", [10, 100, 1000])
def test_get_data_item(benchmark, population):
    obj = build_populated(population)
    target = f"item{population // 2}"
    benchmark(lambda: obj.invoke("getDataItem", [target], caller=OWNER))


def test_set_data_item_properties(benchmark):
    obj = build_populated(100)
    _desc, handle = obj.invoke("getDataItem", ["item5"], caller=OWNER)
    benchmark(
        lambda: obj.invoke(
            "setDataItem", [handle, {"metadata": {"touched": True}}], caller=OWNER
        )
    )


def test_add_delete_method(benchmark):
    obj = build_populated(10)
    benchmark(lambda: add_delete_method_cycle(obj))


def test_perf7_series(benchmark):
    rows = []
    for population in (10, 100, 1000):
        obj = build_populated(population)
        target = f"item{population // 2}"
        add_delete = time_per_call(lambda o=obj: add_delete_cycle(o))
        get_item = time_per_call(
            lambda o=obj, t=target: o.invoke("getDataItem", [t], caller=OWNER)
        )
        value_get = time_per_call(
            lambda o=obj, t=target: o.get_data(t, caller=OWNER)
        )
        rows.append(
            (population, add_delete * 1e6, get_item * 1e6, value_get * 1e6)
        )
    emit(
        "perf7_mutation",
        "PERF-7: mutation meta-method cost vs container population",
        ["population", "add+del_us", "getDataItem_us", "get_value_us"],
        rows,
    )
    # population independence (hash containers): 1000 items costs within
    # 3x of 10 items for every column
    small, large = rows[0], rows[-1]
    for column in (1, 2, 3):
        assert large[column] < small[column] * 3 + 2.0
    obj = build_populated(100)
    benchmark(lambda: add_delete_cycle(obj))
