"""Helper for the benchmark harness: emit the series a bench reproduces.

pytest-benchmark reports wall-clock timings of the *mechanisms*; the
experiment tables (who wins, by what factor, where crossovers fall) are
emitted by :func:`emit` — printed to stdout (visible with ``pytest -s``)
and always written under ``benchmarks/out/`` so the series survive output
capture. EXPERIMENTS.md records these against the paper's claims.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

OUT_DIR = Path(__file__).parent / "out"

__all__ = ["emit", "time_per_call", "OUT_DIR"]


def emit(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print and persist one experiment series."""
    rows = [list(row) for row in rows]
    lines = [title, ""]
    widths = [
        max(
            [len(str(column))]
            + [len(_fmt(row[index])) for row in rows if index < len(row)]
        )
        for index, column in enumerate(header)
    ]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(value).ljust(w) for value, w in zip(row, widths))
        )
    text = "\n".join(lines)
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def time_per_call(fn: Callable[[], object], min_time: float = 0.1) -> float:
    """Mean seconds per call of *fn*, measured over at least *min_time*.

    Used for the series tables, where many variants are compared inside
    one test (pytest-benchmark times one representative variant per test).
    """
    fn()  # warm-up (compile portable code, populate caches)
    calls = 0
    start = time.perf_counter()
    deadline = start + min_time
    while True:
        fn()
        calls += 1
        now = time.perf_counter()
        if now >= deadline and calls >= 5:
            return (now - start) / calls
