"""PERF-11: the serving runtime under load.

Drives the load plane's acceptance shapes and snapshots what they
measure into ``BENCH_load.json`` at the repo root:

* **sustain** — a closed-loop run of ``REQUESTS`` mixed ops through a
  4-site world must settle every request with no sheds, no lost
  updates, and a simulated throughput of at least
  ``MIN_SIM_THROUGHPUT`` ok-ops per simulated second with p99 latency
  under ``MAX_P99``;
* **overload** — an open-loop run at ~4x the admission window's
  capacity must shed (structured ``OverloadError``) rather than lose:
  zero unresolved futures, zero non-shed failures;
* **harness cost** — the wall-clock side: the simulator must chew
  through at least ``MIN_WALL_RATE`` logical requests per real second,
  so load runs stay cheap enough for CI.

All scenario numbers are simulated-time and seeded: a regression in
them is a behavioural change, not measurement noise.
"""

import time
from pathlib import Path

from repro.load import LoadConfig, OpProfile, run_load_scenario
from repro.telemetry import Telemetry, enabled
from repro.telemetry.exporters import write_bench_json

from .series import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: enforced floors/ceilings (the PR's acceptance criteria)
MIN_SIM_THROUGHPUT = 500.0   # ok-ops per simulated second, sustain run
MAX_P99 = 0.050              # seconds, sustain run (LAN world, no faults)
MIN_WALL_RATE = 300.0        # logical requests per real second

REQUESTS = 10_000
SITES = 4
CLIENTS = 4


def test_perf11_load(benchmark):
    # -- sustain: the clean closed-loop shape ---------------------------
    with enabled(Telemetry()) as tel:
        started = time.perf_counter()
        sustain = run_load_scenario(LoadConfig(
            sites=SITES, clients=CLIENTS, requests=REQUESTS, mode="closed",
        ))
        wall = time.perf_counter() - started
    wall_rate = sustain.issued / wall
    p99 = sustain.latency["p99"]

    # -- overload: open loop at ~4x window capacity ---------------------
    overload = run_load_scenario(LoadConfig(
        sites=SITES, clients=CLIENTS, requests=REQUESTS // 5, mode="open",
        rate=2_000.0, inflight_limit=2, service_delay=0.002,
        profile=OpProfile(invoke=1.0, get_data=0, describe=0, migrate=0),
    ))

    emit(
        "perf11_load",
        f"PERF-11: serving runtime under load "
        f"({SITES} sites x {CLIENTS} clients, {REQUESTS} requests)",
        ["metric", "value", "floor/ceiling"],
        [
            ("sustain ok", sustain.ok, f"== {REQUESTS}"),
            ("sustain unresolved", sustain.unresolved, "== 0"),
            ("sim throughput ok-ops/s", sustain.throughput,
             f">= {MIN_SIM_THROUGHPUT}"),
            ("p50 ms", sustain.latency["p50"] * 1e3, "-"),
            ("p95 ms", sustain.latency["p95"] * 1e3, "-"),
            ("p99 ms", p99 * 1e3, f"<= {MAX_P99 * 1e3}"),
            ("migrations under load", sustain.migrations, ">= 1"),
            ("wall requests/s", wall_rate, f">= {MIN_WALL_RATE}"),
            ("overload shed", overload.shed, ">= 1"),
            ("overload failed", overload.failed, "== 0"),
            ("overload unresolved", overload.unresolved, "== 0"),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_load.json",
        tel.metrics,
        name="perf11_load",
        extra={
            "requests": REQUESTS,
            "sites": SITES,
            "clients": CLIENTS,
            "sim_throughput": round(sustain.throughput, 2),
            "min_sim_throughput": MIN_SIM_THROUGHPUT,
            "p50_ms": round(sustain.latency["p50"] * 1e3, 4),
            "p95_ms": round(sustain.latency["p95"] * 1e3, 4),
            "p99_ms": round(p99 * 1e3, 4),
            "max_p99_ms": MAX_P99 * 1e3,
            "migrations": sustain.migrations,
            "wall_seconds": round(wall, 4),
            "wall_requests_per_s": round(wall_rate, 2),
            "min_wall_requests_per_s": MIN_WALL_RATE,
            "overload_issued": overload.issued,
            "overload_ok": overload.ok,
            "overload_shed": overload.shed,
            "overload_failed": overload.failed,
            "overload_unresolved": overload.unresolved,
        },
    )

    assert sustain.ok == REQUESTS and sustain.unresolved == 0, (
        f"sustain lost requests: ok={sustain.ok} "
        f"unresolved={sustain.unresolved}"
    )
    assert sustain.consistent, "sustain run lost updates"
    assert sustain.throughput >= MIN_SIM_THROUGHPUT, (
        f"simulated throughput {sustain.throughput:.1f} ok-ops/s "
        f"(floor {MIN_SIM_THROUGHPUT})"
    )
    assert p99 <= MAX_P99, f"p99 {p99 * 1e3:.2f}ms (ceiling {MAX_P99 * 1e3}ms)"
    assert wall_rate >= MIN_WALL_RATE, (
        f"harness processed only {wall_rate:.0f} requests/s of wall clock "
        f"(floor {MIN_WALL_RATE})"
    )
    assert overload.shed > 0 and overload.failed == 0, (
        f"overload pass: shed={overload.shed} failed={overload.failed}"
    )
    assert overload.unresolved == 0, "overload pass left futures unresolved"

    benchmark(lambda: run_load_scenario(
        LoadConfig(sites=SITES, clients=CLIENTS, requests=500)
    ))
