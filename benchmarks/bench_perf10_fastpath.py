"""PERF-10: the fast-path layer — invocation cache and batched RMI.

Three contracts, each enforced as an assertion and recorded in
``BENCH_fastpath.json`` at the repo root:

* **warm speedup** — repeated invocation of one method by one caller
  must run at least 2x faster with the invocation cache than without it
  (the Lookup walk and the ACL scan collapse to two dict probes);
* **frame reduction** — a 16-call batch must put at least 1.5x fewer
  frames on the wire than 16 individual remote invocations (it actually
  achieves 16x: 32 frames down to 2);
* **off-switch overhead** — with caching disabled the invoker pays one
  attribute read and an identity test per call; that guard, generously
  multiplied, must stay under 3% of a disabled-path invocation.

The speedup workload guards its method with a 16-entry ACL — a modest
policy by the paper's standards (HADAS shares items to named principals
per collaborator), and deny-overrides means `permits` walks every entry
on every call when the verdict is not memoized.
"""

import gc
from pathlib import Path

from repro.core import AccessControlList, MROMObject, Permission, Principal
from repro.net import LAN, Network, Site
from repro.sim import Simulator
from repro.telemetry import Telemetry, enabled
from repro.telemetry.exporters import write_bench_json

from .series import emit, time_per_call

REPO_ROOT = Path(__file__).resolve().parent.parent

#: enforced floors/ceilings (the PR's acceptance criteria)
MIN_WARM_SPEEDUP = 2.0
MIN_FRAME_REDUCTION = 1.5
MAX_DISABLED_OVERHEAD = 0.03

ACL_ENTRIES = 16
BATCH_CALLS = 16
TRIALS = 3

CALLER = Principal("mrom://perf10/caller", "perf10", "caller")


def _best(fn, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        gc.collect()
        best = min(best, time_per_call(fn))
    return best


def build_worker(fastpath: bool, acl_entries: int = ACL_ENTRIES) -> MROMObject:
    obj = MROMObject(
        guid="mrom:obj:perf10",
        domain="perf10",
        display_name="worker",
        fastpath=fastpath,
    )
    if fastpath:
        # this benchmark measures the *memo-table* tier: the compiled
        # tier sits above it and has its own suite (bench_perf15_compile)
        obj.enable_fastpath(True, compiled=False)
    acl = AccessControlList()
    for index in range(acl_entries):
        acl.grant(f"mrom://perf10/member{index}", Permission.INVOKE)
    acl.grant(CALLER.guid, Permission.INVOKE)
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method("work", "return args[0] + 1", acl=acl)
    obj.seal()
    return obj


def _guard_cost() -> float:
    """Seconds per cache-off guard: an attribute read + identity test."""
    n = 100_000
    obj = build_worker(False)

    def guarded() -> None:
        for _ in range(n):
            cache = obj._fastpath
            if cache is not None:  # pragma: no cover - off in this loop
                raise AssertionError("cache unexpectedly attached")

    def bare() -> None:
        for _ in range(n):
            pass

    return max((_best(guarded) - _best(bare)) / n, 0.0)


def _remote_world():
    network = Network(Simulator())
    client = Site(network, "client", "perf10.client")
    server = Site(network, "server", "perf10.server")
    network.topology.connect("client", "server", *LAN)
    obj = server.create_object(display_name="remote-worker")
    from repro.core import allow_all

    obj.define_fixed_data("total", 0)
    obj.define_fixed_method(
        "bump",
        "n = self.get('total') + 1\nself.set('total', n)\nreturn n",
        acl=allow_all(),
    )
    obj.seal()
    server.register_object(obj)
    return network, client, server, obj


def test_perf10_fastpath(benchmark):
    # -- warm-invocation speedup ---------------------------------------
    cached = build_worker(True)
    uncached = build_worker(False)
    warm = lambda: cached.invoke("work", [1], caller=CALLER)  # noqa: E731
    cold = lambda: uncached.invoke("work", [1], caller=CALLER)  # noqa: E731
    warm()  # populate the cache before the first trial is believed
    cached_time = _best(warm)
    uncached_time = _best(cold)
    speedup = uncached_time / cached_time

    # -- transport-frame reduction for a 16-call batch ------------------
    network, client, server, remote = _remote_world()
    ref = client.ref_to(remote.guid, site="server")
    before = network.messages_sent
    for _ in range(BATCH_CALLS):
        ref.invoke("bump", [], caller=client.principal)
    individual_frames = network.messages_sent - before
    before = network.messages_sent
    batch = client.batch("server")
    futures = [
        batch.invoke(remote.guid, "bump", [], caller=client.principal)
        for _ in range(BATCH_CALLS)
    ]
    batch.flush()
    batched_frames = network.messages_sent - before
    assert [f.result() for f in futures] == list(
        range(BATCH_CALLS + 1, 2 * BATCH_CALLS + 1)
    )
    frame_reduction = individual_frames / batched_frames

    # -- cache-off overhead --------------------------------------------
    guard = _guard_cost()
    # one guard in invoke_primitive; count it four times over to be
    # generous about call-path variants and attribute-cache effects
    guard_share = (4 * guard) / uncached_time

    # -- counters through the MetricsRegistry ---------------------------
    with enabled(Telemetry()) as tel:
        for _ in range(100):
            warm()
        hits = tel.metrics.counter_value("fastpath.lookup.hits")
        match_hits = tel.metrics.counter_value("fastpath.match.hits")
        assert hits == 100 and match_hits == 100, (
            "a warm cache must hit on every repeated invocation"
        )

    emit(
        "perf10_fastpath",
        "PERF-10: invocation cache + batched RMI"
        f" (ACL {ACL_ENTRIES} entries, batch of {BATCH_CALLS})",
        ["metric", "value", "floor/ceiling"],
        [
            ("cached us/call", cached_time * 1e6, "-"),
            ("uncached us/call", uncached_time * 1e6, "-"),
            ("warm speedup", speedup, f">= {MIN_WARM_SPEEDUP}"),
            ("frames individual", individual_frames, "-"),
            ("frames batched", batched_frames, "-"),
            ("frame reduction", frame_reduction, f">= {MIN_FRAME_REDUCTION}"),
            ("guard share (x4)", guard_share, f"< {MAX_DISABLED_OVERHEAD}"),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_fastpath.json",
        tel.metrics,
        name="perf10_fastpath",
        extra={
            "cached_us_per_call": round(cached_time * 1e6, 4),
            "uncached_us_per_call": round(uncached_time * 1e6, 4),
            "warm_speedup": round(speedup, 4),
            "min_warm_speedup": MIN_WARM_SPEEDUP,
            "individual_frames": individual_frames,
            "batched_frames": batched_frames,
            "frame_reduction": round(frame_reduction, 4),
            "min_frame_reduction": MIN_FRAME_REDUCTION,
            "guard_ns": round(guard * 1e9, 2),
            "disabled_overhead": round(guard_share, 4),
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "acl_entries": ACL_ENTRIES,
            "batch_calls": BATCH_CALLS,
        },
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm invocations sped up only {speedup:.2f}x "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )
    assert frame_reduction >= MIN_FRAME_REDUCTION, (
        f"batching reduced frames only {frame_reduction:.2f}x "
        f"(floor {MIN_FRAME_REDUCTION}x)"
    )
    assert guard_share < MAX_DISABLED_OVERHEAD, (
        f"cache-off guard costs {guard_share:.2%} of an invocation "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
    )
    benchmark(warm)


def test_perf10_batch_correctness_smoke(benchmark):
    """The batch path under the benchmark harness: results identical to
    sequential invocation, one frame pair per flush."""
    network, client, server, remote = _remote_world()

    def batched_round() -> list:
        batch = client.batch("server")
        futures = [
            batch.invoke(remote.guid, "bump", [], caller=client.principal)
            for _ in range(4)
        ]
        batch.flush()
        return [future.result() for future in futures]

    first = batched_round()
    assert first == sorted(first)
    benchmark(batched_round)
