"""PERF-1: the price of structural mutability.

Section 3: "structural mutability bears some price on performance,
because it implies that technically there must be an internal mechanism
to lookup the location of an item before accessing it ... whereas in
static structures the location is determined at compile time as a fixed
offset."

Series: native Python attribute dispatch vs MROM invocation of a
fixed-section method vs an extensible-section method, at growing
container populations — plus the fixed/extensible split ablation (does a
big extensible section slow down fixed lookups? it must not).
"""

import pytest

from repro.baselines import StaticCounter
from repro.core import MROMObject, Principal

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")


def build_counter(extra_fixed: int = 0, extra_ext: int = 0) -> MROMObject:
    obj = MROMObject(display_name="counter", owner=OWNER, extensible_meta=True)
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method(
        "increment",
        "self.set('count', self.get('count') + (args[0] if args else 1))\n"
        "return self.get('count')",
    )
    for index in range(extra_fixed):
        obj.define_fixed_method(f"fixed_pad{index}", "return 0")
    obj.seal()
    view = obj.self_view()
    view.add_method("increment_ext", "self.set('count', self.get('count') + 1)\nreturn self.get('count')")
    for index in range(extra_ext):
        view.add_data(f"ext_pad{index}", index)
    return obj


def test_native_dispatch(benchmark):
    counter = StaticCounter()
    benchmark(lambda: counter.increment(1))


def test_mrom_fixed_method(benchmark):
    obj = build_counter()
    benchmark(lambda: obj.invoke("increment", [1], caller=OWNER))


def test_mrom_extensible_method(benchmark):
    obj = build_counter()
    benchmark(lambda: obj.invoke("increment_ext", [], caller=OWNER))


def test_perf1_series(benchmark):
    static = StaticCounter()
    obj = build_counter()
    native = time_per_call(lambda: static.increment(1))
    fixed = time_per_call(lambda: obj.invoke("increment", [1], caller=OWNER))
    extensible = time_per_call(lambda: obj.invoke("increment_ext", [], caller=OWNER))
    emit(
        "perf1_reflective_overhead",
        "PERF-1: lookup cost of mutability (who wins, by what factor)",
        ["model", "us/call", "vs_native"],
        [
            ("native-python", native * 1e6, 1.0),
            ("mrom-fixed", fixed * 1e6, fixed / native),
            ("mrom-extensible", extensible * 1e6, extensible / native),
        ],
    )
    # the paper's predicted shape: native is cheapest; MROM pays a
    # bounded per-invocation lookup/dispatch cost
    assert native < fixed
    assert native < extensible
    benchmark(lambda: obj.invoke("increment", [1], caller=OWNER))


def test_perf1_split_ablation(benchmark):
    """A crowded extensible section must not tax fixed-section lookups."""
    lean = build_counter()
    crowded = build_counter(extra_ext=1000)
    lean_time = time_per_call(lambda: lean.invoke("increment", [1], caller=OWNER))
    crowded_time = time_per_call(
        lambda: crowded.invoke("increment", [1], caller=OWNER)
    )
    emit(
        "perf1_split_ablation",
        "PERF-1 ablation: fixed lookup vs extensible population",
        ["extensible_items", "us/call"],
        [(2, lean_time * 1e6), (1002, crowded_time * 1e6)],
    )
    # hash-based containers: within noise of each other (generous bound)
    assert crowded_time < lean_time * 3
    benchmark(lambda: crowded.invoke("increment", [1], caller=OWNER))


@pytest.mark.parametrize("population", [10, 100, 1000])
def test_lookup_at_population(benchmark, population):
    obj = build_counter(extra_fixed=population)
    benchmark(lambda: obj.invoke("increment", [1], caller=OWNER))
