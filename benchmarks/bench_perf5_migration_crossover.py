"""PERF-5: move the code or move the questions?

The paper's opening motivation: mobile code "can be used to overcome
low-bandwidth connections by shifting interactive and other front-end
computation closer to the user". This bench regenerates the trade-off on
the simulated internetwork: a client issues N queries against a remote
service, either by remote invocation (every query crosses the link) or by
migrating the self-contained service object once and querying locally.

Series: completion time (simulated seconds) for each strategy across
link presets (LAN / WAN / MODEM) and query counts, plus the crossover
point per link — the shape to check: migration wins sooner as the link
gets worse, and for chatty interactions it wins by a wide factor.
"""

from repro.mobility import MobilityManager
from repro.net import LAN, MODEM, Network, Site, WAN
from repro.sim import Simulator

from .series import emit

LINKS = {"LAN": LAN, "WAN": WAN, "MODEM": MODEM}
QUERY_COUNTS = [1, 2, 5, 10, 20, 50, 100]
TABLE_ROWS = 200  # service payload size driver


def build_world(link):
    network = Network(Simulator())
    server = Site(network, "server", "dom.server")
    client = Site(network, "client", "dom.client")
    network.topology.connect("server", "client", *link)
    sender = MobilityManager(server)
    MobilityManager(client)
    return network, server, client, sender


def build_service(server):
    table = {f"key{index}": f"value-{index:06d}" for index in range(TABLE_ROWS)}
    service = server.create_object(
        display_name="table", owner=server.principal
    )
    service.define_fixed_data("table", table)
    service.define_fixed_method("lookup", "return self.get('table')[args[0]]")
    service.seal()
    server.register_object(service, name="svc")
    return service


def rpc_completion_time(link, queries: int) -> float:
    network, server, client, _sender = build_world(link)
    build_service(server)
    ref = client.remote_resolve("server", "svc")
    start = network.now
    for index in range(queries):
        ref.invoke("lookup", [f"key{index % TABLE_ROWS}"])
    return network.now - start


def migrate_completion_time(link, queries: int) -> float:
    network, server, client, sender = build_world(link)
    service = build_service(server)
    start = network.now
    sender.migrate(service, "client")
    local = client.local_object(service.guid)
    for index in range(queries):
        local.invoke("lookup", [f"key{index % TABLE_ROWS}"])
    return network.now - start


def test_perf5_series(benchmark):
    rows = []
    crossovers = {}
    for label, link in LINKS.items():
        for queries in QUERY_COUNTS:
            rpc = rpc_completion_time(link, queries)
            migrate = migrate_completion_time(link, queries)
            winner = "migrate" if migrate < rpc else "rpc"
            if winner == "migrate" and label not in crossovers:
                crossovers[label] = queries
            rows.append((label, queries, rpc, migrate, winner))
    emit(
        "perf5_migration_sweep",
        "PERF-5: completion time (simulated s), rpc vs migrate-then-local",
        ["link", "queries", "rpc_s", "migrate_s", "winner"],
        rows,
    )
    emit(
        "perf5_crossover",
        "PERF-5: first query count at which migration wins",
        ["link", "crossover_queries"],
        [(label, crossovers.get(label, ">100")) for label in LINKS],
    )
    by_cell = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    # single query: migration can't win (it ships far more bytes)
    assert by_cell[("WAN", 1)][0] < by_cell[("WAN", 1)][1]
    # chatty interaction: migration wins on every link
    for label in LINKS:
        rpc, migrate = by_cell[(label, 100)]
        assert migrate < rpc
    # the worse the link's latency, the earlier the crossover pays off:
    # at 10 queries migration already wins on WAN and MODEM
    assert by_cell[("WAN", 10)][1] < by_cell[("WAN", 10)][0]
    assert by_cell[("MODEM", 10)][1] < by_cell[("MODEM", 10)][0]
    benchmark(lambda: rpc_completion_time(WAN, 5))


def test_rpc_machinery(benchmark):
    _network, server, client, _sender = build_world(WAN)
    build_service(server)
    ref = client.remote_resolve("server", "svc")
    benchmark(lambda: ref.invoke("lookup", ["key0"]))


def test_migration_machinery(benchmark):
    def migrate_once():
        _network, server, _client, sender = build_world(LAN)
        service = build_service(server)
        sender.migrate(service, "client")

    benchmark(migrate_once)
