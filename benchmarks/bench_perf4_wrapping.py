"""PERF-4: the cost of wrapping (pre-/post-procedures, Section 3.1).

Series: a bare method vs pre only, post only, pre+post; portable
(sandboxed source) vs native wrapper procedures; and the charging pattern
(a level-1 meta-invoke carrying the pre) for comparison.
"""

from repro.core import MROMObject, Principal, allow_all

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench", "owner")


def build(pre=None, post=None) -> MROMObject:
    obj = MROMObject(display_name="svc", owner=OWNER, extensible_meta=True)
    obj.define_fixed_method("op", "return args[0] + 1", pre=pre, post=post)
    obj.seal()
    return obj


def test_bare(benchmark):
    obj = build()
    benchmark(lambda: obj.invoke("op", [1], caller=OWNER))


def test_with_pre(benchmark):
    obj = build(pre="return True")
    benchmark(lambda: obj.invoke("op", [1], caller=OWNER))


def test_with_pre_and_post(benchmark):
    obj = build(pre="return True", post="return result > 0")
    benchmark(lambda: obj.invoke("op", [1], caller=OWNER))


def test_with_native_wrappers(benchmark):
    obj = build(
        pre=lambda self, args, ctx: True,
        post=lambda self, args, result, ctx: True,
    )
    benchmark(lambda: obj.invoke("op", [1], caller=OWNER))


def test_perf4_series(benchmark):
    charging = build()
    charging.environment["credit"] = 10**9
    charging.invoke(
        "addMethod",
        [
            "invoke",
            "return ctx.proceed()",
            {
                "acl": allow_all().describe(),
                "pre": "self.env['credit'] = self.env['credit'] - 1\nreturn True",
            },
        ],
        caller=OWNER,
    )
    variants = [
        ("bare", build()),
        ("pre (portable)", build(pre="return True")),
        ("post (portable)", build(post="return True")),
        ("pre+post (portable)", build(pre="return True", post="return True")),
        (
            "pre+post (native)",
            build(
                pre=lambda self, args, ctx: True,
                post=lambda self, args, result, ctx: True,
            ),
        ),
        ("charging meta-level", charging),
    ]
    rows = []
    baseline = None
    for label, obj in variants:
        cost = time_per_call(lambda o=obj: o.invoke("op", [1], caller=OWNER))
        if baseline is None:
            baseline = cost
        rows.append((label, cost * 1e6, cost / baseline))
    emit(
        "perf4_wrapping",
        "PERF-4: wrapping cost per invocation",
        ["variant", "us/call", "vs_bare"],
        rows,
    )
    # shape: each wrapper adds cost; the per-object charging level costs
    # more than a per-method pre (it runs the full tower machinery)
    bare = rows[0][1]
    pre_post = rows[3][1]
    meta = rows[5][1]
    assert bare < pre_post < meta
    benchmark(lambda: variants[1][1].invoke("op", [1], caller=OWNER))
