"""PERF-3: the cost of the Match phase (security coupled with
encapsulation, checked at every invocation).

Series: self-invocation (Match bypassed), allow-all ACL, ACLs of growing
length (the caller matching the last entry — worst case for the ordered
scan), and a domain-pattern ACL.
"""

import pytest

from repro.core import (
    AccessControlList,
    AclEntry,
    MROMObject,
    Permission,
    Principal,
    allow_all,
)

from .series import emit, time_per_call

OWNER = Principal("mrom://bench/1.1", "bench.dom", "owner")
CALLER = Principal("mrom://bench/2.2", "bench.dom.sub", "caller")


def build_service(acl: AccessControlList) -> MROMObject:
    obj = MROMObject(display_name="svc", owner=OWNER)
    obj.define_fixed_method("op", "return 1", acl=acl)
    obj.seal()
    return obj


def acl_with_entries(count: int) -> AccessControlList:
    entries = [
        AclEntry(f"mrom://other/{index}.0", Permission.INVOKE)
        for index in range(count - 1)
    ]
    entries.append(AclEntry(CALLER.guid, Permission.INVOKE))
    return AccessControlList(entries)


def test_match_bypassed_for_self(benchmark):
    obj = build_service(allow_all())
    benchmark(lambda: obj.invoke("op", caller=obj.principal))


def test_match_allow_all(benchmark):
    obj = build_service(allow_all())
    benchmark(lambda: obj.invoke("op", caller=CALLER))


@pytest.mark.parametrize("entries", [1, 8, 64])
def test_match_with_acl_entries(benchmark, entries):
    obj = build_service(acl_with_entries(entries))
    benchmark(lambda: obj.invoke("op", caller=CALLER))


def test_perf3_series(benchmark):
    from repro.core import domain_acl

    variants = [
        ("self (match bypassed)", build_service(allow_all()), None),
        ("allow-all", build_service(allow_all()), CALLER),
        ("acl-1-entry", build_service(acl_with_entries(1)), CALLER),
        ("acl-8-entries", build_service(acl_with_entries(8)), CALLER),
        ("acl-64-entries", build_service(acl_with_entries(64)), CALLER),
        ("domain-pattern", build_service(domain_acl("bench.dom")), CALLER),
    ]
    rows = []
    baseline = None
    for label, obj, caller in variants:
        principal = caller if caller is not None else obj.principal
        cost = time_per_call(lambda o=obj, p=principal: o.invoke("op", caller=p))
        if baseline is None:
            baseline = cost
        rows.append((label, cost * 1e6, cost / baseline))
    emit(
        "perf3_security_match",
        "PERF-3: Match-phase cost per invocation",
        ["variant", "us/call", "vs_self"],
        rows,
    )
    benchmark(lambda: variants[1][1].invoke("op", caller=CALLER))
