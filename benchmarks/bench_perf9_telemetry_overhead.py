"""PERF-9: telemetry overhead on the fig-1 invocation workload.

The telemetry plane's contract is that the *disabled* path costs one
module-attribute read plus an identity test per instrumentation site —
nothing allocated, nothing formatted. This bench checks that contract on
the fig-1 workload (tower-depth-2 invocation, the series every prior
perf bench is calibrated against) from two directions:

* **guard budget** — the measured per-site guard cost, times a generous
  per-invocation site count, must stay under 2% of the disabled-path
  invocation itself;
* **stability** — two interleaved disabled-path measurements (taken
  around an enabled run, best-of-N to shed scheduler noise) must agree
  within the same 2% budget: enabling and disabling telemetry leaves no
  residual cost behind.

It also reports the enabled/disabled ratio (the price of switching the
plane on) and writes ``BENCH_telemetry.json`` at the repo root — the
metrics snapshot CI archives so the overhead trajectory is trackable.
"""

import gc
from pathlib import Path

from repro.telemetry import Telemetry, enabled
from repro.telemetry import state
from repro.telemetry.exporters import write_bench_json

from .bench_fig1_invocation_levels import OWNER, build_tower
from .series import emit, time_per_call

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the disabled path may cost at most this fraction of an invocation
BUDGET = 0.02
#: guarded hook sites a single local invocation can cross (invoker entry,
#: ACL check, coercions, exit bookkeeping) — deliberately over-counted
SITES_PER_INVOKE = 8
TRIALS = 3


def _best(fn, trials: int = TRIALS) -> float:
    """Best-of-N mean-per-call: the standard de-flaking for a shared box.

    Collecting before each trial matters more than it looks: an enabled
    interlude leaves a bigger heap behind, and comparing disabled runs
    across that boundary without a collect measures the garbage, not the
    guard.
    """
    best = float("inf")
    for _ in range(trials):
        gc.collect()
        best = min(best, time_per_call(fn))
    return best


def _guard_cost() -> float:
    """Seconds per disabled-path guard (loop overhead subtracted)."""
    n = 100_000

    def guarded() -> None:
        for _ in range(n):
            tel = state.ACTIVE
            if tel is not None:  # pragma: no cover - disabled in this loop
                raise AssertionError("telemetry unexpectedly active")

    def bare() -> None:
        for _ in range(n):
            pass

    per_guarded = _best(guarded) / n
    per_bare = _best(bare) / n
    return max(per_guarded - per_bare, 0.0)


def test_perf9_telemetry_overhead(benchmark):
    assert state.ACTIVE is None, "telemetry must start disabled"
    obj = build_tower(2)
    workload = lambda: obj.invoke("Mfoo", [1], caller=OWNER)  # noqa: E731

    workload()  # warm caches before the first trial is believed

    # measured in a retry loop: a preempted trial can fake a drift far
    # above anything the guard could cause, so give noise a few chances
    # to settle — and keep the *cleanest* attempt, not the last one
    best = None
    for _attempt in range(5):
        disabled_before = _best(workload)
        # bounded capture: an unbounded recorder would grow the heap by
        # tens of thousands of spans and poison the disabled_after trial
        with enabled(Telemetry(span_cap=2048, event_cap=2048)) as tel:
            enabled_time = _best(workload)
        gc.collect()
        disabled_after = _best(workload)
        disabled = min(disabled_before, disabled_after)
        drift = abs(disabled_before - disabled_after) / disabled
        if best is None or drift < best[0]:
            best = (drift, disabled, enabled_time, tel)
        if drift < BUDGET:
            break
    drift, disabled, enabled_time, tel = best
    guard = _guard_cost()
    guard_share = (SITES_PER_INVOKE * guard) / disabled
    emit(
        "perf9_telemetry_overhead",
        "PERF-9: telemetry overhead on the fig-1 workload (tower depth 2)",
        ["variant", "us/call", "vs_disabled"],
        [
            ("disabled", disabled * 1e6, 1.0),
            ("enabled", enabled_time * 1e6, enabled_time / disabled),
            ("guard (x%d)" % SITES_PER_INVOKE,
             SITES_PER_INVOKE * guard * 1e6, guard_share),
        ],
    )
    write_bench_json(
        REPO_ROOT / "BENCH_telemetry.json",
        tel.metrics,
        name="perf9_telemetry_overhead",
        extra={
            "disabled_us_per_call": round(disabled * 1e6, 4),
            "enabled_us_per_call": round(enabled_time * 1e6, 4),
            "enabled_over_disabled": round(enabled_time / disabled, 4),
            "guard_ns": round(guard * 1e9, 2),
            "disabled_drift": round(drift, 4),
            "budget": BUDGET,
        },
    )
    # the contract: the disabled path regresses the workload by < 2%
    assert guard_share < BUDGET, (
        f"disabled-path guards cost {guard_share:.2%} of an invocation "
        f"(budget {BUDGET:.0%})"
    )
    assert drift < BUDGET, (
        f"disabled path drifted {drift:.2%} across an enable/disable "
        f"cycle (budget {BUDGET:.0%})"
    )
    # switching the plane on must cost something measurable, not nothing —
    # a free enabled path would mean the hooks silently stopped recording
    assert tel.metrics.counter_value("invocations") > 0
    benchmark(workload)
    assert state.ACTIVE is None


def test_perf9_enabled_records_the_workload(benchmark):
    obj = build_tower(2)
    with enabled(Telemetry()) as tel:
        benchmark(lambda: obj.invoke("Mfoo", [1], caller=OWNER))
    assert state.ACTIVE is None
    assert tel.metrics.counter_value("invocations") > 0
    assert len(tel.recorder) > 0
    assert tel.open_spans == 0
