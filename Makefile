# Convenience targets for the MROM/HADAS reproduction.

PYTHON ?= python

.PHONY: install test bench examples series check all

install:
	$(PYTHON) setup.py develop || pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

series: bench
	@echo; for f in benchmarks/out/*.txt; do echo "--- $$f"; cat $$f; echo; done

examples:
	@for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex || exit 1; echo; done

check: test bench

all: install check examples
