# Convenience targets for the MROM/HADAS reproduction.

PYTHON ?= python

.PHONY: install test chaos lint lint-tests bench bench-fastpath fastpath bench-compile compile-tests load-smoke load-tests recover-smoke recovery-tests bench-recovery cluster-smoke cluster-tests bench-cluster examples series check all trace-smoke analyze sanitize-smoke bench-analysis

install:
	$(PYTHON) setup.py develop || pip install -e .

# `make test` runs everything, chaos tests included; `make chaos` runs
# only the seeded fault-injection suite (marker: chaos).
test:
	$(PYTHON) -m pytest tests/

chaos:
	$(PYTHON) -m pytest -m chaos tests/

# Static analysis: lint the MPL corpus (standalone .mpl files and MPL
# programs embedded in python hosts) with warnings promoted to errors.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint examples/ src/repro/apps/ --strict

# Only the static-analysis test suite (marker: analysis).
lint-tests:
	$(PYTHON) -m pytest -m analysis tests/

# Interprocedural analysis: races, wait cycles, migration safety — over
# the examples and the apps tier, gated against the committed baseline
# (only findings the baseline has never seen fail the build).
analyze:
	PYTHONPATH=src $(PYTHON) -m repro analyze examples/ src/repro/apps/ --strict --baseline ANALYZE_BASELINE.json

# Differential acceptance: a sanitizer-instrumented soak must observe at
# least one dynamic race, and every observed race/cycle must match a
# static diagnostic from the same effect summaries.
sanitize-smoke:
	PYTHONPATH=src $(PYTHON) -m repro analyze --sanitize-smoke

# The sanitizer overhead bench: disabled-path guards and enable/disable
# drift both under 2% of one sync RMI. Writes BENCH_analysis.json.
bench-analysis:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_perf13_analysis.py --benchmark-only -q

# Telemetry acceptance: run the traced scenario, validate the JSON-lines
# export against the span schema and the cross-wire trace invariants.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The fast-path acceptance bench: warm-invocation speedup, batched-RMI
# frame reduction, cache-off overhead. Writes BENCH_fastpath.json.
bench-fastpath:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_perf10_fastpath.py --benchmark-only -q

# Only the invocation-cache / batched-RMI test suite (marker: fastpath).
fastpath:
	$(PYTHON) -m pytest -m fastpath tests/

# The compile-tier acceptance bench: compiled-invocation speedup over
# the memo tables, compile-off overhead, zero-copy migration scaling.
# Writes BENCH_compile.json.
bench-compile:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_perf15_compile.py --benchmark-only -q

# Only the compiled-invocation / zero-copy marshal suite (marker: compile).
compile-tests:
	$(PYTHON) -m pytest -m compile tests/

# Load acceptance: the sustain + overload pair (>= 10k requests through
# >= 4 sites, zero unresolved; constrained window sheds structured
# OverloadErrors while non-shed requests all complete).
load-smoke:
	PYTHONPATH=src $(PYTHON) -m repro load --smoke

# Only the workload-driver / load-scenario test suite (marker: load).
load-tests:
	$(PYTHON) -m pytest -m load tests/

# Durability acceptance: the crash-and-restart soak (>= 3 whole-site
# kill/restart cycles under fault injection; closed-form accounting and
# exactly-once ownership must hold across them).
recover-smoke:
	PYTHONPATH=src $(PYTHON) -m repro recover --selftest

# Only the WAL / crash-recovery test suite (marker: recovery).
recovery-tests:
	$(PYTHON) -m pytest -m recovery tests/

# The recovery acceptance bench: recovery-time ceiling, replay-
# throughput floor, durability-off overhead. Writes BENCH_recovery.json.
bench-recovery:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_perf12_recovery.py --benchmark-only -q

# Cluster acceptance: the sustain + soak pair over the sharded
# directory (closed-form accounting, single-owner, convergence; under
# faults the only admissible terminal failure is a typed StaleLeaseError).
cluster-smoke:
	PYTHONPATH=src $(PYTHON) -m repro cluster --smoke

# Only the ring / directory / cluster-scenario suite (marker: cluster).
cluster-tests:
	$(PYTHON) -m pytest -m cluster tests/

# The cluster scaling bench: simulated 4->8 and multi-process 4->16
# site throughput floors, stale-lease rate ceiling. Writes
# BENCH_cluster.json.
bench-cluster:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_perf14_cluster.py --benchmark-only -q

series: bench
	@echo; for f in benchmarks/out/*.txt; do echo "--- $$f"; cat $$f; echo; done

examples:
	@for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex || exit 1; echo; done

check: test lint analyze sanitize-smoke trace-smoke load-smoke recover-smoke cluster-smoke bench

all: install check examples
