#!/usr/bin/env python3
"""Section 5's worked example: the database shutdown, end to end.

A database APO at Haifa exports Ambassadors to Boston and Paris. Before
maintenance, the administrator invokes a method that *changes the
invocation mechanism in all its Ambassadors* so every query echoes a
maintenance notice — remote users get instant, meaningful answers instead
of timeouts, and neither the database nor its clients ever coordinate
directly. Afterwards the notice is lifted and queries flow again.
"""

from repro.apps import sample_database
from repro.hadas import IOO
from repro.net import Network, Site, WAN
from repro.sim import Simulator


def main() -> None:
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    paris = Site(network, "paris", "inria.fr")
    network.topology.connect("haifa", "boston", *WAN)
    network.topology.connect("haifa", "paris", *WAN)

    ioos = {"haifa": IOO(haifa), "boston": IOO(boston), "paris": IOO(paris)}

    db = sample_database()
    apo = ioos["haifa"].integrate(
        "employees",
        db,
        operations={
            "salary_of": db.salary_of,
            "by_department": lambda d: [e.to_mapping() for e in db.by_department(d)],
            "headcount": db.headcount,
        },
        doc="the corporate employee database",
    )

    print("== deployment: Link then Import at each remote site ==")
    for city in ("boston", "paris"):
        ioos[city].link("haifa")
        ambassador = ioos[city].import_apo("haifa", "employees")
        print(f"  {city}: installed {ambassador.invoke('whoami')}")

    print("\n== normal operation ==")
    for city in ("boston", "paris"):
        amb = ioos[city].imported("employees")
        print(f"  {city} asks salary_of(moshe) ->", amb.invoke("salary_of", ["moshe"]))

    print("\n== administrator: prepare for maintenance ==")
    notice = "database is down for maintenance, back at 06:00"
    updated = apo.broadcast_maintenance(notice)
    db.shut_down()
    print(f"  invocation semantics swapped in {updated} ambassadors")

    print("\n== during maintenance: instant meaningful answers ==")
    for city in ("boston", "paris"):
        amb = ioos[city].imported("employees")
        print(f"  {city} asks salary_of(moshe) ->", amb.invoke("salary_of", ["moshe"]))
        print(f"  {city} asks headcount()     ->", amb.invoke("headcount"))
    print("  (the database itself served", db.queries_served, "queries so far,")
    print("   and none were attempted while it was down)")

    print("\n== administrator: maintenance over ==")
    db.start_up()
    apo.broadcast_lift_maintenance()
    for city in ("boston", "paris"):
        amb = ioos[city].imported("employees")
        print(f"  {city} asks salary_of(moshe) ->", amb.invoke("salary_of", ["moshe"]))

    print("\nnetwork totals:", network)


if __name__ == "__main__":
    main()
