#!/usr/bin/env python3
"""MPL: the paper's future-work "mobile programming" language, demoed.

An auction-agent object is *written in MPL* — fixed identity, extensible
interface, a ``requires`` clause compiled to a pre-procedure — then, with
no extra work, migrated over the simulated network to a market site and
driven remotely. Everything declared in MPL is portable by construction:
the compiler only emits the sandbox-verified source dialect.
"""

from repro.lang import Interpreter
from repro.mobility import MobilityManager
from repro.net import Network, Site, WAN
from repro.sim import Simulator

AGENT_SOURCE = """
// an auction bidding agent, written in MPL
object bidder {
  fixed data budget: integer = 1000
  fixed data spent = 0
  fixed data wins = []
  data strategy = "cautious"        // extensible: the origin can retune it

  fixed method bid(item, price)
    requires price > 0 and spent + price <= budget
    ensures result == true
  {
    spent = spent + price
    let log = wins
    log = log + [[item, price]]
    wins = log
    return true
  }

  fixed method remaining() { return budget - spent }
  fixed method report() { return {"wins": wins, "spent": spent,
                                   "strategy": strategy} }
}

let agent = new bidder
print agent.remaining()
"""


def main() -> None:
    print("== compile & run the MPL program at the home site ==")
    network = Network(Simulator())
    home = Site(network, "home", "buyer.example")
    market = Site(network, "market", "exchange.example")
    network.topology.connect("home", "market", *WAN)
    sender = MobilityManager(home)
    MobilityManager(market)

    interpreter = Interpreter(owner=home.principal)
    result = interpreter.run(AGENT_SOURCE)
    print("  script output:", result.output)
    agent = result.variables["agent"]
    home.register_object(agent)

    print("\n== the MPL object migrates like any portable object ==")
    ref = sender.migrate(agent, "market")
    print(f"  agent {ref.guid} now at {ref.site}")

    print("\n== drive it remotely; the requires-clause guards the budget ==")
    for item, price in [("lamp", 300), ("rug", 450), ("vase", 600), ("map", 200)]:
        try:
            ref.invoke("bid", [item, price], caller=home.principal)
            print(f"  bid {price} on {item}: accepted")
        except Exception as exc:
            print(f"  bid {price} on {item}: refused ({type(exc).__name__})")
    print("  remaining budget:", ref.invoke("remaining", caller=home.principal))

    print("\n== a second MPL script talks to the deployed agent ==")
    follow_up = Interpreter(owner=home.principal).run(
        """
        let summary = agent.report()
        print summary["spent"]
        print summary["wins"]
        """,
        bindings={"agent": ref},
    )
    print("  spent:", follow_up.output[0])
    print("  wins:", follow_up.output[1])


if __name__ == "__main__":
    main()
