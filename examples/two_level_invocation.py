#!/usr/bin/env python3
"""Figure 1, live: a two-level invocation of ``Mfoo`` on object ``Obar``.

Reproduces the paper's figure with the actual machinery: a modified
``meta_invoke`` is pushed above the level-0 primitive; invoking ``Mfoo``
enters the tower at level 2, descends through level 1, bottoms out in the
Lookup/Match/Apply primitive, and unwinds. The printed trace is the
figure, phase by phase.
"""

from repro.core import MROMObject, Principal, allow_all


def main() -> None:
    owner = Principal("mrom://demo/1.1", "technion.ee", "designer")
    obar = MROMObject(display_name="Obar", owner=owner, extensible_meta=True)
    obar.define_fixed_data("invocations", 0)
    obar.define_fixed_method("Mfoo", "return 'Mfoo(' + repr(args) + ')'")
    obar.seal()

    # level 1: a counting meta_invoke (the figure's "meta invoke")
    obar.invoke(
        "addMethod",
        [
            "invoke",
            "self.set('invocations', self.get('invocations') + 1)\n"
            "return ctx.proceed()",
            {"acl": allow_all().describe()},
        ],
        caller=owner,
    )
    # level 2: an auditing meta_invoke that tags results
    obar.invoke(
        "addMethod",
        [
            "invoke",
            "result = ctx.proceed()\n"
            "return {'audited': True, 'method': ctx.target, 'result': result}",
            {"acl": allow_all().describe()},
        ],
        caller=owner,
    )

    print("invoking Mfoo through a two-level tower:\n")
    result = obar.invoke("Mfoo", ["arg1", 2])
    print(obar.last_record.render())
    print("\nresult:", result)
    print("meta-level call counter:", obar.get_data("invocations"))

    print("\nthe level-0 primitive is still intact underneath:")
    print("  invoke_primitive ->", obar.invoke_primitive("Mfoo", ["direct"]))

    print("\nper-level phase sequences (compare with Figure 1):")
    obar.invoke("Mfoo", ["again"])
    record = obar.last_record
    for level in record.levels():
        phases = " -> ".join(p.value for p in record.phases_at_level(level))
        print(f"  level {level}: {phases}")


if __name__ == "__main__":
    main()
