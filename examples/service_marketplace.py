#!/usr/bin/env python3
"""A service marketplace: discovery, import, negotiation, rolling update.

The bottom-up construction story of the paper's conclusion, end to end:
a client site knows nothing but its Links. It *discovers* services by
capability across the vicinity, *imports* the best match, *negotiates*
the arriving Ambassador into the interface its own programs expect, and
later receives a *rolling interface update* pushed by the origin —
without ever being recompiled, redeployed, or even restarted.
"""

from repro.apps import sample_database
from repro.hadas import (
    FleetUpdater,
    InterfaceRequirement,
    InterfaceRevision,
    IOO,
    negotiate,
)
from repro.hadas.trader import Trader
from repro.net import Network, Site, WAN
from repro.sim import Simulator


def main() -> None:
    network = Network(Simulator())
    sites = {
        name: Site(network, name, f"dom.{name}")
        for name in ("client", "hr-corp", "hr-startup")
    }
    network.topology.connect("client", "hr-corp", *WAN)
    network.topology.connect("client", "hr-startup", *WAN)
    ioos = {name: IOO(site) for name, site in sites.items()}
    traders = {name: Trader(ioo) for name, ioo in ioos.items()}

    # two competing providers expose HR databases with different spellings
    corp_db = sample_database()
    corp = ioos["hr-corp"].integrate("corp-hr", corp_db)
    corp.expose(
        "salary_of", corp_db.salary_of,
        doc="salary by employee name", tags=["hr", "salary"],
        params=[{"name": "name", "kind": "text"}],
    )
    startup_db = sample_database()
    startup = ioos["hr-startup"].integrate("startup-hr", startup_db)
    startup.expose(
        "comp_lookup", startup_db.salary_of,
        doc="total compensation lookup", tags=["hr", "salary"],
        params=[{"name": "who", "kind": "text"}],
    )

    print("== 1. discovery: who offers 'hr'+'salary'? ==")
    ioos["client"].link("hr-corp")
    ioos["client"].link("hr-startup")
    offers = traders["client"].discover(tags=["hr", "salary"])
    for offer in offers:
        print(f"  {offer.site}/{offer.apo}.{offer.operation} — {offer.doc}")

    print("\n== 2. import the startup's service ==")
    ambassador = ioos["client"].import_apo("hr-startup", "startup-hr")
    print("  installed:", ambassador.invoke("whoami"))

    print("\n== 3. negotiation: our programs expect 'salary_of' ==")
    requirements = [InterfaceRequirement("salary_of", arity=1, tags=("salary",))]
    report = negotiate(
        ambassador, requirements,
        host=sites["client"].principal,
        updater=ambassador.owner,
    )
    print("  " + report.summary())
    print("  salary_of('moshe') ->", ambassador.invoke("salary_of", ["moshe"]))

    print("\n== 4. the client's program runs against the negotiated name ==")
    ioos["client"].add_program_mpl(
        """
        method team_cost(names) {
          let hr = imports["startup-hr"]
          let total = 0
          for name in names {
            total = total + hr.salary_of(name)
          }
          return total
        }
        """
    )
    cost = ioos["client"].run_program("team_cost", [["moshe", "dana", "yael"]])
    print("  team_cost(engineering trio) ->", cost)

    print("\n== 5. the origin pushes a rolling interface update ==")
    updater = FleetUpdater(startup)
    rollout = updater.rollout(
        InterfaceRevision(
            1,
            add_methods={
                "salary_band": (
                    "salary = self.call('comp_lookup', args[0])\n"
                    "if salary >= 6000:\n"
                    "    return 'senior'\n"
                    "if salary >= 4500:\n"
                    "    return 'mid'\n"
                    "return 'junior'"
                )
            },
        )
    )
    print(f"  revision r1 rolled out to {len(rollout.updated)} ambassador(s)")
    for name in ("moshe", "dana", "avi"):
        print(f"  salary_band({name}) ->", ambassador.invoke("salary_band", [name]))

    print("\nnetwork totals:", network)


if __name__ == "__main__":
    main()
