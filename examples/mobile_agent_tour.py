#!/usr/bin/env python3
"""A mobile agent tours the internetwork, gathering data as it goes.

The agent is a self-contained MROM object: its code (portable source),
its itinerary results, and its probe logic all travel with it. At each
stop the host installs it, the agent inspects what that site offers (via
an installation-context binding), records its findings in its own data
items, and hops on. Back home, the origin reads the full report locally.
"""

from repro.mobility import AgentTour, Itinerary, MobilityManager
from repro.net import LAN, Network, Site, WAN
from repro.security import HostPolicy
from repro.sim import Simulator

INVENTORY = {
    "tokyo": ["market-feed", "translation"],
    "zurich": ["clearing", "market-feed"],
    "nairobi": ["weather", "logistics"],
}


def main() -> None:
    network = Network(Simulator())
    home = Site(network, "home", "origin.example")
    managers = {"home": MobilityManager(home)}
    for name in INVENTORY:
        site = Site(network, name, f"host.{name}")
        # each host exposes its service inventory to arriving guests and
        # guards its door with an admission policy
        managers[name] = MobilityManager(site, policy=HostPolicy(max_items=32))
        site_obj = site.create_object(display_name="services")
        site_obj.define_fixed_data("inventory", INVENTORY[name])
        site_obj.define_fixed_method("list_services", "return self.get('inventory')")
        site_obj.seal()
        site.register_object(site_obj, name="services")
        network.topology.connect("home", name, *WAN)
    network.topology.connect("tokyo", "zurich", *LAN)
    network.topology.connect("zurich", "nairobi", *WAN)

    print("== build the agent at home ==")
    agent = home.create_object(display_name="scout", owner=home.principal)
    agent.define_fixed_data("findings", [])
    agent.define_fixed_method(
        "visit",
        # the host hands the agent a 'services' binding at install time?
        # no — the agent *discovers* the local services object by name,
        # through the directory reference its tour driver passes in
        "site = args[0]\n"
        "directory = args[1]\n"
        "services = directory.invoke('list_services', [])\n"
        "log = self.get('findings')\n"
        "log.append({'site': site, 'services': services})\n"
        "self.set('findings', log)\n"
        "return services",
    )
    agent.define_fixed_method("report", "return self.get('findings')")
    agent.seal()
    home.register_object(agent)

    print("== send it around ==")
    # (AgentTour drives fixed-argument tours; here each stop needs its own
    # directory reference, so we drive the hops with the same primitives)
    itinerary = Itinerary.through("tokyo", "zurich", "nairobi")
    records = []
    ref = managers["home"].migrate(agent, itinerary.stops[0])
    current = itinerary.stops[0]
    for stop in itinerary:
        if stop != current:
            ref = managers["home"].forward(current, ref.guid, stop)
            current = stop
        directory = home.remote_resolve(stop, "services")
        found = ref.invoke("visit", [stop, directory], caller=agent.owner)
        records.append((stop, found))
        print(f"  at {stop} ({network.now:7.3f}s): found {found}")
    managers["home"].forward(current, ref.guid, "home")

    print("\n== back home: read the report locally ==")
    returned = home.local_object(agent.guid)
    for entry in returned.invoke("report", caller=agent.owner):
        print(f"  {entry['site']}: {', '.join(entry['services'])}")

    market_feeds = [
        entry["site"]
        for entry in returned.invoke("report", caller=agent.owner)
        if "market-feed" in entry["services"]
    ]
    print("\nsites offering market-feed:", market_feeds)
    print("total simulated time:", f"{network.now:.3f}s;", network)


if __name__ == "__main__":
    main()
