#!/usr/bin/env python3
"""Quickstart: the MROM object model in five minutes.

Covers each of the paper's requirements in order: self-representation,
mutability, self-containment (pack/unpack), security, weak typing, and
identity. Run with ``python examples/quickstart.py``.
"""

from repro.core import (
    AccessDeniedError,
    HtmlText,
    Kind,
    MROMObject,
    Principal,
    allow_all,
    coerce,
    describe,
    interrogate,
)
from repro.mobility import pack, unpack


def main() -> None:
    print("== 1. build an object: fixed core + extensible surface ==")
    owner = Principal("mrom://demo/1.1", "technion.ee", "owner")
    account = MROMObject(
        display_name="account", owner=owner, extensible_meta=True
    )
    account.define_fixed_data("balance", 100, kind=Kind.INTEGER)
    account.define_fixed_method(
        "withdraw",
        "self.set('balance', self.get('balance') - args[0])\n"
        "return self.get('balance')",
        pre="return args[0] > 0 and args[0] <= self.get('balance')",
        post="return result >= 0",
    )
    account.seal()
    print("withdraw 30 ->", account.invoke("withdraw", [30], caller=owner))

    print("\n== 2. self-representation: interrogate the object ==")
    for name, signature in interrogate(account, viewer=owner).items():
        if not signature["meta"]:
            print(f"  method {name}: {signature['doc'] or '(no doc)'}")
    print("  items visible to a stranger:",
          describe(account).names())

    print("\n== 3. mutability: reshape the object at run time ==")
    account.invoke(
        "addMethod",
        ["interest", "self.set('balance', self.get('balance') + "
                     "self.get('balance') // 10)\nreturn self.get('balance')",
         {"acl": allow_all().describe()}],
        caller=owner,
    )
    print("after interest ->", account.invoke("interest", caller=owner))
    description = account.invoke("addDataItem", ["currency", "NIS"], caller=owner)
    print("added data item:", description["name"], "in", description["section"])

    print("\n== 4. security coupled with encapsulation ==")
    stranger = Principal("mrom://elsewhere/9.9", "unknown.domain", "stranger")
    try:
        account.invoke("addDataItem", ["evil", 1], caller=stranger)
    except AccessDeniedError as exc:
        print("stranger blocked:", exc)

    print("\n== 5. weak typing: generic coercion ==")
    scraped = HtmlText("<td>salary: <b>4,500</b> NIS</td>".replace(",", ""))
    print("HTML", repr(str(scraped)), "->", coerce(scraped, Kind.INTEGER))

    print("\n== 6. self-containment: the object travels as data ==")
    package = pack(account)
    clone = unpack(package)
    print("identity travels:", clone.guid == account.guid)
    print("behaviour travels:", clone.invoke("withdraw", [7], caller=owner))


if __name__ == "__main__":
    main()
