// A sealed-bid auction house and a bidding strategy, written in MPL.
//
// Standalone MPL: run with     python -m repro run examples/auction.mpl
//                 lint with    python -m repro lint examples/auction.mpl --strict
//
// Both objects are portable by construction (the MPL compiler only emits
// sandbox-verified source), so either could migrate to another site.

object auction_house {
  fixed data listings = {}
  fixed data closed = []

  fixed method list_item(name, reserve)
    requires reserve > 0
  {
    let book = listings
    book[name] = {"reserve": reserve, "best": 0, "holder": null}
    listings = book
    return name
  }

  fixed method offer(name, who, amount)
  {
    let book = listings
    let entry = book[name]
    if amount > entry["best"] and amount >= entry["reserve"] {
      entry["best"] = amount
      entry["holder"] = who
      book[name] = entry
      listings = book
      return true
    }
    return false
  }

  fixed method settle(name)
  {
    let book = listings
    let entry = book[name]
    let record = [name, entry["holder"], entry["best"]]
    closed = closed + [record]
    return record
  }
}

object sniper {
  fixed data budget = 500

  fixed method quote(reserve)
    requires reserve > 0
  {
    let margin = budget - reserve
    if margin < 0 {
      return 0
    }
    return reserve + margin / 2
  }
}

let house = new auction_house
let bot = new sniper

house.list_item("lamp", 120)
house.list_item("atlas", 300)

for lot in [["lamp", 150], ["atlas", 340]] {
  let item = lot[0]
  let ask = bot.quote(lot[1])
  if ask > 0 {
    house.offer(item, "sniper", ask)
  }
  print house.settle(item)
}
