#!/usr/bin/env python3
"""Section 3's "code renting" (after Yourdon): pay-per-invocation.

A vendor at Haifa rents out a translation service object. The object is
deployed to the customer's site — the *code* moves, so every call runs
locally — but its ``invoke`` mechanism carries a level-1 meta-invoke whose
pre-procedure contacts the vendor's charging object before every call.
Out of credit: the pre-procedure vetoes, and the service stops until the
customer tops up. The vendor never trusts the customer's runtime: the
charging state lives at the vendor's site, and the rented object's
meta-methods admit only the vendor.
"""

from repro.core import Principal, PreProcedureVeto, allow_all
from repro.mobility import MobilityManager
from repro.net import Network, Site, WAN
from repro.sim import Simulator

VOCABULARY = {"shalom": "peace", "or": "light", "emet": "truth"}


def main() -> None:
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    vendor_shipping = MobilityManager(haifa)
    MobilityManager(boston)

    vendor = Principal("mrom://haifa/77.1", "technion.ee", "vendor")
    customer = Principal("mrom://boston/88.1", "mit.lcs", "customer")

    print("== vendor side: the charging object stays home ==")
    charger = haifa.create_object(display_name="charger", owner=vendor)
    charger.define_fixed_data("credit", 3)
    charger.define_fixed_data("collected", 0)
    charger.define_fixed_method(
        "charge",
        "if self.get('credit') <= 0:\n"
        "    return False\n"
        "self.set('credit', self.get('credit') - 1)\n"
        "self.set('collected', self.get('collected') + 1)\n"
        "return True",
    )
    charger.define_fixed_method(
        "top_up",
        "self.set('credit', self.get('credit') + args[0])\n"
        "return self.get('credit')",
    )
    charger.seal()
    haifa.register_object(charger)
    print("  charger ready with", charger.get_data("credit"), "credits")

    print("\n== vendor side: build and deploy the rented object ==")
    service = haifa.create_object(
        display_name="translator", owner=vendor, extensible_meta=True
    )
    service.define_fixed_data("charger", haifa.ref_to(charger))
    service.define_fixed_data("vocabulary", dict(VOCABULARY))
    service.define_fixed_method(
        "translate",
        "return self.get('vocabulary').get(args[0], '?')",
    )
    service.seal()
    service.invoke(
        "addMethod",
        [
            "invoke",
            "return ctx.proceed()",
            {
                "acl": allow_all().describe(),
                "pre": "return self.get('charger').invoke('charge', [])",
            },
        ],
        caller=vendor,
    )
    vendor_shipping.migrate(service, "boston")
    rented = boston.local_object(service.guid)
    print("  translator now lives at", rented.environment["install_context"]["site"])

    print("\n== customer side: use it until the credit runs out ==")
    for word in ("shalom", "or", "emet", "shalom"):
        try:
            print(f"  translate({word!r}) ->", rented.invoke("translate", [word], caller=customer))
        except PreProcedureVeto:
            print(f"  translate({word!r}) -> REFUSED: out of credit")
    print("  vendor collected:", charger.get_data("collected"))

    print("\n== customer tops up; service resumes ==")
    charger.invoke("top_up", [2], caller=vendor)
    print("  translate('emet') ->", rented.invoke("translate", ["emet"], caller=customer))
    print("  remaining credit:", charger.get_data("credit"))


if __name__ == "__main__":
    main()
