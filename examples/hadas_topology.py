#!/usr/bin/env python3
"""Figure 2, live: the HADAS external view.

Builds the figure's topology over the simulated internetwork — IOOs with
Home (APOs), Vicinity (IOO Ambassadors), and deployed APO Ambassadors —
then renders each IOO's state and runs an interoperability program across
two imports. The printed layout mirrors the figure.
"""

from repro.apps import Calculator, TextIndex, sample_database
from repro.hadas import IOO
from repro.net import LAN, Network, Site, WAN
from repro.sim import Simulator


def render(ioo: IOO) -> None:
    print(f"+-- IOO {ioo.site.site_id} ({ioo.site.domain})")
    print(f"|   Home:     {sorted(ioo.home) or '(empty)'}")
    vicinity = {
        site: entry.ambassador.invoke("info")["domain"]
        for site, entry in ioo.vicinity.items()
    }
    print(f"|   Vicinity: {vicinity or '(empty)'}")
    ambassadors = [
        f"{name} (of {amb.invoke('whoami')['origin_site']})"
        for name, amb in ioo.imports.items()
    ]
    print(f"|   AMBs:     {ambassadors or '(none)'}")
    print(f"|   Interop:  {ioo.programs() or '(none)'}")
    print("+--")


def main() -> None:
    network = Network(Simulator())
    sites = {
        "haifa": Site(network, "haifa", "technion.ee"),
        "boston": Site(network, "boston", "mit.lcs"),
        "paris": Site(network, "paris", "inria.fr"),
    }
    network.topology.connect("haifa", "boston", *WAN)
    network.topology.connect("haifa", "paris", *WAN)
    network.topology.connect("boston", "paris", *LAN)
    ioos = {name: IOO(site) for name, site in sites.items()}

    # Home containers: each site integrates a local application
    db = sample_database()
    ioos["haifa"].integrate(
        "employees", db,
        operations={"payroll_total": db.payroll_total, "headcount": db.headcount},
    )
    calc = Calculator()
    ioos["paris"].integrate("calc", calc, operations={"evaluate": calc.evaluate})
    index = TextIndex()
    index.add_document("icdcs97", "a reflective model for mobile software objects")
    ioos["boston"].integrate(
        "library", index, operations={"search": index.search}
    )

    # Configuration: links (each installs a peer's IOO Ambassador here)
    ioos["boston"].link("haifa")
    ioos["boston"].link("paris")
    ioos["paris"].link("haifa")

    # Imports: APO Ambassadors settle in foreign territories
    ioos["boston"].import_apo("haifa", "employees")
    ioos["boston"].import_apo("paris", "calc")
    ioos["paris"].import_apo("haifa", "employees", local_name="db")

    # Coordination: an interoperability program across two imports
    ioos["boston"].add_program(
        "payroll_with_bonus",
        "db = self.get('imports')['employees']\n"
        "calc = self.get('imports')['calc']\n"
        "total = db.invoke('payroll_total', [])\n"
        "return calc.invoke('evaluate', ['(' + str(total) + ') * 110 / 100'])",
        doc="total payroll at Haifa, +10% bonus, computed at Paris",
    )

    print("HADAS external view (compare with Figure 2):\n")
    for ioo in ioos.values():
        render(ioo)
        print()

    result = ioos["boston"].run_program("payroll_with_bonus")
    print("interop program 'payroll_with_bonus' ->", result)
    print("\nsimulated time:", f"{network.now:.3f}s;", network)


if __name__ == "__main__":
    main()
