"""Stateful MPL sessions and the CLI REPL."""

import subprocess
import sys

import pytest

from repro.core.errors import MPLRuntimeError
from repro.lang import MplSession


class TestMplSession:
    def test_state_persists_across_feeds(self):
        session = MplSession()
        session.feed("let x = 10")
        value, _output = session.feed("x + 5")
        assert value == 15

    def test_declarations_persist(self):
        session = MplSession()
        session.feed(
            "object c { fixed data n = 0\n"
            "  fixed method bump() { n = n + 1\nreturn n } }"
        )
        session.feed("let c1 = new c")
        assert session.feed("c1.bump()")[0] == 1
        assert session.feed("c1.bump()")[0] == 2

    def test_objects_live_between_feeds(self):
        session = MplSession()
        session.feed("object box { fixed data v = null\n"
                     "  fixed method put(x) { v = x\nreturn true }\n"
                     "  fixed method take() { return v } }")
        session.feed("let b = new box")
        session.feed('b.put("payload")')
        assert session.feed("b.take()")[0] == "payload"

    def test_output_is_incremental(self):
        session = MplSession()
        _value, first = session.feed("print 1\nprint 2")
        _value, second = session.feed("print 3")
        assert first == ["1", "2"]
        assert second == ["3"]

    def test_errors_do_not_corrupt_the_session(self):
        session = MplSession()
        session.feed("let x = 1")
        with pytest.raises(MPLRuntimeError):
            session.feed("undefined_name")
        assert session.feed("x")[0] == 1

    def test_seed_bindings(self):
        session = MplSession(bindings={"seeded": 99})
        assert session.feed("seeded + 1")[0] == 100

    def test_variables_view(self):
        session = MplSession()
        session.feed("let a = 1")
        assert session.variables["a"] == 1


class TestReplCommand:
    def run_repl(self, script: str) -> str:
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "repl"],
            input=script, capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        return completed.stdout

    def test_values_echoed(self):
        out = self.run_repl("1 + 1\n\n")
        assert "=> 2" in out

    def test_multi_line_declaration(self):
        out = self.run_repl(
            "object c { fixed data n = 5\n"
            "  fixed method get_n() { return n } }\n"
            "let c1 = new c\n"
            "print c1.get_n()\n"
            "\n"
        )
        assert "5" in out

    def test_errors_reported_and_session_continues(self):
        out = self.run_repl("ghost\nlet x = 7\nprint x\n\n")
        assert "error: MPLRuntimeError" in out
        assert "7" in out
