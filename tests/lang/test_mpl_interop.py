"""MPL-written interoperability programs installed in IOOs."""

import pytest

from repro.apps import Calculator, sample_database
from repro.core.errors import MPLSyntaxError, PreProcedureVeto
from repro.hadas import IOO
from repro.lang.compiler import compile_member_source
from repro.net import Network, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    ioo_h, ioo_b = IOO(haifa), IOO(boston)
    db = sample_database()
    ioo_h.integrate(
        "employees", db,
        operations={
            "payroll_total": db.payroll_total,
            "headcount": db.headcount,
            "salary_of": db.salary_of,
        },
    )
    ioo_b.link("haifa")
    ioo_b.import_apo("haifa", "employees")
    return network, ioo_h, ioo_b


class TestCompileMemberSource:
    def test_single_method_compiles(self):
        compiled = compile_member_source(
            "method twice(x) { return x * 2 }"
        )
        assert compiled.name == "twice"
        assert "args[0] * 2" in compiled.body_source

    def test_data_names_resolve(self):
        compiled = compile_member_source(
            "method peek() { return imports }",
            data_names=frozenset({"imports"}),
        )
        assert "self.get('imports')" in compiled.body_source

    def test_requires_compiles_to_pre(self):
        compiled = compile_member_source(
            "method f(x) requires x > 0 { return x }"
        )
        assert compiled.pre_source.startswith("return bool(")

    def test_multiple_methods_rejected(self):
        with pytest.raises(MPLSyntaxError):
            compile_member_source(
                "method a() { return 1 }\nmethod b() { return 2 }"
            )

    def test_data_member_rejected(self):
        with pytest.raises(MPLSyntaxError):
            compile_member_source("data x = 1")

    def test_non_member_source_rejected(self):
        with pytest.raises(MPLSyntaxError):
            compile_member_source("let x = 1")


class TestMplPrograms:
    def test_program_runs_across_the_import(self, world):
        _network, _ioo_h, ioo_b = world
        name = ioo_b.add_program_mpl(
            """
            method avg_salary() {
              let db = imports["employees"]
              return db.payroll_total() / db.headcount()
            }
            """,
            doc="average salary across the imported database",
        )
        assert name == "avg_salary"
        assert ioo_b.run_program("avg_salary") == pytest.approx(5150.0)
        assert "avg_salary" in ioo_b.programs()

    def test_program_with_arguments_and_logic(self, world):
        _network, _ioo_h, ioo_b = world
        ioo_b.add_program_mpl(
            """
            method raise_check(name, budget) {
              let db = imports["employees"]
              let current = db.salary_of(name)
              if current + 500 <= budget {
                return "affordable"
              } else {
                return "too expensive"
              }
            }
            """
        )
        assert ioo_b.run_program("raise_check", ["moshe", 6000]) == "affordable"
        assert ioo_b.run_program("raise_check", ["dana", 6000]) == "too expensive"

    def test_requires_clause_guards_program(self, world):
        _network, _ioo_h, ioo_b = world
        ioo_b.add_program_mpl(
            "method guarded(x) requires x > 0 { return x }"
        )
        assert ioo_b.run_program("guarded", [5]) == 5
        with pytest.raises(PreProcedureVeto):
            ioo_b.run_program("guarded", [-1])

    def test_program_spanning_two_imports(self, world):
        network, _ioo_h, ioo_b = world
        paris = Site(network, "paris", "inria.fr")
        network.topology.connect("boston", "paris", *WAN)
        ioo_p = IOO(paris)
        calc = Calculator()
        ioo_p.integrate("calc", calc, operations={"evaluate": calc.evaluate})
        ioo_b.link("paris")
        ioo_b.import_apo("paris", "calc")
        ioo_b.add_program_mpl(
            """
            method taxed_total(rate_percent) {
              let db = imports["employees"]
              let calc = imports["calc"]
              let total = db.payroll_total()
              return calc.evaluate(str(total) + " * " + str(rate_percent) + " / 100")
            }
            """
        )
        assert ioo_b.run_program("taxed_total", [110]) == 41200 * 110 / 100

    def test_mpl_program_is_portable(self, world):
        _network, _ioo_h, ioo_b = world
        ioo_b.add_program_mpl("method answer() { return 42 }")
        method, _section = ioo_b.obj.containers.lookup_method("answer")
        assert method.portable
