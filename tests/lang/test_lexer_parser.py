"""MPL front end: lexing and parsing."""

import pytest

from repro.core.errors import MPLSyntaxError
from repro.lang import parse, tokenize
from repro.lang import ast_nodes as ast


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("let x = 42")]
        assert kinds == ["keyword", "ident", "punct", "int", "eof"]

    def test_real_vs_int(self):
        tokens = tokenize("1 2.5 .75")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("int", "1"), ("real", "2.5"), ("real", ".75"),
        ]

    def test_method_call_on_literal_is_not_a_real(self):
        tokens = tokenize("x.invoke")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("ident", "x"), ("punct", "."), ("ident", "invoke"),
        ]

    def test_string_escapes(self):
        token = tokenize(r'"a\n\t\"b\\"')[0]
        assert token.text == 'a\n\t"b\\'

    def test_unterminated_string(self):
        with pytest.raises(MPLSyntaxError):
            tokenize('"never closed')

    def test_comments_ignored(self):
        tokens = tokenize("x // the rest is noise = = =\ny")
        texts = [t.text for t in tokens if t.kind == "ident"]
        assert texts == ["x", "y"]

    def test_newlines_collapse(self):
        tokens = tokenize("a\n\n\nb")
        assert [t.kind for t in tokens] == ["ident", "newline", "ident", "eof"]

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a <= b == c != d >= e") if t.kind == "punct"]
        assert texts == ["<=", "==", "!=", ">="]

    def test_line_numbers(self):
        tokens = tokenize("a\nbb\n  ccc")
        positions = {t.text: (t.line, t.column) for t in tokens if t.kind == "ident"}
        assert positions == {"a": (1, 1), "bb": (2, 1), "ccc": (3, 3)}

    def test_bad_character(self):
        with pytest.raises(MPLSyntaxError):
            tokenize("a @ b")


class TestParserDeclarations:
    def test_object_with_sections(self):
        program = parse(
            """
            object thing extensible meta {
              fixed data core = 1
              data soft = 2
              fixed method get_core() { return core }
              method get_soft() { return soft }
            }
            """
        )
        decl = program.objects[0]
        assert decl.name == "thing"
        assert decl.extensible_meta
        assert [(d.name, d.fixed) for d in decl.data] == [
            ("core", True), ("soft", False),
        ]
        assert [(m.name, m.fixed) for m in decl.methods] == [
            ("get_core", True), ("get_soft", False),
        ]

    def test_data_kind_annotation(self):
        program = parse("object o { fixed data n: integer = 5 }")
        assert program.objects[0].data[0].kind == "integer"

    def test_requires_and_ensures(self):
        program = parse(
            """
            object o {
              fixed data balance = 10
              fixed method spend(x)
                requires x <= balance
                ensures result >= 0
              { return balance - x }
            }
            """
        )
        method = program.objects[0].methods[0]
        assert isinstance(method.requires, ast.Binary)
        assert isinstance(method.ensures, ast.Binary)

    def test_private_members(self):
        program = parse(
            "object o { fixed private data secret = 1\n"
            "fixed private method peek() { return secret } }"
        )
        assert program.objects[0].data[0].private
        assert program.objects[0].methods[0].private

    def test_malformed_member(self):
        with pytest.raises(MPLSyntaxError):
            parse("object o { banana }")


class TestParserStatements:
    def test_let_and_print(self):
        program = parse("let x = 1 + 2\nprint x")
        assert isinstance(program.statements[0], ast.Let)
        assert isinstance(program.statements[1], ast.Print)

    def test_precedence(self):
        program = parse("let x = 1 + 2 * 3")
        value = program.statements[0].value
        assert value.op == "+"
        assert value.right.op == "*"

    def test_comparison_and_logic(self):
        program = parse("let ok = a < 3 and not done or b == 2")
        value = program.statements[0].value
        assert value.op == "or"
        assert value.left.op == "and"

    def test_method_call_chain(self):
        program = parse('let y = registry.find("db").invoke(1)')
        call = program.statements[0].value
        assert isinstance(call, ast.MethodCall)
        assert call.name == "invoke"
        assert isinstance(call.target, ast.MethodCall)
        assert call.target.name == "find"

    def test_index_and_index_assign(self):
        program = parse("table[1] = rows[0]")
        statement = program.statements[0]
        assert isinstance(statement, ast.IndexAssign)

    def test_if_else_and_while(self):
        program = parse(
            """
            if x > 0 { print x } else { print 0 }
            while x > 0 { x = x - 1 }
            """
        )
        assert isinstance(program.statements[0], ast.If)
        assert isinstance(program.statements[1], ast.While)

    def test_for_each(self):
        program = parse("for item in [1, 2] { print item }")
        statement = program.statements[0]
        assert isinstance(statement, ast.ForEach)
        assert statement.name == "item"

    def test_list_and_map_literals(self):
        program = parse('let x = [1, "two", [3]]\nlet y = {"a": 1, 2: [3]}')
        assert isinstance(program.statements[0].value, ast.ListExpr)
        assert isinstance(program.statements[1].value, ast.MapExpr)

    def test_new_expression(self):
        program = parse("object o { }\nlet x = new o")
        assert isinstance(program.statements[0].value, ast.NewObject)

    def test_invalid_assignment_target(self):
        with pytest.raises(MPLSyntaxError):
            parse("1 + 2 = 3")

    def test_error_carries_location(self):
        with pytest.raises(MPLSyntaxError) as excinfo:
            parse("let = 5")
        assert "line 1" in str(excinfo.value)


class TestLineJoining:
    def test_newlines_inside_parens_join(self):
        program = parse("let x = (1 +\n         2 +\n         3)")
        assert isinstance(program.statements[0], ast.Let)
        assert len(program.statements) == 1

    def test_newlines_inside_call_arguments_join(self):
        program = parse('let y = helper(1,\n  2,\n  3)')
        call = program.statements[0].value
        assert isinstance(call, ast.FuncCall)
        assert len(call.args) == 3

    def test_newlines_inside_list_literal_join(self):
        program = parse("let rows = [1,\n 2,\n 3]\nprint rows")
        assert len(program.statements) == 2

    def test_braces_do_not_join(self):
        # blocks rely on newline statement separation
        program = parse("if true {\n  print 1\n  print 2\n}")
        statement = program.statements[0]
        assert isinstance(statement, ast.If)
        assert len(statement.then_body) == 2

    def test_unbalanced_close_does_not_underflow(self):
        # a stray ')' must not corrupt subsequent newline handling
        with pytest.raises(MPLSyntaxError):
            parse(")\nlet x = 1")
