"""Property-based: MPL arithmetic/logic agrees with Python semantics.

Random expression trees are rendered to MPL, run through the full
pipeline (lex -> parse -> compile -> sandbox -> MROM invocation), and
compared against direct Python evaluation of the same tree. This pins
the compiler's operator translation and precedence handling.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Principal
from repro.lang import Interpreter

OWNER = Principal("mrom://sem/1.1", "sem", "owner")


class Node:
    """A tiny expression tree with synchronized MPL and Python renderings."""

    def __init__(self, mpl: str, value):
        self.mpl = mpl
        self.value = value


def leaves():
    return st.one_of(
        st.integers(min_value=-50, max_value=50).map(
            lambda n: Node(f"({n})" if n < 0 else str(n), n)
        ),
        st.booleans().map(lambda b: Node("true" if b else "false", b)),
    )


def combine(children):
    def binary(pair_and_op):
        (left, right), op = pair_and_op
        if op in ("/", "%") and (
            not isinstance(right.value, bool) and right.value == 0
            or isinstance(right.value, bool) and right.value == 0
        ):
            op = "+"
        python_ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "%": lambda a, b: a % b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "and": lambda a, b: a and b,
            "or": lambda a, b: a or b,
        }
        value = python_ops[op](left.value, right.value)
        return Node(f"({left.mpl} {op} {right.mpl})", value)

    pairs = st.tuples(st.tuples(children, children),
                      st.sampled_from(["+", "-", "*", "%", "<", "<=", "==",
                                       "!=", "and", "or"]))
    unary = children.map(
        lambda node: Node(f"(not {node.mpl})", not node.value)
    )
    return st.one_of(pairs.map(binary), unary)


expressions = st.recursive(leaves(), combine, max_leaves=12)


class TestExpressionSemantics:
    @given(expressions)
    @settings(max_examples=120, deadline=None)
    def test_script_evaluation_matches_python(self, node):
        result = Interpreter().run(f"let answer = {node.mpl}")
        assert result.variables["answer"] == node.value

    @given(expressions)
    @settings(max_examples=60, deadline=None)
    def test_compiled_method_matches_python(self, node):
        # the same expression, but compiled into a portable method body
        # and executed through the full MROM invocation machinery
        result = Interpreter(owner=OWNER).run(
            "object probe {\n"
            f"  fixed method compute() {{ return {node.mpl} }}\n"
            "}\n"
            "let p = new probe\n"
            "p.compute()"
        )
        assert result.value == node.value

    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=1,
                    max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_loop_accumulation_matches_python(self, numbers):
        literal = "[" + ", ".join(
            f"({n})" if n < 0 else str(n) for n in numbers
        ) + "]"
        result = Interpreter().run(
            f"""
            let total = 0
            for n in {literal} {{
              if n > 0 {{ total = total + n }}
            }}
            total
            """
        )
        assert result.value == sum(n for n in numbers if n > 0)
