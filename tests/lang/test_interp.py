"""MPL end to end: compile to portable MROM objects and run scripts."""

import pytest

from repro.core import PostProcedureError, PreProcedureVeto, Principal
from repro.core.errors import (
    AccessDeniedError,
    MPLRuntimeError,
    MPLSyntaxError,
)
from repro.lang import Interpreter

COUNTER = """
object counter {
  fixed data count = 0
  fixed method bump(step) {
    count = count + step
    return count
  }
  fixed method peek() { return count }
}
"""


def run(source, **kwargs):
    return Interpreter().run(source, **kwargs)


class TestScripts:
    def test_arithmetic_and_print(self):
        result = run("print 2 + 3 * 4\nprint (2 + 3) * 4")
        assert result.output == ["14", "20"]

    def test_variables_and_reassignment(self):
        result = run("let x = 1\nx = x + 41\nprint x")
        assert result.output == ["42"]

    def test_assignment_requires_let(self):
        with pytest.raises(MPLRuntimeError):
            run("y = 1")

    def test_control_flow(self):
        result = run(
            """
            let total = 0
            for n in [1, 2, 3, 4] {
              if n % 2 == 0 { total = total + n }
            }
            while total < 10 { total = total + 1 }
            print total
            """
        )
        assert result.output == ["10"]

    def test_builtins(self):
        result = run('print len([1, 2, 3])\nprint max([5, 2, 9])')
        assert result.output == ["3", "9"]

    def test_collections(self):
        result = run(
            """
            let table = {"a": 1}
            table["b"] = 2
            print table["b"]
            let rows = [10, 20]
            rows[0] = 99
            print rows[0]
            """
        )
        assert result.output == ["99"] if False else result.output == ["2", "99"]

    def test_rendering_of_special_values(self):
        result = run("print null\nprint true\nprint false")
        assert result.output == ["null", "true", "false"]

    def test_last_value_returned(self):
        assert run("1 + 1\n2 + 2").value == 4


class TestObjects:
    def test_declare_and_use(self):
        result = run(COUNTER + "let c = new counter\nc.bump(3)\nprint c.bump(4)")
        assert result.output == ["7"]

    def test_instances_independent(self):
        result = run(
            COUNTER
            + """
            let a = new counter
            let b = new counter
            a.bump(10)
            print b.peek()
            """
        )
        assert result.output == ["0"]

    def test_data_item_sugar_reads_and_writes(self):
        result = run(
            """
            object box {
              fixed data content = "empty"
              fixed method fill(thing) {
                content = thing
                return content
              }
            }
            let b = new box
            print b.fill("gold")
            """
        )
        assert result.output == ["gold"]

    def test_requires_becomes_pre_procedure(self):
        source = (
            """
            object account {
              fixed data balance = 50
              fixed method withdraw(x) requires x <= balance {
                balance = balance - x
                return balance
              }
            }
            let a = new account
            a.withdraw(100)
            """
        )
        with pytest.raises(PreProcedureVeto):
            run(source)

    def test_ensures_becomes_post_procedure(self):
        source = (
            """
            object broken {
              fixed method answer() ensures result == 42 { return 41 }
            }
            let b = new broken
            b.answer()
            """
        )
        with pytest.raises(PostProcedureError):
            run(source)

    def test_extensible_members_land_in_extensible_section(self):
        result = run(
            """
            object svc {
              data version = 1
              method ping() { return "pong" }
            }
            let s = new svc
            print s.ping()
            """
        )
        obj = result.variables["s"]
        assert obj.containers.lookup_data("version")[1] == "extensible"
        assert obj.containers.lookup_method("ping")[1] == "extensible"

    def test_private_members_guarded(self):
        result = run(
            """
            object vault {
              fixed private data secret = "s3cret"
              fixed method hint() { return len(secret) }
            }
            let v = new vault
            print v.hint()
            """
        )
        assert result.output == ["6"]
        vault = result.variables["v"]
        stranger = Principal("mrom://x/1.1", "elsewhere", "stranger")
        with pytest.raises(AccessDeniedError):
            vault.get_data("secret", caller=stranger)

    def test_self_call_invokes_sibling(self):
        result = run(
            COUNTER.replace(
                "fixed method peek() { return count }",
                "fixed method peek() { return count }\n"
                "  fixed method double_bump(step) {\n"
                "    self.bump(step)\n    return self.bump(step)\n  }",
            )
            + "let c = new counter\nprint c.double_bump(2)"
        )
        assert result.output == ["4"]

    def test_selfview_api_reachable(self):
        result = run(
            """
            object flexible {
              fixed method grow(name, value) {
                self.add_data(name, value)
                return self.get(name)
              }
            }
            let f = new flexible
            print f.grow("wings", 2)
            """
        )
        assert result.output == ["2"]

    def test_meta_methods_reachable_from_script(self):
        result = run(
            COUNTER
            + """
            let c = new counter
            c.addDataItem("tag", "hot")
            let described = c.getDataItem("tag")
            print described[0]["section"]
            """
        )
        assert result.output == ["extensible"]

    def test_compile_error_unknown_name(self):
        with pytest.raises(MPLSyntaxError):
            run("object o { fixed method bad() { return nonexistent } }\nlet x = new o")

    def test_reserved_names_rejected(self):
        with pytest.raises(MPLSyntaxError):
            run("object o { fixed method bad(args) { return 1 } }\nlet x = new o")


class TestMobility:
    def test_mpl_objects_are_portable_by_construction(self):
        from repro.mobility import pack, unpack

        result = run(COUNTER + "let c = new counter\nc.bump(5)")
        original = result.variables["c"]
        copy = unpack(pack(original))
        owner = original.owner
        assert copy.invoke("peek", caller=owner) == 5
        assert copy.invoke("bump", [1], caller=owner) == 6

    def test_mpl_object_migrates_over_the_network(self):
        from repro.mobility import MobilityManager
        from repro.net import Network, Site, WAN
        from repro.sim import Simulator

        network = Network(Simulator())
        haifa = Site(network, "haifa", "technion.ee")
        boston = Site(network, "boston", "mit.lcs")
        network.topology.connect("haifa", "boston", *WAN)
        sender = MobilityManager(haifa)
        MobilityManager(boston)

        interpreter = Interpreter(owner=haifa.principal)
        result = interpreter.run(COUNTER + "let c = new counter\nc.bump(2)")
        counter = result.variables["c"]
        haifa.register_object(counter)
        sender.migrate(counter, "boston")
        settled = boston.local_object(counter.guid)
        assert settled.invoke("bump", [1], caller=haifa.principal) == 3

    def test_bindings_inject_remote_refs(self):
        from repro.net import Network, Site, WAN
        from repro.sim import Simulator

        network = Network(Simulator())
        haifa = Site(network, "haifa", "technion.ee")
        boston = Site(network, "boston", "mit.lcs")
        network.topology.connect("haifa", "boston", *WAN)
        service = haifa.create_object(display_name="svc")
        service.define_fixed_method("ping", "return 'pong'")
        service.seal()
        haifa.register_object(service, name="svc")
        ref = boston.remote_resolve("haifa", "svc")

        result = Interpreter().run(
            "print remote.ping()", bindings={"remote": ref}
        )
        assert result.output == ["pong"]
