"""Shared fixtures for the MROM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    AccessControlList,
    MROMObject,
    Principal,
    allow_all,
)


@pytest.fixture
def alice() -> Principal:
    return Principal("mrom:obj:alice", "technion.ee", "alice")


@pytest.fixture
def bob() -> Principal:
    return Principal("mrom:obj:bob", "technion.cs", "bob")


@pytest.fixture
def mallory() -> Principal:
    return Principal("mrom:obj:mallory", "evil.example", "mallory")


def build_counter(
    owner: Principal | None = None,
    extensible_meta: bool = False,
    meta_acl: AccessControlList | None = None,
) -> MROMObject:
    """A counter object used across many tests.

    Fixed: data 'count', methods 'increment' and 'peek'.
    """
    obj = MROMObject(
        display_name="counter",
        owner=owner,
        extensible_meta=extensible_meta,
        meta_acl=meta_acl,
    )
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method(
        "increment",
        "step = args[0] if args else 1\n"
        "self.set('count', self.get('count') + step)\n"
        "return self.get('count')",
    )
    obj.define_fixed_method("peek", "return self.get('count')")
    obj.seal()
    return obj


@pytest.fixture
def counter() -> MROMObject:
    return build_counter()


@pytest.fixture
def open_meta_counter(alice: Principal) -> MROMObject:
    """A counter owned by alice, with extensible meta-methods whose ACL
    admits everyone (for tower tests that are not about security)."""
    return build_counter(
        owner=alice,
        extensible_meta=True,
        meta_acl=allow_all(),
    )


@pytest.fixture
def owned_counter(alice: Principal) -> MROMObject:
    """A counter owned by alice with the default owner-only meta ACL."""
    return build_counter(owner=alice, extensible_meta=True)


def grant_invoke(acl_description: dict) -> dict:
    """Helper making an allow-all ACL description for added methods."""
    return acl_description


def make_site_world(
    seed: int = 0,
    names: tuple[str, ...] = ("a", "b"),
    domain: str = "dom.{name}",
    topology: str = "mesh",
):
    """The site factory shared by the load, recovery and cluster suites.

    Builds ``Network(Simulator(seed))`` plus one :class:`Site` per name
    (sites self-register, which creates their topology nodes) and wires
    them with LAN links — a full ``mesh`` or a linear ``chain``.
    Returns ``(network, sites)`` with ``sites`` keyed by site id.
    """
    from repro.net import LAN, Network, Site
    from repro.sim import Simulator

    network = Network(Simulator(seed))
    sites = {
        name: Site(network, name, domain.format(name=name)) for name in names
    }
    if topology == "mesh":
        pairs = [
            (left, right)
            for left in names for right in names if left < right
        ]
    elif topology == "chain":
        pairs = list(zip(names, names[1:]))
    else:
        raise ValueError(f"unknown topology {topology!r}")
    for left, right in pairs:
        network.topology.connect(left, right, *LAN)
    return network, sites


@pytest.fixture
def site_world():
    """Factory fixture over :func:`make_site_world`."""
    return make_site_world


__all__ = ["build_counter", "make_site_world"]
