"""Shared fixtures for the MROM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    AccessControlList,
    MROMObject,
    Principal,
    allow_all,
)


@pytest.fixture
def alice() -> Principal:
    return Principal("mrom:obj:alice", "technion.ee", "alice")


@pytest.fixture
def bob() -> Principal:
    return Principal("mrom:obj:bob", "technion.cs", "bob")


@pytest.fixture
def mallory() -> Principal:
    return Principal("mrom:obj:mallory", "evil.example", "mallory")


def build_counter(
    owner: Principal | None = None,
    extensible_meta: bool = False,
    meta_acl: AccessControlList | None = None,
) -> MROMObject:
    """A counter object used across many tests.

    Fixed: data 'count', methods 'increment' and 'peek'.
    """
    obj = MROMObject(
        display_name="counter",
        owner=owner,
        extensible_meta=extensible_meta,
        meta_acl=meta_acl,
    )
    obj.define_fixed_data("count", 0)
    obj.define_fixed_method(
        "increment",
        "step = args[0] if args else 1\n"
        "self.set('count', self.get('count') + step)\n"
        "return self.get('count')",
    )
    obj.define_fixed_method("peek", "return self.get('count')")
    obj.seal()
    return obj


@pytest.fixture
def counter() -> MROMObject:
    return build_counter()


@pytest.fixture
def open_meta_counter(alice: Principal) -> MROMObject:
    """A counter owned by alice, with extensible meta-methods whose ACL
    admits everyone (for tower tests that are not about security)."""
    return build_counter(
        owner=alice,
        extensible_meta=True,
        meta_acl=allow_all(),
    )


@pytest.fixture
def owned_counter(alice: Principal) -> MROMObject:
    """A counter owned by alice with the default owner-only meta ACL."""
    return build_counter(owner=alice, extensible_meta=True)


def grant_invoke(acl_description: dict) -> dict:
    """Helper making an allow-all ACL description for added methods."""
    return acl_description


__all__ = ["build_counter"]
