"""Synchronized invocation across threads; reentrancy gates."""

import threading

import pytest

from repro.core import MROMObject
from repro.core.errors import ReentrancyError
from repro.concurrency import InvocationGate, SynchronizedObject

from ..conftest import build_counter


class TestSynchronizedObject:
    def test_basic_delegation(self):
        synced = SynchronizedObject(build_counter())
        assert synced.invoke("increment", [2]) == 2
        assert synced.get_data("count") == 2
        synced.set_data("count", 10, caller=synced.obj.principal)
        assert synced.invoke("peek") == 10

    def test_concurrent_increments_do_not_lose_updates(self):
        synced = SynchronizedObject(build_counter())
        threads = [
            threading.Thread(
                target=lambda: [synced.invoke("increment") for _ in range(100)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert synced.get_data("count") == 800

    def test_reentrant_self_calls_do_not_deadlock(self):
        obj = MROMObject(display_name="recursive")
        obj.define_fixed_data("n", 0)
        obj.define_fixed_method(
            "outer", "return self.call('inner') + 1"
        )
        obj.define_fixed_method("inner", "return 10")
        obj.seal()
        synced = SynchronizedObject(obj)
        assert synced.invoke("outer") == 11

    def test_holding_gives_multi_step_atomicity(self):
        synced = SynchronizedObject(build_counter())
        errors = []

        def read_modify_write():
            for _ in range(100):
                with synced.holding():
                    before = synced.get_data("count")
                    synced.invoke("increment")
                    after = synced.get_data("count")
                    if after != before + 1:
                        errors.append((before, after))

        threads = [threading.Thread(target=read_modify_write) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert synced.get_data("count") == 400


class TestInvocationGate:
    def test_plain_invocation_works(self):
        gate = InvocationGate(build_counter())
        assert gate.invoke("increment", [3]) == 3

    def test_reentry_from_same_thread_detected(self):
        obj = MROMObject(display_name="reenter")
        obj.define_fixed_method("selfish", lambda self, args, ctx: ctx.env["gate"].invoke("selfish"))
        obj.seal()
        gate = InvocationGate(obj)
        obj.environment["gate"] = gate
        with pytest.raises(ReentrancyError):
            gate.invoke("selfish")

    def test_busy_from_other_thread_detected(self):
        obj = MROMObject(display_name="slow")
        started = threading.Event()
        release = threading.Event()

        def body(self, args, ctx):
            started.set()
            release.wait(timeout=5)
            return "done"

        obj.define_fixed_method("slow", body)
        obj.seal()
        gate = InvocationGate(obj)

        results = {}

        def long_call():
            results["first"] = gate.invoke("slow")

        worker = threading.Thread(target=long_call)
        worker.start()
        started.wait(timeout=5)
        with pytest.raises(ReentrancyError):
            gate.invoke("slow")
        release.set()
        worker.join()
        assert results["first"] == "done"

    def test_gate_reusable_after_completion(self):
        gate = InvocationGate(build_counter())
        gate.invoke("increment")
        assert gate.invoke("increment") == 2
