"""Active objects: mailbox-serialized asynchronous invocation."""

import threading

import pytest

from repro.concurrency.active import ActiveObject
from repro.core import MROMObject, PreProcedureVeto
from repro.core.errors import ConcurrencyError

from ..conftest import build_counter


@pytest.fixture
def active():
    active_object = ActiveObject(build_counter())
    yield active_object
    active_object.stop()


class TestBasics:
    def test_sync_convenience(self, active):
        assert active.invoke("increment", [5]) == 5
        assert active.invoke("peek") == 5

    def test_async_future(self, active):
        future = active.invoke_async("increment", [2])
        assert future.result(timeout=5) == 2

    def test_mailbox_order_preserved(self, active):
        futures = [active.invoke_async("increment") for _ in range(10)]
        results = [future.result(timeout=5) for future in futures]
        assert results == list(range(1, 11))

    def test_exceptions_delivered_via_future(self):
        obj = MROMObject()
        obj.define_fixed_method("picky", "return 1", pre="return False")
        obj.seal()
        with ActiveObject(obj) as active:
            future = active.invoke_async("picky")
            with pytest.raises(PreProcedureVeto):
                future.result(timeout=5)

    def test_processed_counter(self, active):
        for _ in range(3):
            active.invoke("increment")
        assert active.processed == 3


class TestConcurrency:
    def test_many_threads_no_lost_updates(self, active):
        def hammer():
            for _ in range(50):
                active.invoke("increment")

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert active.invoke("peek") == 300

    def test_exactly_one_thread_ever_touches_the_object(self):
        executing_threads = set()

        def observe(self_view, args, ctx):
            executing_threads.add(threading.get_ident())
            return len(executing_threads)

        obj = MROMObject()
        obj.define_fixed_method("observe", observe)
        obj.seal()
        with ActiveObject(obj) as active:
            workers = [
                threading.Thread(target=lambda: active.invoke("observe"))
                for _ in range(6)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        # six submitting threads, one executing thread — and it is the
        # worker, not any submitter
        assert len(executing_threads) == 1
        assert threading.get_ident() not in executing_threads


class TestLifecycle:
    def test_stop_is_idempotent(self, active):
        active.stop()
        active.stop()

    def test_submit_after_stop_fails_fast(self, active):
        active.stop()
        with pytest.raises(ConcurrencyError):
            active.invoke_async("increment")

    def test_stop_drains_queued_work(self):
        active = ActiveObject(build_counter())
        futures = [active.invoke_async("increment") for _ in range(20)]
        active.stop()
        assert [future.result(timeout=5) for future in futures] == list(
            range(1, 21)
        )

    def test_context_manager(self):
        with ActiveObject(build_counter()) as active:
            assert active.invoke("increment") == 1
        with pytest.raises(ConcurrencyError):
            active.invoke_async("increment")

    def test_submit_racing_stop_never_strands_the_future(self):
        """Regression: a submit that passed the `_stopped` check but
        enqueued *after* the ``_STOP`` sentinel used to leave its future
        unresolved forever (the worker had already exited).

        The interleaving is forced, not lucky: the submitting thread is
        held between its liveness check and its ``put`` until ``stop()``
        has enqueued the sentinel, and ``stop()`` is held before its
        join until the racy item has landed behind the sentinel.
        """
        active = ActiveObject(build_counter())
        stop_enqueued = threading.Event()
        submitter_in_put = threading.Event()
        racy_put_done = threading.Event()
        mailbox = active._mailbox
        original_put = mailbox.put

        def racing_put(item, *args, **kwargs):
            if isinstance(item, tuple):  # the racy work item
                submitter_in_put.set()
                assert stop_enqueued.wait(5)  # let _STOP go in first
                original_put(item, *args, **kwargs)
                racy_put_done.set()
            else:  # the _STOP sentinel
                original_put(item, *args, **kwargs)
                stop_enqueued.set()

        mailbox.put = racing_put
        original_join = active._worker.join

        def join_after_racy_put(timeout=None):
            assert racy_put_done.wait(5)  # the item lands pre-drain
            original_join(timeout)

        active._worker.join = join_after_racy_put

        futures = []
        submitter = threading.Thread(
            target=lambda: futures.append(active.invoke_async("increment"))
        )
        submitter.start()
        assert submitter_in_put.wait(5)  # past the _stopped check
        active.stop()
        submitter.join(5)
        assert futures, "the racy submit should have produced a future"
        error = futures[0].exception(timeout=5)  # pre-fix: never resolves
        assert isinstance(error, ConcurrencyError)
        assert active.rejected == 1
