"""Regression: a concurrent second ``stop()`` must not steal the
``_STOP`` sentinel (or queued work) out from under the first one.

The happens-before sanitizer's soak instrumentation surfaced the
ordering bug this pins down: ``stop()`` on an already-stopping object
used to drain the mailbox immediately. With the worker still serving a
long invocation, that drain could consume the sentinel the first
``stop()`` had queued — the drain loop discards sentinels — leaving the
worker parked forever on an empty ``get()`` and the first ``stop()`` to
die on its join timeout. The fix joins the worker before draining: the
drain is only safe against a dead worker.
"""

import threading
import time

from repro.concurrency import ActiveObject
from repro.core import MROMObject


def test_concurrent_second_stop_does_not_steal_the_sentinel():
    gate = threading.Event()
    entered = threading.Event()

    def blocker(self_view, args, ctx):
        entered.set()
        gate.wait(5)
        return "done"

    obj = MROMObject(display_name="blocker")
    obj.define_fixed_method("block", blocker)
    obj.seal()
    active = ActiveObject(obj)
    future = active.invoke_async("block")
    assert entered.wait(5), "worker never picked the invocation up"

    errors: list = []

    def do_stop():
        try:
            active.stop(timeout=10)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    first = threading.Thread(target=do_stop)
    first.start()
    deadline = time.monotonic() + 5
    while not active._stopped.is_set() and time.monotonic() < deadline:
        time.sleep(0.005)
    assert active._stopped.is_set()
    second = threading.Thread(target=do_stop)
    second.start()
    # the window where a premature drain would eat the sentinel: the
    # worker is still blocked inside the invocation
    time.sleep(0.05)
    gate.set()
    first.join(15)
    second.join(15)
    assert not first.is_alive() and not second.is_alive()
    assert errors == []
    assert not active._worker.is_alive()
    assert future.result(timeout=5) == "done"
