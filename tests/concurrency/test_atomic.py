"""Atomic mutation blocks: rollback of structure, values, tower, env."""

import pytest

from repro.core import MROMObject, Principal, allow_all
from repro.concurrency import atomic

from ..conftest import build_counter


@pytest.fixture
def owner():
    return Principal("mrom://h/1.1", "dom", "owner")


@pytest.fixture
def obj(owner):
    return build_counter(owner=owner, extensible_meta=True, meta_acl=allow_all())


class Boom(RuntimeError):
    pass


class TestCommit:
    def test_success_keeps_changes(self, obj, owner):
        with atomic(obj):
            obj.invoke("addDataItem", ["x", 1], caller=owner)
            obj.invoke("increment", [5], caller=owner)
        assert obj.get_data("x") == 1
        assert obj.get_data("count") == 5

    def test_returns_the_object(self, obj):
        with atomic(obj) as inner:
            assert inner is obj


class TestRollback:
    def test_data_values_restored(self, obj, owner):
        obj.invoke("increment", [3], caller=owner)
        with pytest.raises(Boom):
            with atomic(obj):
                obj.invoke("increment", [100], caller=owner)
                raise Boom()
        assert obj.get_data("count") == 3

    def test_added_items_removed(self, obj, owner):
        with pytest.raises(Boom):
            with atomic(obj):
                obj.invoke("addDataItem", ["temp", 1], caller=owner)
                obj.invoke("addMethod", ["helper", "return 1"], caller=owner)
                raise Boom()
        assert not obj.containers.has_data("temp")
        assert not obj.containers.has_method("helper")

    def test_deleted_items_resurrected(self, obj, owner):
        obj.invoke("addDataItem", ["keep", 9], caller=owner)
        with pytest.raises(Boom):
            with atomic(obj):
                obj.invoke("deleteDataItem", ["keep"], caller=owner)
                raise Boom()
        assert obj.get_data("keep") == 9

    def test_tower_restored(self, obj, owner):
        with pytest.raises(Boom):
            with atomic(obj):
                obj.invoke(
                    "addMethod",
                    ["invoke", "return 'hijacked'", {"acl": allow_all().describe()}],
                    caller=owner,
                )
                assert obj.invoke("peek") == "hijacked"
                raise Boom()
        assert obj.invoke("peek") == 0

    def test_environment_restored(self, obj):
        obj.environment["mode"] = "normal"
        with pytest.raises(Boom):
            with atomic(obj):
                obj.environment["mode"] = "weird"
                obj.environment["junk"] = True
                raise Boom()
        assert obj.environment["mode"] == "normal"
        assert "junk" not in obj.environment

    def test_mutable_value_mutation_rolled_back(self, owner):
        obj = MROMObject(owner=owner)
        obj.define_fixed_data("log", ["start"])
        obj.seal()
        with pytest.raises(Boom):
            with atomic(obj):
                obj.get_data("log", caller=owner).append("during")
                raise Boom()
        assert obj.get_data("log") == ["start"]

    def test_nested_atomic_blocks(self, obj, owner):
        with atomic(obj):
            obj.invoke("increment", [1], caller=owner)
            with pytest.raises(Boom):
                with atomic(obj):
                    obj.invoke("increment", [100], caller=owner)
                    raise Boom()
            obj.invoke("increment", [1], caller=owner)
        assert obj.get_data("count") == 2

    def test_exception_propagates(self, obj):
        with pytest.raises(Boom):
            with atomic(obj):
                raise Boom()

    def test_fixed_section_untouched_by_snapshot(self, obj, owner):
        # adjacent sanity: the fixed structure cannot change inside the
        # block either, so rollback never needs to consider it
        from repro.core import FixedSectionError

        with pytest.raises(FixedSectionError):
            with atomic(obj):
                obj.invoke("deleteDataItem", ["count"], caller=owner)
        assert obj.containers.has_data("count")
