object probe {
  method m() {
    let scratch = 1 //! mpl.unused-binding
    return 0
  }
}
