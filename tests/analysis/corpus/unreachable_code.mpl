object probe {
  method m() {
    return 1
    print "late" //! mpl.unreachable-code
  }
}
