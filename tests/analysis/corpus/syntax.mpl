// members must be 'data' or 'method'; the parser stops here
object broken {
  banana //! mpl.syntax
}
