return 5 //! mpl.toplevel-misuse
