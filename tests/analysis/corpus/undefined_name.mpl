object probe {
  method m() {
    return zap //! mpl.undefined-name
  }
}
