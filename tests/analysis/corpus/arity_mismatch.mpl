object probe {
  method double(n) {
    return n * 2
  }
  method m() {
    return self.double(1, 2) //! mpl.arity-mismatch
  }
}
