"""Clean twin: only marshalable shapes (lists, dicts, scalars) migrate."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("seen", ["alpha", "beta"])
agent.define_fixed_data("stats", {"hops": 0})
agent.seal()
manager.migrate(agent, "beta")
