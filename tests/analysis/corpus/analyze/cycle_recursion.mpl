object looper {
  data n = 0
  method spin() {
    self.spin() //! cycle.recursion
  }
}
