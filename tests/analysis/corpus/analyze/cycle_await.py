"""Seeded hazard: a synchronous RMI cycle between two serving sites."""
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")

alpha.request("beta", "ping", {"from": "alpha"})
beta.request("alpha", "ping", {"from": "beta"})  # //! cycle.await
