object tally {
  data count = 0
  method bump() {
    count = count + 1 //! race.lost-update
  }
}
