"""Clean twin: a migrating agent whose method bodies are portable strings."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("hops", 0)
agent.define_fixed_method("work", "self.set('hops', 0)")
agent.seal()
manager.migrate(agent, "beta")
