"""Seeded hazard: a native (non-string) method body on a migrating agent."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("hops", 0)
agent.define_fixed_method("work", lambda self, args: None)  # //! migration.native-code
agent.seal()
manager.migrate(agent, "beta")
