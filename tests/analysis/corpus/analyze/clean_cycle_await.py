"""Clean twin: fan-out RMI with no reverse edge, hence no cycle."""
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")

alpha.request("beta", "ping", {"from": "alpha"})
alpha.remote_describe("beta", "some-guid")
