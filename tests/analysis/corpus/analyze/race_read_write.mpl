object gauge {
  data level = 0
  method peek() {
    return level //! race.read-write
  }
  method refill() {
    level = 5
  }
}
