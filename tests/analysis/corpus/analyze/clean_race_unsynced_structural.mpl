object shape {
  data tag = 0
  method relabel() {
    self.set("tag", 7)
  }
}
