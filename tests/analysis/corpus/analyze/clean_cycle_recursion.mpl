object chain {
  data a = 0
  data b = 0
  method outer() {
    self.inner()
  }
  method inner() {
    b = 1
  }
}
