object board {
  data total = 0
  data spare = 0
  method reset() {
    total = 0
  }
  method stash() {
    spare = 1
  }
}
