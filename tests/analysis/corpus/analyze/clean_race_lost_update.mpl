object tally {
  data count = 0
  method reset() {
    count = 0
  }
}
