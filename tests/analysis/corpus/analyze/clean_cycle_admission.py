"""Clean twin: admission windows are fine as long as traffic is one-way."""
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
alpha.inflight_limit = 1
beta.inflight_limit = 1

alpha.request("beta", "ping", {"from": "alpha"})
