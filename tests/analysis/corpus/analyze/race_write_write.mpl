object board {
  data total = 0
  method reset() {
    total = 0
  }
  method stamp() {
    total = 9 //! race.write-write
  }
}
