"""Seeded hazard: a wait cycle through sites whose admission windows
can mutually exhaust — a deadlock even without any literal lock."""
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
alpha.inflight_limit = 1
beta.inflight_limit = 1

alpha.request("beta", "ping", {"from": "alpha"})
beta.request("alpha", "ping", {"from": "beta"})  # //! cycle.await, cycle.admission
