object gauge {
  data level = 0
  data limit = 10
  method peek() {
    return limit
  }
  method refill() {
    level = 5
  }
}
