object shape {
  data tag = 0
  method evolve() {
    self.add_data("extra", 1) //! race.unsynced-structural
  }
}
