"""Seeded hazard: a by-reference stub stored on a migrating agent."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

directory = alpha.remote_resolve("beta", "apps/registry")
agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("home_registry", directory)  # //! migration.external-ref
agent.seal()
manager.migrate(agent, "beta")
