"""Seeded hazard: a data value with no wire form on a migrating agent."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("seen", {"alpha", "beta"})  # //! migration.unmarshalable-value
agent.define_fixed_method("install", "self.set('hops', 1)")
agent.seal()
manager.migrate(agent, "beta")
