"""Clean twin: the agent carries a plain name, not a live remote stub."""
from repro.mobility import MobilityManager
from repro.net import Network, Site

net = Network()
alpha = Site(net, "alpha")
beta = Site(net, "beta")
manager = MobilityManager(alpha)

registry_name = "apps/registry"
agent = alpha.create_object(display_name="agent")
agent.define_fixed_data("home_registry", registry_name)
agent.seal()
manager.migrate(agent, "beta")
