object probe {
  method m() {
    return new probe //! mpl.invalid-construct
  }
}
