object probe {
  method invoke(x) { //! mpl.meta-collision
    return x
  }
}
