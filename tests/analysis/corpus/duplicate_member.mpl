object probe {
  data twin = 1
  data twin = 2 //! mpl.duplicate-member
}
