object probe {
  data count = 0
  method m(n) {
    let n = 2 //! mpl.shadowed-name
    return count
  }
}
