object probe {
  fixed data seal = 1
  method m() {
    self.delete_data("seal") //! mpl.fixed-item-write
    return self.get("seal")
  }
}
