object probe {
  method m(n) {
    n = n + 1 //! mpl.assign-to-parameter
    return n
  }
}
