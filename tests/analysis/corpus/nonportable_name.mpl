object probe {
  method m() {
    let type = 1 //! mpl.nonportable-name
    return type
  }
}
