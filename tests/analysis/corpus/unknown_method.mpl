object probe {
  method ping() {
    return self.pong() //! mpl.unknown-method
  }
}
