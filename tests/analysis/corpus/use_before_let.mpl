object probe {
  method m() {
    print total //! mpl.use-before-let
    let total = 1
    return total
  }
}
