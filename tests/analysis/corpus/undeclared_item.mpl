object probe {
  data count = 0
  method m() {
    return self.get("total") //! mpl.undeclared-item
  }
}
