object probe {
  method m() {
    let args = [] //! mpl.reserved-name
    return 0
  }
}
