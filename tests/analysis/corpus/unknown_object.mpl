let g = new ghost //! mpl.unknown-object
print g
