"""Behavioural tests for the MPL lint passes (beyond the seeded corpus)."""

import pytest

from repro.analysis import Severity
from repro.analysis.mpl_lint import lint_source
from repro.analysis.sources import LintUnit, iter_units, lint_unit

pytestmark = pytest.mark.analysis


def rules_of(findings):
    return {d.rule for d in findings}


CLEAN_PROGRAM = """
object bidder {
  fixed data budget = 1000
  fixed data spent = 0
  data strategy = "cautious"

  fixed method bid(item, price)
    requires price > 0 and spent + price <= budget
    ensures result == true
  {
    spent = spent + price
    let log = [item, price]
    print log
    return true
  }

  fixed method remaining() { return budget - spent }
}

let agent = new bidder
agent.bid("lamp", 300)
print agent.remaining()
"""


class TestCleanPrograms:
    def test_realistic_program_is_clean(self):
        assert lint_source(CLEAN_PROGRAM) == []

    def test_add_then_get_idiom_is_not_flagged(self):
        # run-time extension with a literal name counts as declared
        source = """
        object cache {
          method fill() {
            self.add_data("hot", 1)
            return self.get("hot")
          }
          method use_elsewhere() { return self.get("hot") }
        }
        """
        assert lint_source(source) == []

    def test_underscore_binding_suppresses_unused_warning(self):
        source = """
        object o {
          method m() {
            let _ignored = 1
            return 0
          }
        }
        """
        assert lint_source(source) == []

    def test_branch_defined_local_not_use_before_let(self):
        # optimistic branch join: a let inside either branch counts as
        # defined afterwards (mirrors the compiler's flat local scope)
        source = """
        object o {
          method m(flag) {
            if flag {
              let v = 1
              print v
            } else {
              let v = 2
              print v
            }
            return v
          }
        }
        """
        assert lint_source(source) == []


class TestMethodPasses:
    def test_value_write_to_fixed_data_is_legal(self):
        source = """
        object o {
          fixed data total = 0
          method m(n) {
            total = total + n
            return total
          }
        }
        """
        assert lint_source(source) == []

    def test_indirect_self_call_arity(self):
        source = """
        object o {
          method double(n) { return n * 2 }
          method m() { return self.call("double", 1, 2) }
        }
        """
        assert rules_of(lint_source(source)) == {"mpl.arity-mismatch"}

    def test_indirect_self_call_unknown_target(self):
        source = """
        object o {
          method m() { return self.call("vanish") }
        }
        """
        assert rules_of(lint_source(source)) == {"mpl.unknown-method"}

    def test_meta_method_calls_have_arity_checked(self):
        source = """
        object o {
          data x = 0
          method m() { return self.setDataItem("x") }
        }
        """
        assert rules_of(lint_source(source)) == {"mpl.arity-mismatch"}

    def test_result_only_in_ensures(self):
        source = """
        object o {
          method m()
            ensures result == 1
          { return 1 }
          method bad() { return result }
        }
        """
        findings = lint_source(source)
        assert rules_of(findings) == {"mpl.undefined-name"}
        assert len(findings) == 1

    def test_data_initializer_cannot_reference_names(self):
        source = """
        object o {
          data seeded = other + 1
        }
        """
        assert rules_of(lint_source(source)) == {"mpl.undefined-name"}

    def test_unused_binding_is_a_warning_not_error(self):
        source = """
        object o {
          method m() {
            let idle = 1
            return 0
          }
        }
        """
        [finding] = lint_source(source)
        assert finding.severity is Severity.WARNING
        assert finding.rule == "mpl.unused-binding"


class TestToplevelPasses:
    def test_known_target_call_checked_via_let_new(self):
        source = """
        object greeter {
          method hello(name) { return name }
        }
        let g = new greeter
        g.hello()
        """
        assert rules_of(lint_source(source)) == {"mpl.arity-mismatch"}

    def test_reassignment_clears_the_tracked_type(self):
        source = """
        object greeter {
          method hello(name) { return name }
        }
        let g = new greeter
        g = 5
        g.hello()
        """
        assert lint_source(source) == []

    def test_unknown_toplevel_names_allowed_for_embedded_units(self):
        source = """
        let summary = agent.report()
        print summary
        """
        assert rules_of(lint_source(source)) == {"mpl.undefined-name"}
        assert lint_source(source, allow_unknown_toplevel=True) == []


class TestSourceDiscovery:
    def test_portable_dialect_strings_are_not_mpl(self, tmp_path):
        host = tmp_path / "host.py"
        host.write_text(
            'BODY = (\n'
            '    "n = self.get(\'count\')\\n"\n'
            '    "self.set(\'count\', n + 1)\\n"\n'
            '    "return n + 1"\n'
            ')\n'
        )
        assert list(iter_units([host])) == []

    def test_embedded_mpl_is_discovered_with_offset(self, tmp_path):
        host = tmp_path / "host.py"
        host.write_text(
            "# host application\n"
            'PROGRAM = """\n'
            "let x = nope\n"
            'print x\n'
            '"""\n'
        )
        [unit] = list(iter_units([host]))
        assert unit.embedded
        assert unit.label.endswith("#PROGRAM")
        assert unit.line_offset == 1
        # embedded units assume host-seeded bindings: 'nope' is fine
        assert lint_unit(unit) == []

    def test_embedded_diagnostics_are_reanchored(self):
        unit = LintUnit(
            label="host.py#AGENT",
            source="\nobject o {\n  data twin = 1\n  data twin = 2\n}\n",
            line_offset=10,
            embedded=True,
        )
        [finding] = lint_unit(unit)
        assert finding.rule == "mpl.duplicate-member"
        assert finding.line == 14  # line 4 of the unit, shifted by 10

    def test_standalone_mpl_file(self, tmp_path):
        script = tmp_path / "probe.mpl"
        script.write_text("return 1\n")
        [unit] = list(iter_units([tmp_path]))
        assert not unit.embedded
        [finding] = lint_unit(unit)
        assert finding.rule == "mpl.toplevel-misuse"
