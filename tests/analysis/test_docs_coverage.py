"""docs/ANALYSIS.md must document every registered rule id."""

from pathlib import Path

import pytest

from repro.analysis import all_rule_ids

pytestmark = pytest.mark.analysis

DOC = Path(__file__).resolve().parents[2] / "docs" / "ANALYSIS.md"


def test_every_rule_id_is_documented():
    text = DOC.read_text()
    missing = sorted(rid for rid in all_rule_ids() if rid not in text)
    assert not missing, f"undocumented rule ids: {missing}"


def test_rule_registry_is_nontrivial():
    ids = all_rule_ids()
    assert sum(1 for r in ids if r.startswith("mpl.")) >= 10
    assert any(r.startswith("sandbox.") for r in ids)
    assert any(r.startswith("adm.") for r in ids)
