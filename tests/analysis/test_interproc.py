"""The interprocedural layer: call graphs, wait-for cycles, dedupe."""

import textwrap

import pytest

from repro.analysis.callgraph import from_program, scan_host
from repro.analysis.deadlock import analyze_host_source
from repro.analysis.diagnostics import Diagnostic, Severity, dedupe
from repro.analysis.interproc import analyze_paths
from repro.lang import parse

pytestmark = pytest.mark.analysis


class TestProgramGraph:
    def test_sibling_calls_and_main_edges(self):
        program = parse(
            """
            object svc {
              data x = 0
              method front() {
                self.back()
              }
              method back() {
                return x
              }
            }
            let s = new svc
            s.front()
            """
        )
        graph = from_program(program)
        assert "svc.front" in graph.nodes
        assert graph.successors("svc.front") == {"svc.back"}
        assert graph.successors("<main>") == {"svc.front"}


HOST_TOPOLOGY = textwrap.dedent(
    """
    from repro.net import Network, Site
    from repro.mobility import MobilityManager

    net = Network()
    a = Site(net, "alpha")
    b = Site(net, "beta")
    a.inflight_limit = 2
    manager = MobilityManager(a)

    a.request("beta", "ping", {})
    b.remote_invoke_async("alpha", "guid", "m", [])
    manager.migrate(agent, "beta")
    """
)


class TestHostScan:
    def test_sites_windows_and_edge_kinds(self):
        scan = scan_host(HOST_TOPOLOGY)
        assert scan.sites == {"a": "alpha", "b": "beta"}
        assert scan.windows == {"alpha": 2}
        assert scan.managers == {"manager": "alpha"}
        kinds = {(e.src, e.dst, e.kind) for e in scan.graph.edges}
        assert kinds == {
            ("site:alpha", "site:beta", "rmi"),
            ("site:beta", "site:alpha", "rmi_async"),
            ("site:alpha", "site:beta", "migrate"),
        }

    def test_dynamic_destinations_are_skipped(self):
        scan = scan_host(
            "a = Site(net, 'alpha')\na.request(pick_one(), 'ping', {})\n"
        )
        assert scan.graph.edges == []


class TestHostCycles:
    def test_cycle_reported_at_closing_edge_only(self):
        source = textwrap.dedent(
            """
            a = Site(net, "alpha")
            b = Site(net, "beta")
            a.request("beta", "ping", {})
            b.request("alpha", "ping", {})
            """
        )
        findings = analyze_host_source(source)
        assert [d.rule for d in findings] == ["cycle.await"]
        assert findings[0].line == 5
        assert findings[0].extra["sites"] == ["alpha", "beta"]

    def test_admission_cycle_needs_every_window(self):
        base = textwrap.dedent(
            """
            a = Site(net, "alpha")
            b = Site(net, "beta")
            {windows}
            a.request("beta", "ping", {{}})
            b.request("alpha", "ping", {{}})
            """
        )
        one = analyze_host_source(
            base.format(windows="a.inflight_limit = 1")
        )
        assert {d.rule for d in one} == {"cycle.await"}
        both = analyze_host_source(base.format(
            windows="a.inflight_limit = 1\nb.inflight_limit = 1"
        ))
        assert {d.rule for d in both} == {"cycle.await", "cycle.admission"}

    def test_same_cycle_is_reported_once(self):
        source = textwrap.dedent(
            """
            a = Site(net, "alpha")
            b = Site(net, "beta")
            a.request("beta", "ping", {})
            b.request("alpha", "ping", {})
            b.request("alpha", "ping", {})
            """
        )
        findings = analyze_host_source(source)
        assert [d.rule for d in findings] == ["cycle.await"]


def _diag(rule="race.lost-update", source="f.mpl", line=4, column=1):
    return Diagnostic(
        rule=rule, severity=Severity.WARNING, message="m",
        source=source, line=line, column=column,
    )


class TestDedupe:
    def test_same_rule_file_line_collapses(self):
        first = _diag(column=1)
        echo = _diag(column=9)  # column differences do not split findings
        assert dedupe([first, echo, _diag(line=5)]) == [
            first, _diag(line=5)
        ]

    def test_first_occurrence_wins_and_order_is_stable(self):
        a, b = _diag(rule="race.read-write"), _diag(rule="race.write-write")
        assert dedupe([a, b, a]) == [a, b]

    def test_analyzing_the_same_path_twice_reports_once(self, tmp_path):
        hazard = tmp_path / "dup.mpl"
        hazard.write_text(
            "object o {\n"
            "  data n = 0\n"
            "  method bump() {\n"
            "    n = n + 1\n"
            "  }\n"
            "}\n"
        )
        once = analyze_paths([hazard])
        twice = analyze_paths([hazard, hazard])
        assert [d.rule for d in once] == ["race.lost-update"]
        assert twice == once
