"""Effect extraction: the read/write sets every analyzer runs on."""

import pytest

from repro.lang import parse
from repro.lang.effects import (
    STRUCTURE_ITEM,
    effects_of_object,
    effects_of_portable,
)

pytestmark = pytest.mark.analysis


def object_effects(source: str):
    program = parse(source)
    assert program.objects, "test source declares no object"
    return effects_of_object(program.objects[0])


class TestMPLSurface:
    def test_bare_name_read_and_assignment_write(self):
        effects = object_effects(
            """
            object o {
              data total = 0
              method bump() {
                total = total + 1
              }
            }
            """
        )
        eff = effects["bump"]
        assert set(eff.reads) == {"total"}
        assert set(eff.writes) == {"total"}
        assert not eff.dynamic

    def test_selfview_get_set_and_structural(self):
        effects = object_effects(
            """
            object o {
              data x = 0
              method m() {
                self.set("x", self.get("x"))
                self.add_data("fresh", 1)
              }
            }
            """
        )
        eff = effects["m"]
        assert set(eff.reads) == {"x"}
        assert set(eff.writes) == {"x"}
        assert set(eff.structural) == {"add_data"}

    def test_locals_and_params_shadow_nothing_but_are_not_data(self):
        effects = object_effects(
            """
            object o {
              data x = 0
              method m(y) {
                let z = y + 1
                return z
              }
            }
            """
        )
        eff = effects["m"]
        assert eff.reads == {}
        assert eff.writes == {}

    def test_self_call_sugar_and_explicit_call(self):
        effects = object_effects(
            """
            object o {
              data x = 0
              method a() {
                self.b()
              }
              method b() {
                self.call("a")
              }
            }
            """
        )
        assert set(effects["a"].self_calls) == {"b"}
        assert set(effects["b"].self_calls) == {"a"}

    def test_computed_item_name_marks_method_dynamic(self):
        effects = object_effects(
            """
            object o {
              data x = 0
              method m(which) {
                return self.get(which)
              }
            }
            """
        )
        assert effects["m"].dynamic

    def test_contract_clauses_count_as_reads(self):
        effects = object_effects(
            """
            object o {
              data balance = 0
              method spend(n) requires balance > 0 {
                return n
              }
            }
            """
        )
        assert "balance" in effects["spend"].reads


class TestPortableDialect:
    def test_read_modify_write(self):
        eff = effects_of_portable(
            "self.set('count', self.get('count') + 1)\n"
            "return self.get('count')"
        )
        assert set(eff.reads) == {"count"}
        assert set(eff.writes) == {"count"}

    def test_bare_return_body_parses(self):
        eff = effects_of_portable("return self.get('x')")
        assert set(eff.reads) == {"x"}

    def test_structural_and_call(self):
        eff = effects_of_portable(
            "self.delete_data('old')\nself.call('rebuild')"
        )
        assert set(eff.structural) == {"delete_data"}
        assert set(eff.self_calls) == {"rebuild"}

    def test_unparsable_body_is_opaque_not_an_error(self):
        eff = effects_of_portable("def broken(:")
        assert eff.dynamic

    def test_structure_item_is_reserved(self):
        # the pseudo-item can never collide with a declared data name
        assert STRUCTURE_ITEM.startswith("##")
