"""The shared diagnostic core: formatting, rendering, exit policy."""

import json

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    fails,
    render_json,
    render_text,
    worst_severity,
)

pytestmark = pytest.mark.analysis


def diag(rule="mpl.test", severity=Severity.ERROR, line=3, **kw):
    return Diagnostic(
        rule=rule, severity=severity, message="boom", source="a.mpl",
        line=line, column=7, **kw,
    )


class TestDiagnostic:
    def test_format_carries_span_rule_and_hint(self):
        text = diag(hint="try harder").format()
        assert text == (
            "a.mpl:3:7: error[mpl.test] boom (hint: try harder)"
        )

    def test_location_without_span(self):
        finding = Diagnostic(
            rule="adm.native-code", severity=Severity.ERROR,
            message="m", source="object:g",
        )
        assert finding.location == "object:g"

    def test_to_mapping_omits_empty_optionals(self):
        payload = diag().to_mapping()
        assert "hint" not in payload and "extra" not in payload
        assert payload["severity"] == "error"

    def test_frozen_and_hashable_enough_for_sets(self):
        assert diag() == diag()


class TestRendering:
    def test_text_report_is_sorted_and_summarised(self):
        findings = [
            diag(line=9, severity=Severity.WARNING),
            diag(line=2),
        ]
        lines = render_text(findings)
        assert lines[0].startswith("a.mpl:2")
        assert lines[-1] == "1 error(s), 1 warning(s)"

    def test_empty_report_renders_empty(self):
        assert render_text([]) == []

    def test_json_report_round_trips(self):
        document = json.loads(render_json([diag(), diag(line=5)]))
        assert document["summary"] == {
            "errors": 2, "warnings": 0, "total": 2,
        }
        assert [d["line"] for d in document["diagnostics"]] == [3, 5]


class TestExitPolicy:
    def test_errors_always_fail(self):
        assert fails([diag()])

    def test_warnings_fail_only_under_strict(self):
        warnings = [diag(severity=Severity.WARNING)]
        assert not fails(warnings)
        assert fails(warnings, strict=True)

    def test_info_never_fails(self):
        notes = [diag(severity=Severity.INFO)]
        assert not fails(notes) and not fails(notes, strict=True)

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity(
            [diag(severity=Severity.WARNING), diag()]
        ) is Severity.ERROR
