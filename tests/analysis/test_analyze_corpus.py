"""The seeded interprocedural corpus: every ``race.*``/``cycle.*``/
``migration.*`` rule fires exactly where marked.

Mirrors the MPL lint corpus convention (``test_corpus.py``): each hazard
file under ``corpus/analyze/`` seeds one rule (or a marked pair) with a
``//! rule-id`` comment on the offending line, and the analyzer must
report exactly those (line, rule) pairs — nowhere else. Every hazard
file has a ``clean_*`` twin exercising the same constructs in their safe
form, on which the analyzer must stay silent (zero false positives).
"""

import re
from pathlib import Path

import pytest

from repro.analysis.deadlock import CYCLE_RULES
from repro.analysis.interproc import analyze_paths
from repro.analysis.migration_safety import MIGRATION_RULES
from repro.analysis.races import RACE_RULES

pytestmark = pytest.mark.analysis

CORPUS = Path(__file__).parent / "corpus" / "analyze"
_MARKER = re.compile(r"//!\s*(.+?)\s*$")


def expectations(text: str) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


def corpus_files(clean: bool) -> list[Path]:
    return sorted(
        path
        for pattern in ("*.mpl", "*.py")
        for path in CORPUS.glob(pattern)
        if path.name.startswith("clean_") == clean
    )


@pytest.mark.parametrize(
    "path", corpus_files(clean=False), ids=lambda p: p.stem
)
def test_rule_fires_exactly_where_marked(path: Path):
    expected = expectations(path.read_text())
    assert expected, f"{path.name} carries no //! markers"
    actual = {(d.line, d.rule) for d in analyze_paths([path])}
    assert actual == expected


@pytest.mark.parametrize(
    "path", corpus_files(clean=True), ids=lambda p: p.stem
)
def test_clean_twin_stays_silent(path: Path):
    assert analyze_paths([path]) == []


def test_every_analyzer_rule_is_seeded_in_the_corpus():
    seeded: set[str] = set()
    for path in corpus_files(clean=False):
        seeded |= {rule for _line, rule in expectations(path.read_text())}
    assert seeded == set(RACE_RULES) | set(CYCLE_RULES) | set(MIGRATION_RULES)


def test_every_hazard_has_a_clean_twin():
    hazards = {p.stem for p in corpus_files(clean=False)}
    twins = {p.stem.removeprefix("clean_") for p in corpus_files(clean=True)}
    assert hazards == twins
