"""The happens-before sanitizer: clocks, witnesses, and the oracle."""

import pytest

from repro.analysis import sanitizer as hb
from repro.analysis.sanitizer import ObservedCycle, Sanitizer
from repro.concurrency import ActiveObject
from repro.core import MROMObject

pytestmark = pytest.mark.analysis

RMW_BODY = (
    "self.set('n', self.get('n') + 1)\n"
    "return self.get('n')"
)


def make_counter(name: str = "acct") -> MROMObject:
    obj = MROMObject(display_name=name)
    obj.define_fixed_data("n", 0)
    obj.define_fixed_method("bump", RMW_BODY)
    obj.seal()
    return obj


@pytest.fixture(autouse=True)
def no_global_sanitizer():
    yield
    hb.disable()


class TestClocks:
    def test_concurrent_writes_are_a_race(self):
        san = Sanitizer()
        a = san.fork("a", parent=None)
        b = san.fork("b", parent=None)
        san.push(a)
        san.access("g", "x", "write", "left")
        san.pop()
        san.push(b)
        san.access("g", "x", "write", "right")
        san.pop()
        assert len(san.races) == 1
        race = san.races[0]
        assert race.methods == ("left", "right")
        assert race.writers == ("left", "right")

    def test_reads_never_race_reads(self):
        san = Sanitizer()
        for label in ("a", "b"):
            task = san.fork(label, parent=None)
            san.push(task)
            san.access("g", "x", "read", label)
            san.pop()
        assert san.races == []

    def test_send_serve_reply_edges_order_accesses(self):
        san = Sanitizer()
        issuer = san.fork("issuer", parent=None)
        san.push(issuer)
        san.note_sent("m1")
        san.pop()
        serve1 = san.begin_serve("m1", "serve1")
        san.access("g", "x", "write", "first")
        san.end_serve("m1", serve1)
        # the issuer joins the reply before issuing the next request
        san.push(issuer)
        san.absorb_reply("m1")
        san.note_sent("m2")
        san.pop()
        serve2 = san.begin_serve("m2", "serve2")
        san.access("g", "x", "write", "second")
        san.end_serve("m2", serve2)
        assert san.races == []

    def test_unjoined_serves_race(self):
        san = Sanitizer()
        issuer = san.fork("issuer", parent=None)
        san.push(issuer)
        san.note_sent("m1")
        san.note_sent("m2")
        san.pop()
        for msg, method in (("m1", "first"), ("m2", "second")):
            task = san.begin_serve(msg)
            san.access("g", "x", "write", method)
            san.end_serve(msg, task)
        assert len(san.races) == 1

    def test_same_race_is_witnessed_once(self):
        san = Sanitizer()
        for label in ("a", "b", "c"):
            task = san.fork(label, parent=None)
            san.push(task)
            san.access("g", "x", "write", "bump")
            san.pop()
        assert len(san.races) == 1


class TestWaitCycles:
    def test_mutual_waits_close_a_ring(self):
        san = Sanitizer()
        san.wait_begin("alpha", "beta")
        san.wait_begin("beta", "alpha")
        assert san.cycles == [ObservedCycle(sites=("alpha", "beta"))]

    def test_sequential_waits_do_not(self):
        san = Sanitizer()
        san.wait_begin("alpha", "beta")
        san.wait_end("alpha", "beta")
        san.wait_begin("beta", "alpha")
        san.wait_end("beta", "alpha")
        assert san.cycles == []

    def test_ring_of_three(self):
        san = Sanitizer()
        san.wait_begin("a", "b")
        san.wait_begin("b", "c")
        san.wait_begin("c", "a")
        assert san.cycles == [ObservedCycle(sites=("a", "b", "c"))]


class TestDifferentialOracle:
    def test_observed_race_matches_static_finding(self):
        obj = make_counter()
        san = Sanitizer()
        for label in ("a", "b"):
            task = san.fork(label, parent=None)
            san.push(task)
            san.invoke(obj, "bump")
            san.pop()
        assert len(san.races) == 1
        verdict = san.crosscheck()
        assert verdict["ok"]
        assert verdict["observed_races"] == 1
        assert verdict["unmatched_races"] == []

    def test_unmodeled_race_fails_the_crosscheck(self):
        san = Sanitizer()
        for label in ("a", "b"):
            task = san.fork(label, parent=None)
            san.push(task)
            san.access("ghost", "x", "write", label)
            san.pop()
        verdict = san.crosscheck()
        assert not verdict["ok"]
        assert len(verdict["unmatched_races"]) == 1

    def test_unmatched_cycle_fails_the_crosscheck(self):
        san = Sanitizer()
        san.wait_begin("alpha", "beta")
        san.wait_begin("beta", "alpha")
        verdict = san.crosscheck()
        assert not verdict["ok"]
        assert len(verdict["unmatched_cycles"]) == 1

    def test_protocol_reads_match_via_the_writer(self):
        obj = make_counter()
        san = Sanitizer()
        writer = san.fork("writer", parent=None)
        san.push(writer)
        san.invoke(obj, "bump")
        san.pop()
        reader = san.fork("reader", parent=None)
        san.push(reader)
        san.data_read(obj, "n")
        san.pop()
        assert any(r.methods == ("bump", "get_data") for r in san.races)
        assert san.crosscheck()["ok"]


class TestActiveObjectIntegration:
    def test_mailbox_serialization_is_a_happens_before_edge(self):
        hb.enable()
        try:
            obj = make_counter("serialized")
            with ActiveObject(obj) as active:
                for _ in range(5):
                    active.invoke("bump")
        finally:
            san = hb.disable()
        assert san.races == []
        assert san.access_count > 0

    def test_enable_installs_and_disable_returns(self):
        san = hb.enable()
        assert hb.ACTIVE is san
        assert hb.disable() is san
        assert hb.ACTIVE is None
