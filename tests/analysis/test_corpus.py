"""The seeded defect corpus: every rule fires exactly where marked.

Each ``corpus/*.mpl`` file seeds one rule; a ``//! rule-id`` comment on
the offending line states the expectation. The parametrized test asserts
the linter reports exactly those (line, rule) pairs — each rule fires
where expected *and nowhere else* (zero false positives on the corpus).
"""

import re
from pathlib import Path

import pytest

from repro.analysis.mpl_lint import RULES, lint_source

pytestmark = pytest.mark.analysis

CORPUS = Path(__file__).parent / "corpus"
_MARKER = re.compile(r"//!\s*(.+?)\s*$")


def expectations(text: str) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


@pytest.mark.parametrize(
    "path", sorted(CORPUS.glob("*.mpl")), ids=lambda p: p.stem
)
def test_rule_fires_exactly_where_marked(path: Path):
    text = path.read_text()
    expected = expectations(text)
    assert expected, f"{path.name} carries no //! markers"
    actual = {
        (d.line, d.rule) for d in lint_source(text, path=str(path))
    }
    assert actual == expected


def test_every_mpl_rule_is_seeded_in_the_corpus():
    seeded: set[str] = set()
    for path in CORPUS.glob("*.mpl"):
        seeded |= {rule for _line, rule in expectations(path.read_text())}
    assert seeded == set(RULES)


def test_corpus_spans_at_least_ten_rule_classes():
    seeded: set[str] = set()
    for path in CORPUS.glob("*.mpl"):
        seeded |= {rule for _line, rule in expectations(path.read_text())}
    assert len(seeded) >= 10
