"""The sandbox verifier as an analysis front end, and its closed gaps."""

import pytest

from repro.analysis import Severity
from repro.core.errors import SandboxViolation
from repro.mobility.sandbox import (
    SANDBOX_RULES,
    audit_function_body,
    build_function,
    collect_violations,
    validate_source,
)

pytestmark = pytest.mark.analysis


class TestCollectMode:
    def test_clean_source_collects_nothing(self):
        assert collect_violations("x = 1\ny = x + 1\n") == []

    def test_all_violations_reported_in_one_pass(self):
        source = "import os\nx = eval('1')\n"
        findings = collect_violations(source)
        assert {d.rule for d in findings} == {
            "sandbox.node-type",
            "sandbox.forbidden-name",
        }
        assert all(d.severity is Severity.ERROR for d in findings)
        assert [d.line for d in findings] == [1, 2]

    def test_syntax_error_is_a_diagnostic_not_an_exception(self):
        [finding] = collect_violations("def broken(:\n")
        assert finding.rule == "sandbox.syntax"

    def test_collected_rules_are_all_registered(self):
        source = (
            "import os\n"
            "eval('x')\n"
            "__boo__ = 1\n"
            "a._hidden\n"
        )
        for finding in collect_violations(source):
            assert finding.rule in SANDBOX_RULES


class TestAuditFunctionBody:
    def test_clean_body_audits_clean(self):
        body = "n = self.get('count')\nself.set('count', n + 1)\nreturn n + 1"
        assert audit_function_body(body, ("self", "args", "ctx")) == []

    def test_lines_refer_to_the_body_not_the_wrapper(self):
        body = "x = 1\nimport os\nreturn x"
        [finding] = audit_function_body(body, ("self", "args", "ctx"))
        assert finding.rule == "sandbox.node-type"
        assert finding.line == 2

    def test_audit_matches_build_function_verdict(self):
        # the audit predicts exactly what the destination rejects
        params = ("self", "args", "ctx")
        for body in (
            "return args[0] + 1",
            "import os\nreturn 1",
            "return getattr(self, 'x')",
            "return ctx['__class__']",
        ):
            audited = audit_function_body(body, params)
            try:
                build_function(body, params)
                built = True
            except SandboxViolation:
                built = False
            assert built == (audited == [])


class TestClosedGaps:
    def test_dunder_subscript_rejected(self):
        with pytest.raises(SandboxViolation) as excinfo:
            validate_source("x = ctx['__class__']")
        assert excinfo.value.diagnostic.rule == "sandbox.dunder-subscript"

    def test_dunder_except_alias_rejected(self):
        source = (
            "try:\n"
            "    x = 1\n"
            "except ValueError as __alias__:\n"
            "    pass\n"
        )
        with pytest.raises(SandboxViolation) as excinfo:
            validate_source(source)
        assert excinfo.value.diagnostic.rule == "sandbox.dunder-name"

    def test_dunder_keyword_argument_rejected(self):
        [finding] = collect_violations("f = sorted([1], __key__=1)")
        assert finding.rule == "sandbox.dunder-parameter"

    def test_forbidden_nonlocal_rejected(self):
        source = (
            "def outer():\n"
            "    x = 1\n"
            "    def inner():\n"
            "        nonlocal x\n"
            "        x = 2\n"
            "    inner()\n"
            "    return x\n"
        )
        assert collect_violations(source) == []
        hostile = source.replace("nonlocal x", "nonlocal __x__").replace(
            "x = 1", "__x__ = 1"
        )
        findings = collect_violations(hostile)
        assert "sandbox.dunder-name" in {d.rule for d in findings}

    def test_violation_exception_carries_diagnostic(self):
        with pytest.raises(SandboxViolation) as excinfo:
            validate_source("import os", source_name="probe")
        diagnostic = excinfo.value.diagnostic
        assert diagnostic is not None
        assert diagnostic.rule == "sandbox.node-type"
        assert diagnostic.source == "probe"
        assert diagnostic.line == 1
        # the historical message contract is preserved
        assert "forbidden construct" in str(excinfo.value)
