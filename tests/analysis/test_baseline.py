"""Baseline suppression: record the debt once, gate only on new findings."""

import json

import pytest

from repro.analysis.baseline import (
    baseline_key,
    load_baseline,
    suppress,
    write_baseline,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.cli import main

pytestmark = pytest.mark.analysis


def _diag(rule="race.lost-update", source="f.mpl", line=4):
    return Diagnostic(
        rule=rule, severity=Severity.WARNING, message="m",
        source=source, line=line, column=1,
    )


class TestModule:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "base.json"
        count = write_baseline(path, [_diag(), _diag(line=9)])
        assert count == 2
        assert load_baseline(path) == {
            baseline_key(_diag()), baseline_key(_diag(line=9))
        }

    def test_missing_file_is_none(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") is None

    def test_wrong_format_is_loud(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_suppress_splits_new_from_known(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [_diag()])
        new, suppressed = suppress(
            [_diag(), _diag(line=9)], load_baseline(path)
        )
        assert [d.line for d in new] == [9]
        assert [d.line for d in suppressed] == [4]


HAZARD = (
    "object o {\n"
    "  data n = 0\n"
    "  method bump() {\n"
    "    n = n + 1\n"
    "  }\n"
    "}\n"
)


class TestCLIFlow:
    def test_first_run_records_and_passes(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text(HAZARD)
        baseline = tmp_path / "base.json"
        code = main([
            "analyze", str(script), "--strict", "--baseline", str(baseline)
        ])
        assert code == 0
        assert "recorded 1 finding(s)" in capsys.readouterr().out
        assert baseline.exists()

    def test_second_run_suppresses_known_findings(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text(HAZARD)
        baseline = tmp_path / "base.json"
        assert main([
            "analyze", str(script), "--strict", "--baseline", str(baseline)
        ]) == 0
        capsys.readouterr()
        code = main([
            "analyze", str(script), "--strict", "--baseline", str(baseline)
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "suppressed 1 known finding(s)" in out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text(HAZARD)
        baseline = tmp_path / "base.json"
        assert main([
            "analyze", str(script), "--strict", "--baseline", str(baseline)
        ]) == 0
        # a second hazard the baseline has never seen
        script.write_text(HAZARD.replace("object o", "object p") + HAZARD)
        code = main([
            "analyze", str(script), "--strict", "--baseline", str(baseline)
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "race.lost-update" in out

    def test_lint_shares_the_baseline_flag(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text("object o {\n  data unused = 0\n}\n")
        baseline = tmp_path / "base.json"
        first = main([
            "lint", str(script), "--strict", "--baseline", str(baseline)
        ])
        capsys.readouterr()
        second = main([
            "lint", str(script), "--strict", "--baseline", str(baseline)
        ])
        assert (first, second) == (0, 0)
