"""Migration admission analysis, and the PREPARE-time admission gate."""

import pytest

from repro.analysis import Severity, fails
from repro.analysis.admission import (
    ADMISSION_RULES,
    AdmissionRefusal,
    admission_policy,
    analyze_object,
    analyze_package,
)
from repro.core import MROMObject, Principal
from repro.core.acl import allow_all, deny_all
from repro.core.errors import RemoteInvocationError
from repro.mobility import MobilityManager
from repro.mobility.package import pack
from repro.net import LAN, Network, Site
from repro.net.marshal import Reference
from repro.sim import Simulator


pytestmark = pytest.mark.analysis


def make_clean(site_or_none=None, name="probe"):
    if site_or_none is None:
        obj = MROMObject(display_name=name, domain="test")
    else:
        obj = site_or_none.create_object(display_name=name)
    obj.define_fixed_data("count", 0, acl=allow_all())
    obj.define_fixed_method(
        "bump",
        "n = self.get('count')\nself.set('count', n + 1)\nreturn n + 1",
        acl=allow_all(),
    )
    obj.seal()
    return obj


def make_hostile(site_or_none=None, name="mole"):
    """Packs fine (portable *source*), but the source imports os — only
    an eager sandbox audit catches it before first invocation."""
    if site_or_none is None:
        obj = MROMObject(display_name=name, domain="test")
    else:
        obj = site_or_none.create_object(display_name=name)
    obj.define_fixed_data("loot", [], acl=allow_all())
    obj.define_fixed_method(
        "leak", "import os\nreturn os.getcwd()", acl=allow_all()
    )
    obj.seal()
    return obj


def rules_of(findings):
    return {d.rule for d in findings}


class TestAnalyzeObject:
    def test_clean_object_is_clean(self):
        assert analyze_object(make_clean()) == []

    def test_native_code_is_an_error(self):
        obj = MROMObject(display_name="pinned")
        obj.define_fixed_method("local", lambda self, args, ctx: 42)
        obj.seal()
        findings = analyze_object(obj)
        assert rules_of(findings) == {"adm.native-code"}
        assert fails(findings)

    def test_hostile_portable_source_is_caught_eagerly(self):
        findings = analyze_object(make_hostile())
        assert "adm.malformed-code" in rules_of(findings)
        assert "sandbox.node-type" in rules_of(findings)

    def test_unmarshalable_value_is_an_error(self):
        obj = MROMObject(display_name="anchored")
        obj.define_fixed_data("pin", object(), acl=allow_all())
        obj.seal()
        assert "adm.unmarshalable-value" in rules_of(analyze_object(obj))

    def test_reference_value_warns_about_self_containment(self):
        obj = MROMObject(display_name="tethered")
        obj.define_fixed_data(
            "friend", {"ref": Reference("mrom:obj:x", "elsewhere")},
            acl=allow_all(),
        )
        obj.seal()
        findings = analyze_object(obj)
        refs = [d for d in findings if d.rule == "adm.external-reference"]
        assert refs and refs[0].severity is Severity.WARNING
        assert not fails(findings)
        assert fails(findings, strict=True)

    def test_unreachable_item_warns(self):
        obj = MROMObject(display_name="walled")
        obj.define_fixed_data("secret", 1, acl=deny_all())
        obj.seal()
        assert "adm.unreachable-item" in rules_of(analyze_object(obj))

    def test_open_meta_acl_warns(self):
        obj = MROMObject(display_name="open", meta_acl=allow_all())
        obj.seal()
        assert "adm.open-meta" in rules_of(analyze_object(obj))

    def test_default_owner_only_meta_is_quiet(self):
        obj = MROMObject(display_name="closed")
        obj.seal()
        assert analyze_object(obj) == []


class TestAnalyzePackage:
    def test_clean_package_is_clean(self):
        assert analyze_package(pack(make_clean())) == []

    def test_rejects_wrong_format(self):
        package = pack(make_clean())
        package["format"] = "mrom-object/99"
        assert "adm.bad-package" in rules_of(analyze_package(package))

    def test_rejects_missing_guid(self):
        package = pack(make_clean())
        package["guid"] = ""
        assert "adm.bad-package" in rules_of(analyze_package(package))

    def test_not_a_mapping(self):
        assert rules_of(analyze_package([1, 2])) == {"adm.bad-package"}

    def test_native_stub_in_package(self):
        package = pack(make_clean())
        package["ext_methods"] = [
            {
                "name": "ghost",
                "components": {
                    "body": {"flavour": "native", "role": "body", "label": "f"}
                },
                "acl": allow_all().describe(),
                "metadata": {},
            }
        ]
        assert "adm.native-code" in rules_of(analyze_package(package))

    def test_hostile_source_in_package(self):
        package = pack(make_hostile())
        findings = analyze_package(package)
        assert "adm.malformed-code" in rules_of(findings)

    def test_tower_without_extensible_meta_is_a_breach(self):
        package = pack(make_clean())
        package["extensible_meta"] = False
        package["tower"] = [
            {
                "name": "invoke@level1",
                "components": {
                    "body": {
                        "flavour": "portable",
                        "role": "meta",
                        "label": "lvl1",
                        "source": "return ctx.proceed()",
                    }
                },
                "acl": allow_all().describe(),
                "metadata": {},
            }
        ]
        assert "adm.tower-breach" in rules_of(analyze_package(package))

    def test_method_without_body_component(self):
        package = pack(make_clean())
        package["ext_methods"] = [
            {"name": "empty", "components": {}, "acl": {}, "metadata": {}}
        ]
        assert "adm.bad-package" in rules_of(analyze_package(package))


class TestAdmissionPolicy:
    def test_refusal_carries_structured_diagnostics(self):
        policy = admission_policy()
        with pytest.raises(AdmissionRefusal) as excinfo:
            policy(pack(make_hostile()), "site-a")
        refusal = excinfo.value
        assert refusal.diagnostics
        assert all(d.rule in set(ADMISSION_RULES) | {"sandbox.node-type"}
                   for d in refusal.diagnostics)
        report = refusal.report()
        assert report[0]["severity"] == "error"
        assert "adm.malformed-code" in str(refusal)

    def test_clean_package_passes(self):
        admission_policy()(pack(make_clean()), "site-a")  # no raise

    def test_strict_mode_refuses_warnings(self):
        obj = MROMObject(display_name="walled")
        obj.define_fixed_data("secret", 1, acl=deny_all())
        obj.seal()
        package = pack(obj)
        admission_policy()(package, "site-a")  # warnings pass by default
        with pytest.raises(AdmissionRefusal):
            admission_policy(strict=True)(package, "site-a")


@pytest.fixture
def wired_world():
    network = Network(Simulator())
    home = Site(network, "home", "dom.home")
    away = Site(network, "away", "dom.away")
    network.topology.connect("home", "away", *LAN)
    sender = MobilityManager(home)
    receiver = MobilityManager(away, verify_arrivals=True)
    return home, away, sender, receiver


class TestAdmissionGate:
    """The acceptance scenario: the gate vetoes at PREPARE; clean
    objects migrate unchanged."""

    def test_clean_object_migrates_unchanged(self, wired_world):
        home, away, sender, receiver = wired_world
        obj = make_clean(home)
        home.register_object(obj)
        ref = sender.migrate(obj, "away")
        assert away.has_object(obj.guid)
        assert not home.has_object(obj.guid)
        assert receiver.rejections == 0
        settled = away.local_object(obj.guid)
        assert settled.get_data("count", caller=Principal("mrom:obj:x")) == 0
        assert ref.invoke("bump", caller=home.principal) == 1

    def test_hostile_object_vetoed_at_prepare(self, wired_world):
        home, away, sender, receiver = wired_world
        mole = make_hostile(home)
        home.register_object(mole)
        with pytest.raises(RemoteInvocationError) as excinfo:
            sender.migrate(mole, "away")
        # the refusal is structured: type and rule ids survive the wire
        assert excinfo.value.remote_type == "AdmissionRefusal"
        assert "adm.malformed-code" in str(excinfo.value)
        # vetoed before anything settled: the original stays put, the
        # destination holds nothing, and the rejection was counted
        assert home.has_object(mole.guid)
        assert not away.has_object(mole.guid)
        assert receiver.rejections == 1
        assert receiver.arrivals == 0

    def test_gate_composes_with_caller_policy(self, wired_world):
        home, away, sender, _receiver = wired_world
        seen = []

        def caller_policy(package, src):
            seen.append(str(package.get("guid")))

        gated = MobilityManager(
            Site(home.network, "gated", "dom.gated"),
            policy=caller_policy,
            verify_arrivals=True,
        )
        home.network.topology.connect("home", "gated", *LAN)
        obj = make_clean(home, name="welcome")
        home.register_object(obj)
        sender.migrate(obj, "gated")
        assert seen == [obj.guid]
        mole = make_hostile(home)
        home.register_object(mole)
        with pytest.raises(RemoteInvocationError):
            sender.migrate(mole, "gated")
        # the gate runs first: the caller's policy never saw the mole
        assert seen == [obj.guid]
        assert gated.rejections == 1

    def test_sender_side_preflight_predicts_the_veto(self, wired_world):
        home, _away, sender, _receiver = wired_world
        mole = make_hostile(home)
        home.register_object(mole)
        findings = sender.preflight(mole)
        assert fails(findings)
        clean = make_clean(home, name="fine")
        home.register_object(clean)
        assert sender.preflight(clean) == []
