"""Model-based (stateful) testing of the MROM object.

Hypothesis drives random sequences of meta-operations and invocations
against an MROM object while a plain-Python mirror tracks expected
state. Invariants checked continuously:

* the fixed section never changes (names, count, behaviour);
* the extensible section matches the mirror exactly;
* data values read back as the mirror predicts;
* every lookup failure the mirror predicts is a typed MROM error;
* pack -> unpack at any point yields an object that agrees with the
  mirror (mobility preserves observable state).
"""

import string

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import (
    DuplicateItemError,
    ItemNotFoundError,
    MROMObject,
    Permission,
    Principal,
    allow_all,
)
from repro.core.errors import FixedSectionError
from repro.mobility import pack, unpack

OWNER = Principal("mrom://model/1.1", "model", "owner")
FIXED_DATA = {"base": 10}
FIXED_METHODS = {"get_base": "return self.get('base')"}

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.text(max_size=10),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)


def build_subject() -> MROMObject:
    obj = MROMObject(
        display_name="subject", owner=OWNER, extensible_meta=True,
        meta_acl=allow_all(),
    )
    for name, value in FIXED_DATA.items():
        obj.define_fixed_data(name, value)
    for name, source in FIXED_METHODS.items():
        obj.define_fixed_method(name, source)
    obj.seal()
    return obj


class MromMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.obj = build_subject()
        self.data: dict[str, object] = {}  # extensible data mirror
        self.methods: dict[str, int] = {}  # extensible method -> constant

    # -- rules -------------------------------------------------------------

    @rule(name=names, value=values)
    def add_data(self, name, value):
        occupied = name in self.data or name in FIXED_DATA
        try:
            self.obj.invoke("addDataItem", [name, value], caller=OWNER)
        except DuplicateItemError:
            assert occupied
        else:
            assert not occupied
            self.data[name] = value

    @rule(name=names)
    def delete_data(self, name):
        try:
            self.obj.invoke("deleteDataItem", [name], caller=OWNER)
        except ItemNotFoundError:
            assert name not in self.data and name not in FIXED_DATA
        except FixedSectionError:
            assert name in FIXED_DATA
        else:
            assert name in self.data
            del self.data[name]

    @rule(name=names, value=values)
    def set_data_value(self, name, value):
        if name in self.data:
            self.obj.set_data(name, value, caller=OWNER)
            self.data[name] = value

    @rule(name=names, constant=st.integers(min_value=0, max_value=999))
    def add_method(self, name, constant):
        occupied = (
            name in self.methods
            or name in FIXED_METHODS
            or name in self.obj.containers.fixed_methods.names()
        )
        if name == "invoke":
            return  # tower levels are exercised elsewhere
        try:
            self.obj.invoke(
                "addMethod",
                [name, f"return {constant}", {"acl": allow_all().describe()}],
                caller=OWNER,
            )
        except DuplicateItemError:
            assert occupied
        else:
            assert not occupied
            self.methods[name] = constant

    @rule(name=names)
    def delete_method(self, name):
        if name == "invoke":
            return
        try:
            self.obj.invoke("deleteMethod", [name], caller=OWNER)
        except ItemNotFoundError:
            assert name not in self.methods
            assert not self.obj.containers.has_method(name)
        except FixedSectionError:
            assert name in FIXED_METHODS or self.obj.containers.fixed_methods.find(name)
        else:
            assert name in self.methods
            del self.methods[name]

    @rule(name=names)
    def invoke_method(self, name):
        if name in self.methods:
            assert self.obj.invoke(name, caller=OWNER) == self.methods[name]

    @precondition(lambda self: True)
    @rule()
    def round_trip_through_pack(self):
        copy = unpack(pack(self.obj))
        for name, value in self.data.items():
            assert copy.get_data(name, caller=OWNER) == value
        for name, constant in self.methods.items():
            assert copy.invoke(name, caller=OWNER) == constant
        assert copy.invoke("get_base", caller=OWNER) == 10

    # -- invariants -----------------------------------------------------------

    @invariant()
    def fixed_section_is_immortal(self):
        assert set(self.obj.containers.fixed_data.names()) == set(FIXED_DATA)
        for name, value in FIXED_DATA.items():
            assert self.obj.get_data(name, caller=OWNER) == value
        assert self.obj.invoke("get_base", caller=OWNER) == FIXED_DATA["base"]

    @invariant()
    def extensible_data_matches_mirror(self):
        actual = set(self.obj.containers.ext_data.names())
        assert actual == set(self.data)
        for name, value in self.data.items():
            assert self.obj.get_data(name, caller=OWNER) == value

    @invariant()
    def extensible_methods_match_mirror(self):
        actual = {
            name
            for name in self.obj.containers.ext_methods.names()
            if not self.obj.containers.ext_methods.get(name).metadata.get("meta")
        }
        assert actual == set(self.methods)

    @invariant()
    def counts_are_consistent(self):
        counts = self.obj.containers.counts()
        assert counts["extensible_data"] == len(self.data)
        assert counts["fixed_data"] == len(FIXED_DATA)


MromMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestMromModel = MromMachine.TestCase


# ---------------------------------------------------------------------------
# cache-invalidation rules (the fast-path layer, repro.core.fastpath)
# ---------------------------------------------------------------------------


class FastpathInvalidationMachine(RuleBasedStateMachine):
    """Model the invalidation contract of the invocation cache.

    Rules mutate the object through meta-methods and in-place ACL edits;
    the model tracks whether the next invocation is *allowed* to be a
    cache hit. Assertions read the ``fastpath.*`` counters through the
    active :class:`~repro.telemetry.metrics.MetricsRegistry`:

    * after any structural mutation, the next invocation's Lookup must
      miss (the generation moved);
    * after an in-place ACL edit, the next Match for that method must
      miss (its version pin moved);
    * a migrated object's caches must arrive cold.
    """

    def __init__(self):
        super().__init__()
        from repro.core import fastpath as fastpath_mod
        from repro.telemetry import Telemetry, enable

        # this machine models the memo tables; the compile tier has its
        # own machine (CompiledInvalidationMachine) with its own rules
        self._compile_default = fastpath_mod.set_compile_default(False)
        self.obj = build_subject()
        assert self.obj.fastpath is not None, "caching should default on"
        self.obj.fastpath.set_compiled(False)
        self.serial = 0
        self.tel = enable(Telemetry())

    def teardown(self):
        from repro.core import fastpath as fastpath_mod
        from repro.telemetry import disable

        fastpath_mod.set_compile_default(self._compile_default)
        disable()

    # -- helpers -----------------------------------------------------------

    def counters(self) -> tuple[int, int, int, int]:
        metrics = self.tel.metrics
        return (
            metrics.counter_value("fastpath.lookup.hits"),
            metrics.counter_value("fastpath.lookup.misses"),
            metrics.counter_value("fastpath.match.hits"),
            metrics.counter_value("fastpath.match.misses"),
        )

    def invoke_get_base(self) -> tuple[bool, bool]:
        """Invoke the fixed method; returns (lookup_hit, match_hit)."""
        before = self.counters()
        assert self.obj.invoke("get_base", caller=OWNER) == 10
        after = self.counters()
        lookup_hit = after[0] > before[0]
        match_hit = after[2] > before[2]
        return lookup_hit, match_hit

    # -- rules -------------------------------------------------------------

    @rule()
    def warm_then_hit(self):
        """Two invocations back-to-back: the second must hit both tables."""
        self.invoke_get_base()
        lookup_hit, match_hit = self.invoke_get_base()
        assert lookup_hit, "second consecutive Lookup must be a cache hit"
        assert match_hit, "second consecutive Match must be a cache hit"

    @rule()
    def mutation_forces_lookup_miss(self):
        """Any meta-method structural mutation invalidates the next call."""
        self.invoke_get_base()  # warm
        self.serial += 1
        name = f"gen{self.serial}"
        self.obj.invoke(
            "addDataItem", [name, self.serial], caller=OWNER
        )
        lookup_hit, _ = self.invoke_get_base()
        assert not lookup_hit, "post-mutation invocation must miss the cache"

    @rule()
    def method_add_and_delete_invalidate(self):
        self.invoke_get_base()
        self.serial += 1
        name = f"m{self.serial}"
        self.obj.invoke(
            "addMethod", [name, "return 1", {"acl": allow_all().describe()}],
            caller=OWNER,
        )
        lookup_hit, _ = self.invoke_get_base()
        assert not lookup_hit
        self.invoke_get_base()  # warm again
        self.obj.invoke("deleteMethod", [name], caller=OWNER)
        lookup_hit, _ = self.invoke_get_base()
        assert not lookup_hit, "deleteMethod must invalidate too"

    @rule()
    def acl_edit_forces_match_miss(self):
        """An in-place grant on the method's ACL stales its Match pin
        without touching the container generation."""
        self.invoke_get_base()  # warm
        method, _ = self.obj.containers.lookup_method("get_base")
        self.serial += 1
        method.acl.grant(f"mrom://model/guest{self.serial}", Permission.INVOKE)
        lookup_hit, match_hit = self.invoke_get_base()
        assert lookup_hit, "ACL edits must not drop the Lookup table"
        assert not match_hit, "post-ACL-edit Match must re-evaluate"

    @rule()
    def migration_arrives_cold(self):
        self.invoke_get_base()
        cache = self.obj.fastpath
        assert cache is not None and cache.entries > 0
        self.obj = unpack(pack(self.obj))
        cache = self.obj.fastpath
        assert cache is not None, "unpacked objects default to caching"
        assert cache.entries == 0, "migrated caches must arrive cold"
        lookup_hit, match_hit = self.invoke_get_base()
        assert not lookup_hit and not match_hit

    # -- invariants --------------------------------------------------------

    @invariant()
    def cache_generation_never_ahead(self):
        cache = self.obj.fastpath
        if cache is not None:
            assert cache.generation <= self.obj.containers.generation


FastpathInvalidationMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestFastpathInvalidation = FastpathInvalidationMachine.TestCase


class CompiledInvalidationMachine(RuleBasedStateMachine):
    """Model the discard contract of the compiled invocation tier.

    A (caller, method) pair is promoted to a compiled closure on its
    first Match-table hit and is served compiled from the next call on.
    Rules then invalidate it through each discard channel — structural
    mutation, in-place ACL edit, migration install — and assert the
    *ordering*: the stale closure is discarded at dispatch (its guard
    fails) before the call falls back to the interpreted path, the
    fallback call itself is never served compiled, and re-warming
    recompiles. An invariant keeps the compile accounting closed:
    every closure ever stored is either live or counted as discarded.
    """

    def __init__(self):
        super().__init__()
        from repro.telemetry import Telemetry, enable

        self.obj = build_subject()
        assert self.obj.fastpath is not None, "caching should default on"
        self.obj.fastpath.set_compiled(True)
        self.serial = 0
        self.tel = enable(Telemetry())

    def teardown(self):
        from repro.telemetry import disable

        disable()

    # -- helpers -----------------------------------------------------------

    def invoke(self) -> bool:
        """One invocation; returns whether the compiled tier served it."""
        cache = self.obj.fastpath
        before = cache.compiled_hits
        assert self.obj.invoke("get_base", caller=OWNER) == 10
        return cache.compiled_hits > before

    def warm_to_compiled(self) -> None:
        """From any state, three calls reach the compiled tier: miss,
        match-hit (which compiles), compiled hit."""
        self.invoke()
        self.invoke()
        assert self.invoke(), "third consecutive call must be served compiled"

    # -- rules -------------------------------------------------------------

    @rule()
    def repeated_calls_compile_then_hit(self):
        self.warm_to_compiled()
        assert self.invoke(), "a compiled pair stays compiled absent mutation"

    @rule()
    def mutation_discards_then_falls_back(self):
        """Structural mutation: the generation pin fails, the closure is
        discarded at dispatch, and the call takes the interpreted path."""
        self.warm_to_compiled()
        cache = self.obj.fastpath
        self.serial += 1
        self.obj.invoke(
            "addDataItem", [f"cgen{self.serial}", self.serial], caller=OWNER
        )
        discards = cache.compiled_discards
        assert not self.invoke(), "post-mutation call must not be compiled"
        assert cache.compiled_discards > discards, (
            "the stale closure must be discarded at dispatch, "
            "before the interpreted fallback"
        )
        self.warm_to_compiled()  # and the pair recompiles cleanly

    @rule()
    def acl_edit_discards_then_falls_back(self):
        """An in-place ACL edit moves the version pin: same ordering as a
        mutation, without the container generation moving at all."""
        self.warm_to_compiled()
        cache = self.obj.fastpath
        generation = self.obj.containers.generation
        method, _ = self.obj.containers.lookup_method("get_base")
        self.serial += 1
        method.acl.grant(f"mrom://model/cguest{self.serial}", Permission.INVOKE)
        assert self.obj.containers.generation == generation
        discards = cache.compiled_discards
        assert not self.invoke(), "post-ACL-edit call must not be compiled"
        assert cache.compiled_discards > discards
        self.warm_to_compiled()

    @rule()
    def migration_arrives_cold(self):
        """pack -> unpack: compiled state is never packaged; the arrived
        object compiles from scratch only after re-warming."""
        self.warm_to_compiled()
        assert self.obj.fastpath.compiled_entries > 0
        self.obj = unpack(pack(self.obj))
        cache = self.obj.fastpath
        assert cache is not None, "unpacked objects default to caching"
        cache.set_compiled(True)
        assert cache.compiled_entries == 0, (
            "migrated objects must arrive with no compiled state"
        )
        assert not self.invoke(), "first post-arrival call cannot be compiled"
        self.warm_to_compiled()

    @rule()
    def disable_discards_everything(self):
        self.warm_to_compiled()
        cache = self.obj.fastpath
        live = cache.compiled_entries
        discards = cache.compiled_discards
        cache.set_compiled(False)
        assert cache.compiled_entries == 0
        assert cache.compiled_discards == discards + live
        assert not self.invoke(), "compile tier off: interpreted path only"
        cache.set_compiled(True)

    # -- invariants --------------------------------------------------------

    @invariant()
    def compile_accounting_balances(self):
        cache = self.obj.fastpath
        if cache is not None:
            assert cache.compiled_entries == cache.compiles - cache.compiled_discards
            assert cache.compiled_entries <= cache.COMPILED_CAP


CompiledInvalidationMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestCompiledInvalidation = CompiledInvalidationMachine.TestCase
TestCompiledInvalidation.pytestmark = [pytest.mark.compile]


# ---------------------------------------------------------------------------
# crash-recovery rules (the durability layer, repro.persistence)
# ---------------------------------------------------------------------------


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Model the durability contract of the write-ahead log.

    Rules interleave application work (remote increments, nomad
    migrations), maintenance (checkpoint, with and without compaction),
    and whole-site crash-restarts, while a plain-Python mirror tracks
    what the application believes: each counter's value, the nomad's
    home and hop count. Invariants after every step:

    * every object has exactly one owner (exactly-once transfer holds
      no matter which sites crashed mid-history);
    * each counter reads back what the mirror predicts — no lost
      updates, no double-applies;
    * the nomad lives where the mirror says, and ``install`` ran once
      per migration — recovery never re-runs it.
    """

    SITES = ("a", "b", "c")

    def __init__(self):
        super().__init__()
        from .conftest import build_counter
        from .persistence.conftest import DurableWorld

        self.world = DurableWorld(seed=7, names=self.SITES)
        self.counts: dict[str, int] = {}
        self.counters: dict[str, str] = {}
        for name in self.SITES:
            counter = build_counter()
            self.world.sites[name].register_object(counter)
            self.counters[name] = counter.guid
            self.counts[name] = 0
        nomad = self.world.sites["a"].create_object(display_name="nomad")
        nomad.define_fixed_data("hops", 0)
        nomad.define_fixed_method(
            "install", "self.set('hops', self.get('hops') + 1)"
        )
        nomad.seal()
        self.world.sites["a"].register_object(nomad)
        self.nomad_guid = nomad.guid
        self.nomad_home = "a"
        self.hops = 0

    # -- rules -------------------------------------------------------------

    @rule(
        target_index=st.integers(min_value=0, max_value=2),
        step=st.integers(min_value=1, max_value=5),
    )
    def increment(self, target_index, step):
        from .persistence.conftest import FAST

        target = self.SITES[target_index]
        caller = self.SITES[(target_index + 1) % len(self.SITES)]
        result = self.world.sites[caller].remote_invoke(
            target, self.counters[target], "increment", [step], policy=FAST
        )
        self.counts[target] += step
        assert result == self.counts[target]

    @rule(pick=st.integers(min_value=0, max_value=1))
    def migrate_nomad(self, pick):
        choices = [name for name in self.SITES if name != self.nomad_home]
        dst = choices[pick % len(choices)]
        home = self.world.sites[self.nomad_home]
        self.world.managers[self.nomad_home].migrate(
            home.local_object(self.nomad_guid), dst
        )
        self.nomad_home = dst
        self.hops += 1

    @rule(
        site_index=st.integers(min_value=0, max_value=2),
        compact=st.booleans(),
    )
    def checkpoint(self, site_index, compact):
        self.world.journals[self.SITES[site_index]].checkpoint(
            compact=compact
        )

    @rule(site_index=st.integers(min_value=0, max_value=2))
    def crash_restart(self, site_index):
        name = self.SITES[site_index]
        report = self.world.crash_restart(name)
        assert report.objects_failed == 0, f"recovery dropped objects at {name}"
        assert report.damage is None  # quiescent crash: the log is whole

    # -- invariants --------------------------------------------------------

    def _sole_owner(self, guid: str) -> str:
        owners = self.world.owners_of(guid)
        assert len(owners) == 1, f"{guid} owned by {owners}"
        return owners[0]

    @invariant()
    def counters_match_mirror(self):
        for name, guid in self.counters.items():
            owner = self._sole_owner(guid)
            assert owner == name  # counters never migrate
            obj = self.world.sites[owner].local_object(guid)
            assert obj.get_data("count", caller=obj.owner) == (
                self.counts[name]
            ), f"counter at {name} lost or double-applied an update"

    @invariant()
    def nomad_is_where_the_mirror_says(self):
        owner = self._sole_owner(self.nomad_guid)
        assert owner == self.nomad_home
        obj = self.world.sites[owner].local_object(self.nomad_guid)
        assert obj.get_data("hops", caller=obj.owner) == self.hops, (
            "install ran a different number of times than migrations"
        )


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
TestCrashRecovery = CrashRecoveryMachine.TestCase


# ---------------------------------------------------------------------------
# directory-lease rules (the cluster layer, repro.naming.directory)
# ---------------------------------------------------------------------------


class DirectoryLeaseMachine(RuleBasedStateMachine):
    """Model the lease protocol of the partitioned naming directory.

    Rules interleave resolution (cached and forced), lease-following
    invocations, migrations, client-side lease invalidation and whole
    cache amnesia, and directory-shard crashes (``forget`` + republish),
    while a plain-Python mirror tracks each name's true home, placement
    generation and counter value. The protocol's promise, checked
    continuously:

    * exactly one site ever holds an *active* placement per name;
    * the ring-designated shard agrees with the true placement;
    * counters read back what the mirror predicts (stale redirects
      never double-apply or drop an increment);
    * a client holding a dead lease is refused with a *typed*
      :class:`StaleLeaseError` — never served a wrong-site success —
      and converges after re-resolving.
    """

    WORLD_SEED = 0
    SERVERS = ("s0", "s1", "s2")
    NAMES = ("apps/k0", "apps/k1", "apps/k2", "apps/k3")

    def __init__(self):
        super().__init__()
        from repro.naming import ClusterManager, DirectoryClient, HashRing

        from .conftest import make_site_world

        names = self.SERVERS + ("c0",)
        self.network, self.sites = make_site_world(
            seed=self.WORLD_SEED, names=names, domain="cluster.{name}"
        )
        self.ring = HashRing(
            list(self.SERVERS), vnodes=32, seed=self.WORLD_SEED
        )
        self.managers = {
            site_id: ClusterManager(self.sites[site_id], self.ring)
            for site_id in self.SERVERS
        }
        self.client = DirectoryClient(self.sites["c0"], self.ring)
        self.counts: dict[str, int] = {}
        self.home: dict[str, str] = {}
        self.generation: dict[str, int] = {}
        self.guids: dict[str, str] = {}
        for name in self.NAMES:
            owner = self.ring.owner(name)
            manager = self.managers[owner]
            counter = manager.site.create_object(
                display_name=f"counter:{name}"
            )
            counter.define_fixed_data("count", 0)
            counter.define_fixed_method(
                "increment",
                "step = args[0] if args else 1\n"
                "self.set('count', self.get('count') + step)\n"
                "return self.get('count')",
            )
            counter.define_fixed_method("peek", "return self.get('count')")
            counter.seal()
            manager.publish(counter, name)
            self.counts[name] = 0
            self.home[name] = owner
            self.generation[name] = 1
            self.guids[name] = counter.guid
        self.network.run()

    # -- rules -------------------------------------------------------------

    @rule(index=st.integers(min_value=0, max_value=3), fresh=st.booleans())
    def resolve(self, index, fresh):
        name = self.NAMES[index]
        lease = self.client.lease_for(name, refresh=fresh)
        if fresh:
            # a forced resolve must return the true placement
            assert lease.site == self.home[name]
            assert lease.generation == self.generation[name]
            assert lease.guid == self.guids[name]
        # a cached lease may be stale — that is the protocol's whole
        # design — but it can never be *ahead* of the true placement
        assert lease.generation <= self.generation[name]

    @rule(
        index=st.integers(min_value=0, max_value=3),
        step=st.integers(min_value=1, max_value=5),
    )
    def invoke(self, index, step):
        name = self.NAMES[index]
        result = self.client.invoke(name, "increment", [step])
        self.counts[name] += step
        assert result == self.counts[name], (
            f"{name} acked {result}, mirror says {self.counts[name]}"
        )

    @rule(
        index=st.integers(min_value=0, max_value=3),
        pick=st.integers(min_value=0, max_value=1),
    )
    def migrate(self, index, pick):
        name = self.NAMES[index]
        choices = [s for s in self.SERVERS if s != self.home[name]]
        dst = choices[pick % len(choices)]
        self.managers[self.home[name]].migrate(name, dst)
        self.network.run()
        self.home[name] = dst
        self.generation[name] += 1

    @rule(
        index=st.integers(min_value=0, max_value=3),
        pick=st.integers(min_value=0, max_value=1),
    )
    def stale_direct(self, index, pick):
        """The heart of the contract: a client holding a lease across a
        migration is refused *typed* at the old site — never handed a
        wrong-site success — and its next protocol invoke converges."""
        from repro.core.errors import StaleLeaseError

        name = self.NAMES[index]
        lease = self.client.lease_for(name, refresh=True)
        choices = [s for s in self.SERVERS if s != self.home[name]]
        dst = choices[pick % len(choices)]
        self.managers[self.home[name]].migrate(name, dst)
        self.network.run()
        self.home[name] = dst
        self.generation[name] += 1
        # the lease is now dead; presenting it raw must be refused typed
        try:
            self.sites["c0"].request(
                lease.site,
                "cluster.invoke",
                {
                    "name": name,
                    "generation": lease.generation,
                    "method": "increment",
                    "args": [1],
                    "caller": None,
                },
            )
        except StaleLeaseError as exc:
            assert exc.generation != lease.generation
        else:
            raise AssertionError(
                f"stale lease for {name} was served silently at "
                f"{lease.site} — wrong-site success"
            )
        # the refused increment must NOT have been applied...
        stale_before = self.client.stale
        assert self.client.invoke(name, "peek") == self.counts[name]
        # ...and the client converged through the typed redirect path
        assert self.client.stale > stale_before
        assert self.client.leases[name].generation == self.generation[name]

    @rule(index=st.integers(min_value=0, max_value=3))
    def invalidate(self, index):
        self.client.invalidate(self.NAMES[index])

    @rule()
    def client_amnesia(self):
        self.client.leases.clear()

    @rule(shard_index=st.integers(min_value=0, max_value=2))
    def shard_crash(self, shard_index):
        """Drop a shard's (soft) entries; every manager republishes —
        the directory must rebuild to the authoritative placements."""
        self.managers[self.SERVERS[shard_index]].shard.forget()
        for manager in self.managers.values():
            manager.republish()
        self.network.run()

    # -- invariants --------------------------------------------------------

    @invariant()
    def exactly_one_active_placement_per_name(self):
        for name in self.NAMES:
            holders = [
                site_id
                for site_id, manager in self.managers.items()
                if manager.placements.get(name, {}).get("state") == "active"
            ]
            assert holders == [self.home[name]], (
                f"{name} active at {holders}, mirror says {self.home[name]}"
            )
            entry = self.managers[self.home[name]].placements[name]
            assert entry["generation"] == self.generation[name]
            assert entry["guid"] == self.guids[name]

    @invariant()
    def shard_agrees_with_the_true_placement(self):
        for name in self.NAMES:
            shard = self.managers[self.ring.owner(name)].shard
            entry = shard.entries.get(name)
            assert entry is not None, f"directory lost {name}"
            assert entry["site"] == self.home[name]
            assert entry["generation"] == self.generation[name]

    @invariant()
    def counters_match_mirror(self):
        for name in self.NAMES:
            obj = self.sites[self.home[name]].local_object(self.guids[name])
            assert obj.get_data("count", caller=obj.owner) == (
                self.counts[name]
            ), f"{name} lost or double-applied an increment"

    @invariant()
    def managers_are_quiescent(self):
        for site_id, manager in self.managers.items():
            assert manager.quiescent, f"{site_id} has unresolved moves"


DirectoryLeaseMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
TestDirectoryLease = DirectoryLeaseMachine.TestCase


class DirectoryLeaseMachineSeed1(DirectoryLeaseMachine):
    WORLD_SEED = 1


class DirectoryLeaseMachineSeed2(DirectoryLeaseMachine):
    WORLD_SEED = 2


DirectoryLeaseMachineSeed1.TestCase.settings = settings(
    max_examples=10, stateful_step_count=15, deadline=None
)
DirectoryLeaseMachineSeed2.TestCase.settings = settings(
    max_examples=10, stateful_step_count=15, deadline=None
)
TestDirectoryLeaseSeed1 = DirectoryLeaseMachineSeed1.TestCase
TestDirectoryLeaseSeed2 = DirectoryLeaseMachineSeed2.TestCase

