"""The synthetic legacy applications."""

import pytest

from repro.apps import (
    Calculator,
    CalculatorError,
    Employee,
    EmployeeDatabase,
    TextIndex,
    sample_database,
)


class TestEmployeeDatabase:
    @pytest.fixture
    def db(self):
        return sample_database()

    def test_lookup_and_salary(self, db):
        assert db.salary_of("moshe") == 4500
        with pytest.raises(KeyError):
            db.lookup("nobody")

    def test_by_department_sorted(self, db):
        names = [e.name for e in db.by_department("sales")]
        assert names == ["avi", "rina", "tamar"]

    def test_departments(self, db):
        assert db.departments() == ["engineering", "research", "sales"]

    def test_payroll(self, db):
        assert db.payroll_total("sales") == 3900 + 6000 + 4100
        assert db.payroll_total() == sum(
            db.salary_of(e.name) for d in db.departments() for e in db.by_department(d)
        )

    def test_give_raise(self, db):
        assert db.give_raise("moshe", 500) == 5000
        assert db.salary_of("moshe") == 5000

    def test_reports_to(self, db):
        assert db.reports_to("dana") == ["moshe", "yael"]

    def test_insert_duplicate(self, db):
        with pytest.raises(KeyError):
            db.insert(Employee("moshe", "x", 1))

    def test_query_counter(self, db):
        before = db.queries_served
        db.headcount()
        db.departments()
        assert db.queries_served == before + 2

    def test_shutdown_flag(self, db):
        db.shut_down()
        assert not db.online
        db.start_up()
        assert db.online


class TestCalculator:
    @pytest.fixture
    def calc(self):
        return Calculator()

    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("1+2", 3),
            ("2*3+4", 10),
            ("2+3*4", 14),
            ("(2+3)*4", 20),
            ("10/4", 2.5),
            ("10%3", 1),
            ("-5+2", -3),
            ("-(2+3)", -5),
            ("2*-3", -6),
            ("1.5*2", 3.0),
            (".5 + .25", 0.75),
        ],
    )
    def test_evaluation(self, calc, expression, expected):
        assert calc.evaluate(expression) == expected

    def test_memory(self, calc):
        calc.store("rate", 1.17)
        assert calc.evaluate("100 * rate") == pytest.approx(117.0)
        assert calc.names() == ["rate"]
        calc.clear()
        with pytest.raises(CalculatorError):
            calc.recall("rate")

    def test_memory_rejects_non_numbers(self, calc):
        with pytest.raises(CalculatorError):
            calc.store("x", "text")
        with pytest.raises(CalculatorError):
            calc.store("x", True)

    @pytest.mark.parametrize(
        "expression",
        ["", "2+", "(1+2", "1 2", "$", "unknown_name", "1/0"],
    )
    def test_malformed_rejected(self, calc, expression):
        with pytest.raises(CalculatorError):
            calc.evaluate(expression)

    def test_evaluation_counter(self, calc):
        calc.evaluate("1+1")
        calc.evaluate("2+2")
        assert calc.evaluations == 2


class TestTextIndex:
    @pytest.fixture
    def index(self):
        index = TextIndex()
        index.add_document("mrom", "mobile objects adjust to foreign environments")
        index.add_document("corba", "static objects in a fixed repository")
        index.add_document("agents", "mobile agents travel with goals and plans")
        return index

    def test_search_ranks_by_relevance(self, index):
        hits = [name for name, _score in index.search("mobile")]
        assert set(hits) == {"mrom", "agents"}

    def test_rare_terms_weigh_more(self, index):
        hits = index.search("mobile goals")
        assert hits[0][0] == "agents"  # matches both terms, one rare

    def test_unknown_terms_ignored(self, index):
        assert index.search("zzzz qqqq") == []

    def test_limit(self, index):
        assert len(index.search("objects mobile static", limit=2)) == 2

    def test_remove_document(self, index):
        index.remove_document("mrom")
        assert "mrom" not in dict(index.search("mobile"))
        assert index.documents() == ["agents", "corba"]

    def test_remove_cleans_postings(self, index):
        vocabulary_before = index.vocabulary_size()
        index.remove_document("agents")
        assert index.vocabulary_size() < vocabulary_before

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(KeyError):
            index.add_document("mrom", "again")

    def test_term_frequency(self, index):
        index.add_document("rep", "data data data")
        assert index.term_frequency("rep", "data") == 3
        assert index.term_frequency("rep", "absent") == 0

    def test_case_insensitive(self, index):
        assert index.search("MOBILE") == index.search("mobile")
