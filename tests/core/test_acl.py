"""Security coupled with encapsulation: ACL evaluation semantics."""

import pytest

from repro.core import (
    AccessControlList,
    AclEntry,
    ANONYMOUS,
    AccessDeniedError,
    Decision,
    Permission,
    Principal,
    SYSTEM,
    allow_all,
    deny_all,
    domain_acl,
    owner_only,
    principals_acl,
)


@pytest.fixture
def ee_member():
    return Principal("mrom:obj:ee1", "technion.ee", "ee-member")


@pytest.fixture
def cs_member():
    return Principal("mrom:obj:cs1", "technion.cs", "cs-member")


class TestPrincipal:
    def test_in_domain_subtree(self, ee_member):
        assert ee_member.in_domain("technion")
        assert ee_member.in_domain("technion.ee")
        assert not ee_member.in_domain("technion.cs")

    def test_in_domain_is_segment_wise(self):
        # 'technion' must not match 'technio' as a prefix
        p = Principal("g", "technion.ee")
        assert not p.in_domain("technio")

    def test_empty_domain_matches_everything(self, ee_member):
        assert ee_member.in_domain("")

    def test_str_includes_domain(self, ee_member):
        assert str(ee_member) == "ee-member@technion.ee"


class TestEntryMatching:
    def test_star_matches_anonymous(self):
        entry = AclEntry("*", Permission.INVOKE)
        assert entry.applies_to(ANONYMOUS)

    def test_domain_entry_does_not_match_anonymous(self):
        entry = AclEntry("domain:technion", Permission.INVOKE)
        assert not entry.applies_to(ANONYMOUS)

    def test_domain_entry_matches_subdomain(self, ee_member):
        entry = AclEntry("domain:technion", Permission.INVOKE)
        assert entry.applies_to(ee_member)

    def test_principal_entry_exact(self, ee_member, cs_member):
        entry = AclEntry(ee_member.guid, Permission.INVOKE)
        assert entry.applies_to(ee_member)
        assert not entry.applies_to(cs_member)

    def test_covers_permission_flags(self):
        entry = AclEntry("*", Permission.GET | Permission.SET)
        assert entry.covers(Permission.GET)
        assert not entry.covers(Permission.INVOKE)


class TestEvaluation:
    def test_default_deny(self, ee_member):
        acl = AccessControlList()
        assert not acl.permits(ee_member, Permission.INVOKE)

    def test_default_allow(self, ee_member):
        acl = AccessControlList(default_allow=True)
        assert acl.permits(ee_member, Permission.INVOKE)

    def test_system_always_passes(self):
        assert deny_all().permits(SYSTEM, Permission.META)

    def test_deny_overrides_allow(self, ee_member):
        acl = AccessControlList(
            [
                AclEntry("domain:technion", Permission.ALL),
                AclEntry(ee_member.guid, Permission.INVOKE, Decision.DENY),
            ]
        )
        assert not acl.permits(ee_member, Permission.INVOKE)
        # deny is permission-scoped: GET still allowed
        assert acl.permits(ee_member, Permission.GET)

    def test_deny_order_does_not_matter(self, ee_member):
        acl = AccessControlList(
            [
                AclEntry(ee_member.guid, Permission.INVOKE, Decision.DENY),
                AclEntry("domain:technion", Permission.ALL),
            ]
        )
        assert not acl.permits(ee_member, Permission.INVOKE)

    def test_grant_and_revoke_chaining(self, ee_member, cs_member):
        acl = AccessControlList().grant("domain:technion", Permission.INVOKE)
        acl.revoke("domain:technion.cs", Permission.INVOKE)
        assert acl.permits(ee_member, Permission.INVOKE)
        assert not acl.permits(cs_member, Permission.INVOKE)

    def test_remove_subject(self, ee_member):
        acl = AccessControlList().grant(ee_member.guid, Permission.ALL)
        assert acl.remove_subject(ee_member.guid) == 1
        assert not acl.permits(ee_member, Permission.GET)

    def test_check_raises_with_context(self, ee_member):
        with pytest.raises(AccessDeniedError) as excinfo:
            deny_all().check(ee_member, Permission.SET, "salary")
        err = excinfo.value
        assert err.item == "salary"
        assert err.permission == "SET"


class TestFactories:
    def test_allow_all(self, ee_member):
        assert allow_all().permits(ANONYMOUS, Permission.INVOKE)
        assert allow_all().permits(ee_member, Permission.META)

    def test_owner_only(self, ee_member, cs_member):
        acl = owner_only(ee_member)
        assert acl.permits(ee_member, Permission.META)
        assert not acl.permits(cs_member, Permission.META)
        assert not acl.permits(ANONYMOUS, Permission.GET)

    def test_domain_acl(self, ee_member, cs_member):
        acl = domain_acl("technion.ee")
        assert acl.permits(ee_member, Permission.INVOKE)
        assert not acl.permits(cs_member, Permission.INVOKE)

    def test_principals_acl(self, ee_member, cs_member):
        acl = principals_acl([ee_member, cs_member], Permission.INVOKE)
        assert acl.permits(ee_member, Permission.INVOKE)
        assert not acl.permits(ee_member, Permission.SET)


class TestDescriptionRoundTrip:
    def test_round_trip_preserves_semantics(self, ee_member, cs_member):
        original = AccessControlList(
            [
                AclEntry("domain:technion", Permission.GET | Permission.INVOKE),
                AclEntry(cs_member.guid, Permission.INVOKE, Decision.DENY),
            ],
            default_allow=False,
        )
        rebuilt = AccessControlList.from_description(original.describe())
        for principal in (ee_member, cs_member, ANONYMOUS):
            for permission in (
                Permission.GET,
                Permission.SET,
                Permission.INVOKE,
                Permission.META,
            ):
                assert rebuilt.permits(principal, permission) == original.permits(
                    principal, permission
                )

    def test_describe_shape(self):
        described = owner_only(Principal("g1", "d")).describe()
        assert described["default_allow"] is False
        assert described["entries"][0]["subject"] == "g1"
        assert set(described["entries"][0]["permissions"]) == {
            "GET",
            "SET",
            "INVOKE",
            "META",
        }

    def test_copy_is_independent(self, ee_member):
        acl = deny_all()
        copied = acl.copy()
        copied.grant(ee_member.guid, Permission.GET)
        assert copied.permits(ee_member, Permission.GET)
        assert not acl.permits(ee_member, Permission.GET)
