"""Differential proof that the invocation cache changes cost, never
observables.

Randomized op sequences — invoke / mutate items / edit ACLs in place /
specialize / migrate — run against two structurally identical subjects,
one with the fast-path cache and one without. After **every** op, every
observable must be identical:

* returned values (canonicalized: live handles compare by target, not
  identity);
* raised errors (type and message);
* :class:`InvocationRecord` streams (level, phase, method, note);
* audit/telemetry events (``acl.check`` counters and span events),
  checked by a dedicated scripted test since span ids are mint-order
  dependent.

The Hypothesis settings guarantee at least 200 distinct randomized
sequences across the two machine-driven tests (acceptance criterion of
the fast-path PR).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AccessControlList,
    MROMObject,
    Permission,
    Principal,
    allow_all,
    clone,
)
from repro.core.errors import MROMError
from repro.core.items import ItemHandle
from repro.mobility import pack, unpack
from repro.telemetry import Telemetry, enabled

pytestmark = pytest.mark.fastpath

OWNER = Principal("mrom://diff/owner", "diff", "owner")
FRIEND = Principal("mrom://diff/friend", "diff.lab", "friend")
STRANGER = Principal("mrom://elsewhere/stranger", "elsewhere", "stranger")
PRINCIPALS = (OWNER, FRIEND, STRANGER)

SUBJECT_GUID = "mrom:obj:differential"

METHOD_NAMES = ("ping", "double", "guarded", "touch_base")
DATA_NAMES = ("base", "scratch")


def build_subject(fastpath: bool) -> MROMObject:
    obj = MROMObject(
        guid=SUBJECT_GUID,
        domain="diff",
        display_name="subject",
        owner=OWNER,
        meta_acl=allow_all(),
        fastpath=fastpath,
    )
    obj.define_fixed_data("base", 10)
    obj.define_fixed_method("ping", "return 'pong'", acl=allow_all())
    obj.define_fixed_method("double", "return args[0] * 2", acl=allow_all())
    # guarded: FRIEND may invoke, STRANGER may not (until a grant lands)
    guarded_acl = AccessControlList().grant(FRIEND.guid, Permission.INVOKE)
    obj.define_fixed_method("guarded", "return 'secret'", acl=guarded_acl)
    obj.define_fixed_method(
        "touch_base",
        "n = self.get('base') + 1\nself.set('base', n)\nreturn n",
        acl=allow_all(),
    )
    obj.seal()
    return obj


def canon(value):
    """Canonicalize results: handles compare by referent name/validity."""
    if isinstance(value, ItemHandle):
        return ("handle", value.item.name)
    if isinstance(value, (list, tuple)):
        return [canon(element) for element in value]
    if isinstance(value, dict):
        return {key: canon(val) for key, val in value.items()}
    return value


def record_stream(obj: MROMObject):
    return [
        (event.level, event.phase.value, event.method, event.note)
        for record in obj.invocation_records()
        for event in record.events
    ]


class Pair:
    """The cached and uncached subjects, stepped in lockstep."""

    def __init__(self):
        self.cached = build_subject(True)
        self.uncached = build_subject(False)
        for obj in (self.cached, self.uncached):
            obj.enable_tracing(True)

    def step(self, op):
        outcomes = []
        for obj in (self.cached, self.uncached):
            try:
                outcomes.append(("ok", canon(op(obj))))
            except MROMError as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1], (
            f"cached and uncached outcomes diverged: "
            f"{outcomes[0]!r} != {outcomes[1]!r}"
        )
        assert record_stream(self.cached) == record_stream(self.uncached), (
            "InvocationRecord streams diverged"
        )

    def migrate(self):
        """pack -> unpack both subjects (caches must arrive cold)."""
        migrated = []
        for obj, use_cache in ((self.cached, True), (self.uncached, False)):
            copy = unpack(pack(obj))
            copy.enable_fastpath(use_cache)
            copy.enable_tracing(True)
            migrated.append(copy)
        self.cached, self.uncached = migrated
        if self.cached.fastpath is not None:
            assert self.cached.fastpath.entries == 0, (
                "migrated object's cache must arrive cold"
            )

    def specialize(self):
        """Clone both subjects under one fresh (but equal) identity."""
        guid = f"{SUBJECT_GUID}:spec"
        clones = []
        for obj, use_cache in ((self.cached, True), (self.uncached, False)):
            copy = clone(obj, guid=guid, display_name="subject")
            copy.enable_fastpath(use_cache)
            copy.enable_tracing(True)
            clones.append(copy)
        self.cached, self.uncached = clones


# ---------------------------------------------------------------------------
# op vocabulary
# ---------------------------------------------------------------------------

ext_names = st.sampled_from(["alpha", "beta", "gamma"])
small_ints = st.integers(min_value=-50, max_value=50)


@st.composite
def ops(draw):
    kind = draw(
        st.sampled_from(
            [
                "invoke",
                "invoke_unknown",
                "invoke_denied",
                "add_data",
                "delete_data",
                "add_method",
                "delete_method",
                "acl_grant",
                "acl_revoke",
                "set_method_acl",
                "migrate",
                "specialize",
            ]
        )
    )
    if kind == "invoke":
        name = draw(st.sampled_from(METHOD_NAMES))
        arg = draw(small_ints)
        caller = draw(st.sampled_from(PRINCIPALS))
        return ("invoke", name, arg, caller)
    if kind == "invoke_unknown":
        return ("invoke_unknown", draw(st.sampled_from(["nope", "missing"])))
    if kind == "invoke_denied":
        return ("invoke_denied", draw(st.sampled_from([STRANGER, FRIEND])))
    if kind in ("add_data", "delete_data"):
        return (kind, draw(ext_names), draw(small_ints))
    if kind == "add_method":
        return (kind, draw(ext_names), draw(small_ints))
    if kind == "delete_method":
        return (kind, draw(ext_names))
    if kind in ("acl_grant", "acl_revoke"):
        principal = draw(st.sampled_from([STRANGER, FRIEND]))
        return (kind, principal)
    if kind == "set_method_acl":
        return (kind, draw(st.booleans()))
    return (kind,)


def apply_op(pair: Pair, op) -> None:
    kind = op[0]
    if kind == "invoke":
        _, name, arg, caller = op
        args = [arg] if name == "double" else []
        pair.step(lambda obj: obj.invoke(name, args, caller=caller))
    elif kind == "invoke_unknown":
        pair.step(lambda obj: obj.invoke(op[1], [], caller=OWNER))
    elif kind == "invoke_denied":
        pair.step(lambda obj: obj.invoke("guarded", [], caller=op[1]))
    elif kind == "add_data":
        pair.step(lambda obj: obj.invoke("addDataItem", [op[1], op[2]], caller=OWNER))
    elif kind == "delete_data":
        pair.step(lambda obj: obj.invoke("deleteDataItem", [op[1]], caller=OWNER))
    elif kind == "add_method":
        source = f"return {op[2]}"
        pair.step(
            lambda obj: obj.invoke(
                "addMethod",
                [op[1], source, {"acl": allow_all().describe()}],
                caller=OWNER,
            )
        )
    elif kind == "delete_method":
        pair.step(lambda obj: obj.invoke("deleteMethod", [op[1]], caller=OWNER))
    elif kind == "acl_grant":
        def grant(obj):
            method, _ = obj.containers.lookup_method("guarded")
            method.acl.grant(op[1].guid, Permission.INVOKE)
            return "granted"
        pair.step(grant)
    elif kind == "acl_revoke":
        def revoke(obj):
            method, _ = obj.containers.lookup_method("guarded")
            method.acl.revoke(op[1].guid, Permission.INVOKE)
            return "revoked"
        pair.step(revoke)
    elif kind == "set_method_acl":
        open_it = op[1]
        def swap(obj):
            method, _ = obj.containers.lookup_method("guarded")
            acl = allow_all() if open_it else AccessControlList().grant(
                FRIEND.guid, Permission.INVOKE
            )
            method.set_acl(acl)
            return "swapped"
        pair.step(swap)
    elif kind == "migrate":
        pair.migrate()
    elif kind == "specialize":
        pair.specialize()


# ---------------------------------------------------------------------------
# the differential suites
# ---------------------------------------------------------------------------


class TestDifferential:
    @given(st.lists(ops(), min_size=1, max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_randomized_sequences_observably_identical(self, sequence):
        pair = Pair()
        for op in sequence:
            apply_op(pair, op)
        # and the hot paths actually got exercised somewhere along the way
        # (the cached subject carries a cache; the uncached one never does)
        assert pair.uncached.fastpath is None

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(METHOD_NAMES),
                small_ints,
                st.sampled_from(PRINCIPALS),
            ),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pure_invocation_storms_hit_and_stay_identical(self, calls):
        """Invocation-only sequences: the cache goes warm and must still
        be observably silent."""
        pair = Pair()
        for name, arg, caller in calls:
            args = [arg] if name == "double" else []
            pair.step(lambda obj: obj.invoke(name, args, caller=caller))
        cache = pair.cached.fastpath
        assert cache is not None
        assert cache.lookup_hits + cache.lookup_misses > 0


class TestScriptedEdges:
    def test_post_mutation_sequences(self):
        """add -> call -> delete -> call -> re-add, in lockstep."""
        pair = Pair()
        pair.step(lambda obj: obj.invoke("ping", [], caller=OWNER))
        for op in (
            ("add_method", "alpha", 7),
            ("invoke", "ping", 0, OWNER),
            ("delete_method", "alpha"),
            ("add_method", "alpha", 9),
            ("invoke", "ping", 0, OWNER),
        ):
            apply_op(pair, op)
        # the extensible method behaves identically after re-add
        pair.step(lambda obj: obj.invoke("alpha", [], caller=OWNER))

    def test_denials_are_never_cached(self):
        """deny -> grant -> allow -> revoke -> deny, cached and uncached."""
        pair = Pair()
        apply_op(pair, ("invoke_denied", STRANGER))     # denied
        apply_op(pair, ("acl_grant", STRANGER))         # in-place edit
        apply_op(pair, ("invoke_denied", STRANGER))     # now allowed
        apply_op(pair, ("acl_revoke", STRANGER))        # deny-overrides
        apply_op(pair, ("invoke_denied", STRANGER))     # denied again
        apply_op(pair, ("invoke_denied", STRANGER))     # still denied (no
        # negative caching could have flipped this)

    def test_migration_preserves_observables(self):
        pair = Pair()
        apply_op(pair, ("add_data", "alpha", 5))
        apply_op(pair, ("invoke", "touch_base", 0, OWNER))
        pair.migrate()
        apply_op(pair, ("invoke", "touch_base", 0, OWNER))
        pair.step(lambda obj: obj.get_data("alpha", caller=OWNER))

    def test_telemetry_observables_identical(self):
        """Same scripted run, each under a fresh Telemetry: the acl.check
        counters and span-event streams must match (a cache hit emits the
        same audit evidence as a fresh Match)."""
        script = [
            ("invoke", "ping", 0, FRIEND),
            ("invoke", "guarded", 0, FRIEND),
            ("invoke", "guarded", 0, FRIEND),     # warm Match hit
            ("invoke_denied", STRANGER),
            ("invoke", "double", 21, FRIEND),
            ("invoke", "double", 21, FRIEND),
        ]
        streams = []
        for fastpath in (True, False):
            obj = build_subject(fastpath)
            with enabled(Telemetry()) as tel:
                with tel.span("harness"):
                    for op in script:
                        caller = op[3] if len(op) > 3 else op[1]
                        try:
                            if op[0] == "invoke":
                                args = [op[2]] if op[1] == "double" else []
                                obj.invoke(op[1], args, caller=op[3])
                            else:
                                obj.invoke("guarded", [], caller=op[1])
                        except MROMError:
                            pass
                checks = tel.metrics.counter_value("acl.checks")
                denials = tel.metrics.counter_value("acl.denials")
                events = [
                    (event.name, event.attrs.get("outcome"),
                     event.attrs.get("principal"), event.attrs.get("item"))
                    for span in tel.recorder
                    for event in span.events
                    if event.name == "acl.check"
                ]
                assert tel.open_spans == 0
            streams.append((checks, denials, events))
        assert streams[0] == streams[1], (
            f"telemetry observables diverged: {streams[0]!r} != {streams[1]!r}"
        )
