"""Differential proof that the invocation fast paths change cost, never
observables.

Randomized op sequences — invoke / mutate items / edit ACLs in place /
specialize / migrate — run against three structurally identical
subjects, one per execution tier: *interpreted* (no cache at all),
*cached* (the memo tables, compile tier off), and *compiled* (memo
tables plus specialized closures). After **every** op, every observable
must be identical across all three:

* returned values (canonicalized: live handles compare by target, not
  identity);
* raised errors (type and message);
* :class:`InvocationRecord` streams (level, phase, method, note);
* audit/telemetry events (``acl.check`` counters and span events),
  checked by a dedicated scripted test since span ids are mint-order
  dependent.

The Hypothesis settings guarantee at least 250 distinct randomized
sequences across the two machine-driven tests, each run against all
three tiers (acceptance criterion of the compile-tier PR; supersedes
the two-way 200-sequence criterion of the fast-path PR).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AccessControlList,
    MROMObject,
    Permission,
    Principal,
    allow_all,
    clone,
)
from repro.core.errors import MROMError
from repro.core.items import ItemHandle
from repro.mobility import pack, unpack
from repro.telemetry import Telemetry, enabled

pytestmark = [pytest.mark.fastpath, pytest.mark.compile]

OWNER = Principal("mrom://diff/owner", "diff", "owner")
FRIEND = Principal("mrom://diff/friend", "diff.lab", "friend")
STRANGER = Principal("mrom://elsewhere/stranger", "elsewhere", "stranger")
PRINCIPALS = (OWNER, FRIEND, STRANGER)

SUBJECT_GUID = "mrom:obj:differential"

METHOD_NAMES = ("ping", "double", "guarded", "touch_base")
DATA_NAMES = ("base", "scratch")


def build_subject(fastpath: bool) -> MROMObject:
    obj = MROMObject(
        guid=SUBJECT_GUID,
        domain="diff",
        display_name="subject",
        owner=OWNER,
        meta_acl=allow_all(),
        fastpath=fastpath,
    )
    obj.define_fixed_data("base", 10)
    obj.define_fixed_method("ping", "return 'pong'", acl=allow_all())
    obj.define_fixed_method("double", "return args[0] * 2", acl=allow_all())
    # guarded: FRIEND may invoke, STRANGER may not (until a grant lands)
    guarded_acl = AccessControlList().grant(FRIEND.guid, Permission.INVOKE)
    obj.define_fixed_method("guarded", "return 'secret'", acl=guarded_acl)
    obj.define_fixed_method(
        "touch_base",
        "n = self.get('base') + 1\nself.set('base', n)\nreturn n",
        acl=allow_all(),
    )
    obj.seal()
    return obj


def canon(value):
    """Canonicalize results: handles compare by referent name/validity."""
    if isinstance(value, ItemHandle):
        return ("handle", value.item.name)
    if isinstance(value, (list, tuple)):
        return [canon(element) for element in value]
    if isinstance(value, dict):
        return {key: canon(val) for key, val in value.items()}
    return value


def record_stream(obj: MROMObject):
    return [
        (event.level, event.phase.value, event.method, event.note)
        for record in obj.invocation_records()
        for event in record.events
    ]


TIERS = ("interpreted", "cached", "compiled")


def apply_tier(obj: MROMObject, tier: str) -> MROMObject:
    """Pin *obj* to one execution tier (returns obj for chaining)."""
    if tier == "interpreted":
        obj.enable_fastpath(False)
    else:
        obj.enable_fastpath(True, compiled=(tier == "compiled"))
    return obj


def build_tier(tier: str) -> MROMObject:
    return apply_tier(build_subject(tier != "interpreted"), tier)


class Trio:
    """One subject per execution tier, stepped in lockstep."""

    def __init__(self):
        self.interpreted = build_tier("interpreted")
        self.cached = build_tier("cached")
        self.compiled = build_tier("compiled")
        for obj in self.subjects:
            obj.enable_tracing(True)

    @property
    def subjects(self):
        return (self.interpreted, self.cached, self.compiled)

    def step(self, op):
        outcomes = []
        for obj in self.subjects:
            try:
                outcomes.append(("ok", canon(op(obj))))
            except MROMError as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1] == outcomes[2], (
            f"tier outcomes diverged: "
            f"{dict(zip(TIERS, map(repr, outcomes)))}"
        )
        streams = [record_stream(obj) for obj in self.subjects]
        assert streams[0] == streams[1] == streams[2], (
            "InvocationRecord streams diverged across tiers"
        )

    def migrate(self):
        """pack -> unpack every subject (all caches must arrive cold)."""
        migrated = [
            apply_tier(unpack(pack(obj)), tier)
            for obj, tier in zip(self.subjects, TIERS)
        ]
        for obj in migrated:
            obj.enable_tracing(True)
        self.interpreted, self.cached, self.compiled = migrated
        assert self.cached.fastpath.entries == 0, (
            "migrated object's cache must arrive cold"
        )
        assert self.compiled.fastpath.compiled_entries == 0, (
            "compiled closures must never survive migration"
        )

    def specialize(self):
        """Clone every subject under one fresh (but equal) identity."""
        guid = f"{SUBJECT_GUID}:spec"
        clones = [
            apply_tier(clone(obj, guid=guid, display_name="subject"), tier)
            for obj, tier in zip(self.subjects, TIERS)
        ]
        for obj in clones:
            obj.enable_tracing(True)
        self.interpreted, self.cached, self.compiled = clones


# ---------------------------------------------------------------------------
# op vocabulary
# ---------------------------------------------------------------------------

ext_names = st.sampled_from(["alpha", "beta", "gamma"])
small_ints = st.integers(min_value=-50, max_value=50)


@st.composite
def ops(draw):
    kind = draw(
        st.sampled_from(
            [
                "invoke",
                "invoke_unknown",
                "invoke_denied",
                "add_data",
                "delete_data",
                "add_method",
                "delete_method",
                "acl_grant",
                "acl_revoke",
                "set_method_acl",
                "migrate",
                "specialize",
            ]
        )
    )
    if kind == "invoke":
        name = draw(st.sampled_from(METHOD_NAMES))
        arg = draw(small_ints)
        caller = draw(st.sampled_from(PRINCIPALS))
        return ("invoke", name, arg, caller)
    if kind == "invoke_unknown":
        return ("invoke_unknown", draw(st.sampled_from(["nope", "missing"])))
    if kind == "invoke_denied":
        return ("invoke_denied", draw(st.sampled_from([STRANGER, FRIEND])))
    if kind in ("add_data", "delete_data"):
        return (kind, draw(ext_names), draw(small_ints))
    if kind == "add_method":
        return (kind, draw(ext_names), draw(small_ints))
    if kind == "delete_method":
        return (kind, draw(ext_names))
    if kind in ("acl_grant", "acl_revoke"):
        principal = draw(st.sampled_from([STRANGER, FRIEND]))
        return (kind, principal)
    if kind == "set_method_acl":
        return (kind, draw(st.booleans()))
    return (kind,)


def apply_op(trio: Trio, op) -> None:
    kind = op[0]
    if kind == "invoke":
        _, name, arg, caller = op
        args = [arg] if name == "double" else []
        trio.step(lambda obj: obj.invoke(name, args, caller=caller))
    elif kind == "invoke_unknown":
        trio.step(lambda obj: obj.invoke(op[1], [], caller=OWNER))
    elif kind == "invoke_denied":
        trio.step(lambda obj: obj.invoke("guarded", [], caller=op[1]))
    elif kind == "add_data":
        trio.step(lambda obj: obj.invoke("addDataItem", [op[1], op[2]], caller=OWNER))
    elif kind == "delete_data":
        trio.step(lambda obj: obj.invoke("deleteDataItem", [op[1]], caller=OWNER))
    elif kind == "add_method":
        source = f"return {op[2]}"
        trio.step(
            lambda obj: obj.invoke(
                "addMethod",
                [op[1], source, {"acl": allow_all().describe()}],
                caller=OWNER,
            )
        )
    elif kind == "delete_method":
        trio.step(lambda obj: obj.invoke("deleteMethod", [op[1]], caller=OWNER))
    elif kind == "acl_grant":
        def grant(obj):
            method, _ = obj.containers.lookup_method("guarded")
            method.acl.grant(op[1].guid, Permission.INVOKE)
            return "granted"
        trio.step(grant)
    elif kind == "acl_revoke":
        def revoke(obj):
            method, _ = obj.containers.lookup_method("guarded")
            method.acl.revoke(op[1].guid, Permission.INVOKE)
            return "revoked"
        trio.step(revoke)
    elif kind == "set_method_acl":
        open_it = op[1]
        def swap(obj):
            method, _ = obj.containers.lookup_method("guarded")
            acl = allow_all() if open_it else AccessControlList().grant(
                FRIEND.guid, Permission.INVOKE
            )
            method.set_acl(acl)
            return "swapped"
        trio.step(swap)
    elif kind == "migrate":
        trio.migrate()
    elif kind == "specialize":
        trio.specialize()


# ---------------------------------------------------------------------------
# the differential suites
# ---------------------------------------------------------------------------


class TestDifferential:
    @given(st.lists(ops(), min_size=1, max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_randomized_sequences_observably_identical(self, sequence):
        trio = Trio()
        for op in sequence:
            apply_op(trio, op)
        # the tiers kept their shapes all along the way
        assert trio.interpreted.fastpath is None
        assert not trio.cached.fastpath.compile_enabled
        assert trio.compiled.fastpath.compile_enabled

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(METHOD_NAMES),
                small_ints,
                st.sampled_from(PRINCIPALS),
            ),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pure_invocation_storms_hit_and_stay_identical(self, calls):
        """Invocation-only sequences: the caches go warm, the compiled
        tier starts serving calls, and all three must still be
        observably silent."""
        trio = Trio()
        for name, arg, caller in calls:
            args = [arg] if name == "double" else []
            trio.step(lambda obj: obj.invoke(name, args, caller=caller))
        cache = trio.cached.fastpath
        assert cache is not None
        assert cache.lookup_hits + cache.lookup_misses > 0
        assert cache.compiled_hits == 0, "compile tier must stay off here"
        compiled = trio.compiled.fastpath
        # any (method, caller) pair invoked twice successfully compiles;
        # three times and the closure itself served a call
        pairs = {}
        served = False
        for name, _arg, caller in calls:
            allowed = name != "guarded" or caller is FRIEND
            if not allowed:
                continue
            pairs[(name, caller.guid)] = pairs.get((name, caller.guid), 0) + 1
            if pairs[(name, caller.guid)] >= 3:
                served = True
        if served:
            assert compiled.compiled_hits > 0, (
                "a thrice-invoked pair must have been served compiled"
            )


class TestScriptedEdges:
    def test_post_mutation_sequences(self):
        """add -> call -> delete -> call -> re-add, in lockstep."""
        trio = Trio()
        trio.step(lambda obj: obj.invoke("ping", [], caller=OWNER))
        for op in (
            ("add_method", "alpha", 7),
            ("invoke", "ping", 0, OWNER),
            ("delete_method", "alpha"),
            ("add_method", "alpha", 9),
            ("invoke", "ping", 0, OWNER),
        ):
            apply_op(trio, op)
        # the extensible method behaves identically after re-add
        trio.step(lambda obj: obj.invoke("alpha", [], caller=OWNER))

    def test_denials_are_never_cached(self):
        """deny -> grant -> allow -> revoke -> deny, cached and uncached."""
        trio = Trio()
        apply_op(trio, ("invoke_denied", STRANGER))     # denied
        apply_op(trio, ("acl_grant", STRANGER))         # in-place edit
        apply_op(trio, ("invoke_denied", STRANGER))     # now allowed
        apply_op(trio, ("acl_revoke", STRANGER))        # deny-overrides
        apply_op(trio, ("invoke_denied", STRANGER))     # denied again
        apply_op(trio, ("invoke_denied", STRANGER))     # still denied (no
        # negative caching could have flipped this)

    def test_migration_preserves_observables(self):
        trio = Trio()
        apply_op(trio, ("add_data", "alpha", 5))
        apply_op(trio, ("invoke", "touch_base", 0, OWNER))
        trio.migrate()
        apply_op(trio, ("invoke", "touch_base", 0, OWNER))
        trio.step(lambda obj: obj.get_data("alpha", caller=OWNER))

    def test_telemetry_observables_identical(self):
        """Same scripted run, each tier under a fresh Telemetry: the
        acl.check counters and span-event streams must match (a cache or
        compiled hit emits the same audit evidence as a fresh Match)."""
        script = [
            ("invoke", "ping", 0, FRIEND),
            ("invoke", "guarded", 0, FRIEND),
            ("invoke", "guarded", 0, FRIEND),     # warm Match hit
            ("invoke", "guarded", 0, FRIEND),     # compiled hit
            ("invoke_denied", STRANGER),
            ("invoke", "double", 21, FRIEND),
            ("invoke", "double", 21, FRIEND),
            ("invoke", "double", 21, FRIEND),     # compiled hit
        ]
        streams = []
        for tier in TIERS:
            obj = build_tier(tier)
            with enabled(Telemetry()) as tel:
                with tel.span("harness"):
                    for op in script:
                        caller = op[3] if len(op) > 3 else op[1]
                        try:
                            if op[0] == "invoke":
                                args = [op[2]] if op[1] == "double" else []
                                obj.invoke(op[1], args, caller=op[3])
                            else:
                                obj.invoke("guarded", [], caller=op[1])
                        except MROMError:
                            pass
                checks = tel.metrics.counter_value("acl.checks")
                denials = tel.metrics.counter_value("acl.denials")
                events = [
                    (event.name, event.attrs.get("outcome"),
                     event.attrs.get("principal"), event.attrs.get("item"))
                    for span in tel.recorder
                    for event in span.events
                    if event.name == "acl.check"
                ]
                assert tel.open_spans == 0
            if tier == "compiled":
                # the comparison is only meaningful if the compiled tier
                # actually served calls in the measured window
                assert obj.fastpath.compiled_hits >= 2, (
                    "script must exercise the compiled tier"
                )
            streams.append((checks, denials, events))
        assert streams[0] == streams[1] == streams[2], (
            f"telemetry observables diverged across tiers: {streams!r}"
        )
