"""Static (template) and dynamic (clone) specialization."""

import pytest

from repro.core import (
    DuplicateItemError,
    MROMObject,
    ObjectTemplate,
    allow_all,
    clone,
)


@pytest.fixture
def counter_template():
    template = ObjectTemplate("counter")
    template.fixed_data("count", 0)
    template.fixed_method(
        "increment",
        "step = args[0] if args else 1\n"
        "self.set('count', self.get('count') + step)\n"
        "return self.get('count')",
    )
    return template


class TestTemplates:
    def test_instantiate(self, counter_template):
        obj = counter_template.instantiate()
        assert obj.invoke("increment", [2]) == 2
        assert obj.sealed

    def test_instances_are_independent(self, counter_template):
        first = counter_template.instantiate()
        second = counter_template.instantiate()
        first.invoke("increment", [10])
        assert second.invoke("increment") == 1

    def test_instances_get_distinct_guids(self, counter_template):
        assert (
            counter_template.instantiate().guid
            != counter_template.instantiate().guid
        )

    def test_mutable_default_values_not_shared(self):
        template = ObjectTemplate("listy")
        template.fixed_data("items", [])
        template.fixed_method(
            "push", "self.get('items').append(args[0])\nreturn len(self.get('items'))"
        )
        first = template.instantiate()
        second = template.instantiate()
        first.invoke("push", ["a"])
        assert second.invoke("push", ["b"]) == 1

    def test_extensible_initial_state(self):
        template = ObjectTemplate("svc")
        template.extensible_data("interface_version", 1)
        obj = template.instantiate()
        _item, section = obj.containers.lookup_data("interface_version")
        assert section == "extensible"

    def test_lineage_recorded_in_environment(self, counter_template):
        child = counter_template.derive("fancy-counter")
        obj = child.instantiate()
        assert obj.environment["lineage"] == ["counter", "fancy-counter"]


class TestDerivation:
    def test_child_inherits_fixed_items(self, counter_template):
        child = counter_template.derive("resettable")
        child.fixed_method("reset", "self.set('count', 0)\nreturn True")
        obj = child.instantiate()
        obj.invoke("increment", [5])
        assert obj.invoke("reset") is True
        assert obj.invoke("increment") == 1

    def test_child_cannot_redefine_ancestor_fixed_item(self, counter_template):
        child = counter_template.derive("bad")
        with pytest.raises(DuplicateItemError):
            child.fixed_method("increment", "return 'hijacked'")
        with pytest.raises(DuplicateItemError):
            child.fixed_data("count", 99)

    def test_child_may_override_extensible_spec(self):
        base = ObjectTemplate("svc")
        base.extensible_data("version", 1)
        child = base.derive("svc2")
        child.extensible_data("version", 2)
        assert child.instantiate().get_data("version") == 2
        assert base.instantiate().get_data("version") == 1

    def test_grandchild_chain(self, counter_template):
        child = counter_template.derive("c2")
        child.fixed_data("step", 2)
        grandchild = child.derive("c3")
        grandchild.fixed_method(
            "bump", "return self.call('increment', self.get('step'))"
        )
        obj = grandchild.instantiate()
        assert obj.invoke("bump") == 2
        assert obj.environment["lineage"] == ["counter", "c2", "c3"]

    def test_extensible_meta_inherited(self):
        base = ObjectTemplate("meta-open", extensible_meta=True)
        child = base.derive("child")
        assert child.instantiate().extensible_meta


class TestClone:
    def make_prototype(self, alice):
        obj = MROMObject(
            display_name="proto", owner=alice, extensible_meta=True,
            meta_acl=allow_all(),
        )
        obj.define_fixed_data("base", 10)
        obj.define_fixed_method("get_base", "return self.get('base')")
        obj.seal()
        obj.invoke("addDataItem", ["extra", [1, 2]], caller=alice)
        obj.invoke("addMethod", ["sum_extra", "return sum(self.get('extra'))"], caller=alice)
        return obj

    def test_clone_copies_structure(self, alice):
        proto = self.make_prototype(alice)
        copy_obj = clone(proto)
        assert copy_obj.invoke("get_base") == 10
        assert copy_obj.invoke("sum_extra") == 3
        assert copy_obj.guid != proto.guid

    def test_clone_state_is_independent(self, alice):
        proto = self.make_prototype(alice)
        copy_obj = clone(proto)
        copy_obj.get_data("extra", caller=alice).append(3)
        assert proto.get_data("extra", caller=alice) == [1, 2]

    def test_clone_diverges_via_meta_methods(self, alice):
        proto = self.make_prototype(alice)
        copy_obj = clone(proto)
        copy_obj.invoke("addMethod", ["only_here", "return 'yes'"], caller=alice)
        assert copy_obj.invoke("only_here") == "yes"
        assert not proto.containers.has_method("only_here")

    def test_clone_copies_tower(self, alice):
        proto = self.make_prototype(alice)
        proto.invoke(
            "addMethod",
            ["invoke", "return ['via-tower', ctx.proceed()]",
             {"acl": allow_all().describe()}],
            caller=alice,
        )
        copy_obj = clone(proto)
        assert copy_obj.invoke("get_base") == ["via-tower", 10]
        # and the copies are independent towers
        copy_obj.invoke("deleteMethod", ["invoke"], caller=alice)
        assert copy_obj.invoke("get_base") == 10
        assert proto.invoke("get_base") == ["via-tower", 10]

    def test_clone_gets_fresh_meta_methods(self, alice):
        proto = self.make_prototype(alice)
        copy_obj = clone(proto)
        # the clone's meta-methods operate on the clone, not the prototype
        copy_obj.invoke("addDataItem", ["clone-only", 1], caller=alice)
        assert not proto.containers.has_data("clone-only")
