"""Level-0 invocation: Lookup -> Match -> Apply (Pre -> Body -> Post)."""

import pytest

from repro.core import (
    AccessDeniedError,
    MethodNotFoundError,
    MROMObject,
    Phase,
    PostProcedureError,
    PreProcedureVeto,
    Principal,
    owner_only,
)
from repro.core.errors import ProcedureSignatureError



@pytest.fixture
def caller():
    return Principal("mrom:obj:caller", "technion.ee", "caller")


class TestPhases:
    def test_happy_path_runs_three_phases(self, counter, caller):
        assert counter.invoke("increment", [2], caller=caller) == 2
        phases = counter.last_record.phases_at_level(0)
        assert phases == [Phase.LOOKUP, Phase.MATCH, Phase.BODY]

    def test_lookup_failure(self, counter, caller):
        with pytest.raises(MethodNotFoundError):
            counter.invoke("missing", caller=caller)
        assert counter.last_record.outcome == "error"

    def test_match_failure_blocks_body(self, caller):
        obj = MROMObject(display_name="locked")
        obj.define_fixed_data("hits", 0)
        obj.define_fixed_method(
            "secret",
            "self.set('hits', self.get('hits') + 1)\nreturn 'secret'",
            acl=owner_only(Principal("mrom:obj:somebody-else")),
        )
        obj.seal()
        with pytest.raises(AccessDeniedError):
            obj.invoke("secret", caller=caller)
        assert obj.get_data("hits") == 0

    def test_self_bypasses_match(self):
        obj = MROMObject(display_name="selfish")
        obj.define_fixed_method(
            "inner", "return 'inner'", acl=owner_only(Principal("mrom:obj:nobody"))
        )
        obj.define_fixed_method("outer", "return self.call('inner')")
        obj.seal()
        # outer is public; inner is reachable only through the object itself
        assert obj.invoke("outer") == "inner"
        with pytest.raises(AccessDeniedError):
            obj.invoke("inner")


class TestPreProcedure:
    def test_pre_true_allows_body(self, caller):
        obj = MROMObject()
        obj.define_fixed_method("m", "return 'ran'", pre="return True")
        obj.seal()
        assert obj.invoke("m", caller=caller) == "ran"
        assert Phase.PRE in obj.last_record.phases_at_level(0)

    def test_pre_false_vetoes_body(self, caller):
        obj = MROMObject()
        obj.define_fixed_data("ran", False)
        obj.define_fixed_method(
            "m", "self.set('ran', True)\nreturn 'ran'", pre="return False"
        )
        obj.seal()
        with pytest.raises(PreProcedureVeto):
            obj.invoke("m", caller=caller)
        assert obj.get_data("ran") is False
        assert obj.last_record.outcome == "veto"

    def test_pre_sees_arguments(self, caller):
        obj = MROMObject()
        obj.define_fixed_method(
            "withdraw",
            "return args[0]",
            pre="return args[0] <= 100",
        )
        obj.seal()
        assert obj.invoke("withdraw", [50], caller=caller) == 50
        with pytest.raises(PreProcedureVeto):
            obj.invoke("withdraw", [500], caller=caller)

    def test_non_boolean_pre_rejected(self, caller):
        obj = MROMObject()
        obj.define_fixed_method("m", "return 1", pre="return 'yes'")
        obj.seal()
        with pytest.raises(ProcedureSignatureError):
            obj.invoke("m", caller=caller)


class TestPostProcedure:
    def test_post_true_passes_result_through(self, caller):
        obj = MROMObject()
        obj.define_fixed_method(
            "m", "return 41 + 1", post="return result == 42"
        )
        obj.seal()
        assert obj.invoke("m", caller=caller) == 42

    def test_post_false_raises_after_body(self, caller):
        obj = MROMObject()
        obj.define_fixed_data("ran", False)
        obj.define_fixed_method(
            "m",
            "self.set('ran', True)\nreturn -1",
            post="return result >= 0",
        )
        obj.seal()
        with pytest.raises(PostProcedureError) as excinfo:
            obj.invoke("m", caller=caller)
        assert excinfo.value.result == -1
        assert obj.get_data("ran") is True  # body DID run; post is an assertion

    def test_assertion_style_pre_and_post(self, caller):
        # the paper cites class assertions in C++ as a pre/post use case
        obj = MROMObject()
        obj.define_fixed_data("balance", 100)
        obj.define_fixed_method(
            "withdraw",
            "self.set('balance', self.get('balance') - args[0])\n"
            "return self.get('balance')",
            pre="return args[0] > 0 and args[0] <= self.get('balance')",
            post="return result >= 0",
        )
        obj.seal()
        assert obj.invoke("withdraw", [30], caller=caller) == 70
        with pytest.raises(PreProcedureVeto):
            obj.invoke("withdraw", [1000], caller=caller)
        assert obj.get_data("balance") == 70


class TestDynamicWrapping:
    def test_pre_attached_at_runtime_via_set_method(self, owned_counter, alice):
        # "These procedures can be attached to the method dynamically
        # (by invoking the setMethod meta-method)." Wrapping targets
        # extensible methods — fixed ones yield no handle.
        owned_counter.invoke(
            "addMethod", ["bump", "return self.call('increment', *args)"], caller=alice
        )
        _desc, handle = owned_counter.invoke("getMethod", ["bump"], caller=alice)
        owned_counter.invoke(
            "setMethod",
            [handle, {"pre": "return args[0] <= 10 if args else True"}],
            caller=alice,
        )
        assert owned_counter.invoke("bump", [5]) == 5
        with pytest.raises(PreProcedureVeto):
            owned_counter.invoke("bump", [50])

    def test_wrapper_removal(self, owned_counter, alice):
        owned_counter.invoke(
            "addMethod", ["bump", "return self.call('increment', *args)"], caller=alice
        )
        _desc, handle = owned_counter.invoke("getMethod", ["bump"], caller=alice)
        owned_counter.invoke("setMethod", [handle, {"pre": "return False"}], caller=alice)
        with pytest.raises(PreProcedureVeto):
            owned_counter.invoke("bump", [1])
        owned_counter.invoke("setMethod", [handle, {"pre": None}], caller=alice)
        assert owned_counter.invoke("bump", [1]) == 1

    def test_fixed_method_yields_no_handle(self, owned_counter, alice):
        description, handle = owned_counter.invoke(
            "getMethod", ["increment"], caller=alice
        )
        assert description["section"] == "fixed"
        assert handle is None


class TestRecords:
    def test_tracing_keeps_history(self, counter, caller):
        counter.enable_tracing(True)
        counter.invoke("increment", [1], caller=caller)
        counter.invoke("peek", caller=caller)
        records = counter.invocation_records()
        assert [r.method for r in records] == ["increment", "peek"]
        assert all(r.outcome == "ok" for r in records)

    def test_tracing_off_keeps_only_last(self, counter, caller):
        counter.invoke("increment", [1], caller=caller)
        counter.invoke("peek", caller=caller)
        assert counter.invocation_records() == ()
        assert counter.last_record.method == "peek"

    def test_record_render_mentions_phases(self, counter, caller):
        counter.invoke("peek", caller=caller)
        rendered = counter.last_record.render()
        assert "lookup" in rendered and "match" in rendered and "body" in rendered

    def test_caller_identity_recorded(self, counter, caller):
        counter.invoke("peek", caller=caller)
        assert counter.last_record.caller == caller.guid


class TestPrimitiveBypass:
    def test_invoke_primitive_skips_tower(self, open_meta_counter, alice):
        open_meta_counter.invoke(
            "addMethod",
            ["invoke", "return 'absorbed'"],
            caller=alice,
        )
        # the tower absorbs everything...
        assert open_meta_counter.invoke("peek") == "absorbed"
        # ...but the level-0 primitive is still intact underneath
        assert open_meta_counter.invoke_primitive("peek") == 0


def test_counter_fixture_behaves(counter):
    assert counter.invoke("increment") == 1
    assert counter.invoke("increment", [4]) == 5
    assert counter.invoke("peek") == 5
