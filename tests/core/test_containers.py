"""Item containers: sealing, the four-way split, lookup precedence."""

import pytest

from repro.core import (
    ContainerSet,
    DataItem,
    DuplicateItemError,
    ItemContainer,
    ItemNotFoundError,
    MROMMethod,
    SealedContainerError,
)


def data(name, value=0):
    return DataItem(name, value)


def method(name):
    return MROMMethod(name, "return None")


class TestItemContainer:
    def test_add_and_get(self):
        container = ItemContainer("test")
        container.add(data("x", 1))
        assert container.get("x").peek() == 1

    def test_add_duplicate_rejected(self):
        container = ItemContainer("test")
        container.add(data("x"))
        with pytest.raises(DuplicateItemError):
            container.add(data("x"))

    def test_remove_returns_item(self):
        container = ItemContainer("test")
        item = data("x", 7)
        container.add(item)
        assert container.remove("x") is item
        assert "x" not in container

    def test_remove_missing_raises(self):
        with pytest.raises(ItemNotFoundError):
            ItemContainer("test").remove("ghost")

    def test_replace_swaps_item(self):
        container = ItemContainer("test")
        container.add(data("x", 1))
        old = container.replace("x", data("x", 2))
        assert old.peek() == 1
        assert container.get("x").peek() == 2

    def test_replace_with_renamed_item(self):
        container = ItemContainer("test")
        container.add(data("x", 1))
        container.replace("x", data("y", 2))
        assert "x" not in container
        assert container.get("y").peek() == 2

    def test_replace_rename_collision_restores_state(self):
        container = ItemContainer("test")
        container.add(data("x", 1))
        container.add(data("y", 2))
        with pytest.raises(DuplicateItemError):
            container.replace("x", data("y", 3))
        assert container.get("x").peek() == 1
        assert container.get("y").peek() == 2

    def test_rename(self):
        container = ItemContainer("test")
        container.add(data("x", 1))
        container.rename("x", "z")
        assert container.get("z").peek() == 1
        assert container.get("z").name == "z"

    def test_sealed_rejects_all_mutation(self):
        container = ItemContainer("test")
        container.add(data("x"))
        container.seal()
        with pytest.raises(SealedContainerError):
            container.add(data("y"))
        with pytest.raises(SealedContainerError):
            container.remove("x")
        with pytest.raises(SealedContainerError):
            container.replace("x", data("x", 9))
        with pytest.raises(SealedContainerError):
            container.rename("x", "y")

    def test_sealed_still_readable(self):
        container = ItemContainer("test")
        container.add(data("x", 5))
        container.seal()
        assert container.get("x").peek() == 5
        assert len(container) == 1

    def test_insertion_order_preserved(self):
        container = ItemContainer("test")
        for name in ["c", "a", "b"]:
            container.add(data(name))
        assert container.names() == ("c", "a", "b")

    def test_holds_is_identity_not_name(self):
        container = ItemContainer("test")
        first = data("x", 1)
        container.add(first)
        container.replace("x", data("x", 2))
        assert not container.holds(first)


class TestContainerSet:
    def test_data_and_methods_are_disjoint_namespaces(self):
        containers = ContainerSet()
        containers.add_fixed(data("thing"))
        containers.add_fixed(method("thing"))  # no clash across categories
        containers.seal_fixed()
        assert containers.has_data("thing")
        assert containers.has_method("thing")

    def test_lookup_reports_section(self):
        containers = ContainerSet()
        containers.add_fixed(data("f", 1))
        containers.seal_fixed()
        containers.add_extensible(data("e", 2))
        assert containers.lookup_data("f")[1] == "fixed"
        assert containers.lookup_data("e")[1] == "extensible"

    def test_extensible_cannot_shadow_fixed(self):
        containers = ContainerSet()
        containers.add_fixed(data("x", 1))
        containers.seal_fixed()
        with pytest.raises(DuplicateItemError):
            containers.add_extensible(data("x", 99))

    def test_fixed_cannot_shadow_extensible(self):
        containers = ContainerSet()
        containers.add_extensible(data("x"))
        with pytest.raises(DuplicateItemError):
            containers.add_fixed(data("x"))

    def test_remove_extensible_rejects_fixed_items(self):
        containers = ContainerSet()
        containers.add_fixed(data("x"))
        containers.seal_fixed()
        with pytest.raises(SealedContainerError):
            containers.remove_extensible("data", "x")

    def test_lookup_missing_raises_typed_error(self):
        containers = ContainerSet()
        containers.seal_fixed()
        with pytest.raises(ItemNotFoundError):
            containers.lookup_data("ghost")
        with pytest.raises(ItemNotFoundError):
            containers.lookup_method("ghost")

    def test_counts(self):
        containers = ContainerSet()
        containers.add_fixed(data("a"))
        containers.add_fixed(method("m"))
        containers.seal_fixed()
        containers.add_extensible(data("b"))
        assert containers.counts() == {
            "fixed_data": 1,
            "fixed_methods": 1,
            "extensible_data": 1,
            "extensible_methods": 0,
        }

    def test_iter_with_sections_covers_all_four(self):
        containers = ContainerSet()
        containers.add_fixed(data("fd"))
        containers.add_fixed(method("fm"))
        containers.seal_fixed()
        containers.add_extensible(data("ed"))
        containers.add_extensible(method("em"))
        entries = {
            (item.name, category, section)
            for item, category, section in containers.iter_with_sections()
        }
        assert entries == {
            ("fd", "data", "fixed"),
            ("ed", "data", "extensible"),
            ("fm", "method", "fixed"),
            ("em", "method", "extensible"),
        }

    def test_describe_all_sections(self):
        containers = ContainerSet()
        containers.add_fixed(data("fd"))
        containers.seal_fixed()
        containers.add_extensible(method("em"))
        descriptions = {d.name: d.section for d in containers.describe_all()}
        assert descriptions == {"fd": "fixed", "em": "extensible"}

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            ContainerSet().lookup("widget", "x")
