"""The bundled meta-methods: reflective structure manipulation."""

import pytest

from repro.core import (
    AccessDeniedError,
    DuplicateItemError,
    FixedSectionError,
    ItemNotFoundError,
    Kind,
    META_METHOD_NAMES,
    StaleHandleError,
    allow_all,
    owner_only,
)
from repro.core.errors import StructureError

from ..conftest import build_counter


class TestBundling:
    def test_meta_methods_are_inside_the_object(self, counter):
        # self-containment: no separate meta-object; every meta-method is
        # an ordinary method of the object itself
        for name in META_METHOD_NAMES:
            assert counter.containers.has_method(name)

    def test_meta_methods_fixed_by_default(self, counter):
        for name in META_METHOD_NAMES:
            _method, section = counter.containers.lookup_method(name)
            assert section == "fixed"

    def test_meta_methods_extensible_on_request(self, open_meta_counter):
        for name in META_METHOD_NAMES:
            _method, section = open_meta_counter.containers.lookup_method(name)
            assert section == "extensible"


class TestAddDataItem:
    def test_add_then_read(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["label", "hot"], caller=alice)
        assert owned_counter.get_data("label", caller=alice) == "hot"

    def test_add_with_kind_coerces(self, owned_counter, alice):
        owned_counter.invoke(
            "addDataItem", ["limit", "42", {"kind": Kind.INTEGER}], caller=alice
        )
        assert owned_counter.get_data("limit", caller=alice) == 42

    def test_add_with_kind_by_name(self, owned_counter, alice):
        owned_counter.invoke(
            "addDataItem", ["limit", "42", {"kind": "integer"}], caller=alice
        )
        assert owned_counter.get_data("limit", caller=alice) == 42

    def test_add_duplicate_rejected(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        with pytest.raises(DuplicateItemError):
            owned_counter.invoke("addDataItem", ["x", 2], caller=alice)

    def test_cannot_shadow_fixed_data(self, owned_counter, alice):
        with pytest.raises(DuplicateItemError):
            owned_counter.invoke("addDataItem", ["count", 99], caller=alice)

    def test_returns_description(self, owned_counter, alice):
        description = owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        assert description["name"] == "x"
        assert description["section"] == "extensible"


class TestDeleteDataItem:
    def test_delete_extensible(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        owned_counter.invoke("deleteDataItem", ["x"], caller=alice)
        assert not owned_counter.containers.has_data("x")

    def test_delete_fixed_rejected(self, owned_counter, alice):
        with pytest.raises(FixedSectionError):
            owned_counter.invoke("deleteDataItem", ["count"], caller=alice)

    def test_delete_missing_rejected(self, owned_counter, alice):
        with pytest.raises(ItemNotFoundError):
            owned_counter.invoke("deleteDataItem", ["ghost"], caller=alice)


class TestGetSetDataItem:
    def test_get_returns_description_and_handle(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        description, handle = owned_counter.invoke(
            "getDataItem", ["x"], caller=alice
        )
        assert description["name"] == "x"
        assert handle.is_valid()

    def test_set_renames_item(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 7], caller=alice)
        _d, handle = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        owned_counter.invoke("setDataItem", [handle, {"name": "y"}], caller=alice)
        assert owned_counter.get_data("y", caller=alice) == 7
        assert not owned_counter.containers.has_data("x")

    def test_set_changes_dynamic_kind(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", "123"], caller=alice)
        _d, handle = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        owned_counter.invoke(
            "setDataItem", [handle, {"kind": Kind.INTEGER}], caller=alice
        )
        assert owned_counter.get_data("x", caller=alice) == 123

    def test_set_changes_acl(self, owned_counter, alice, bob):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        _d, handle = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        owned_counter.invoke(
            "setDataItem",
            [handle, {"acl": owner_only(alice).describe()}],
            caller=alice,
        )
        with pytest.raises(AccessDeniedError):
            owned_counter.get_data("x", caller=bob)
        assert owned_counter.get_data("x", caller=alice) == 1

    def test_stale_handle_after_delete(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        _d, handle = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        owned_counter.invoke("deleteDataItem", ["x"], caller=alice)
        with pytest.raises(StaleHandleError):
            owned_counter.invoke("setDataItem", [handle, {"name": "y"}], caller=alice)

    def test_set_requires_real_handle(self, owned_counter, alice):
        with pytest.raises(StructureError):
            owned_counter.invoke(
                "setDataItem", ["not-a-handle", {"name": "y"}], caller=alice
            )

    def test_fixed_data_description_without_handle(self, owned_counter, alice):
        description, handle = owned_counter.invoke(
            "getDataItem", ["count"], caller=alice
        )
        assert description["section"] == "fixed"
        assert handle is None

    def test_version_bumped_by_property_change(self, owned_counter, alice):
        owned_counter.invoke("addDataItem", ["x", 1], caller=alice)
        before, handle = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        owned_counter.invoke(
            "setDataItem", [handle, {"metadata": {"doc": "a thing"}}], caller=alice
        )
        after, _h = owned_counter.invoke("getDataItem", ["x"], caller=alice)
        assert after["version"] > before["version"]
        assert after["metadata"]["doc"] == "a thing"


class TestMethodMetaOperations:
    def test_add_method_and_invoke(self, owned_counter, alice):
        owned_counter.invoke(
            "addMethod", ["double", "return 2 * self.call('peek')"], caller=alice
        )
        owned_counter.invoke("increment", [3])
        assert owned_counter.invoke("double") == 6

    def test_added_method_with_custom_acl(self, owned_counter, alice, bob):
        owned_counter.invoke(
            "addMethod",
            ["secret", "return 'hidden'", {"acl": owner_only(alice).describe()}],
            caller=alice,
        )
        assert owned_counter.invoke("secret", caller=alice) == "hidden"
        with pytest.raises(AccessDeniedError):
            owned_counter.invoke("secret", caller=bob)

    def test_delete_method(self, owned_counter, alice):
        owned_counter.invoke("addMethod", ["temp", "return 1"], caller=alice)
        owned_counter.invoke("deleteMethod", ["temp"], caller=alice)
        assert not owned_counter.containers.has_method("temp")

    def test_delete_fixed_method_rejected(self, owned_counter, alice):
        with pytest.raises(FixedSectionError):
            owned_counter.invoke("deleteMethod", ["increment"], caller=alice)

    def test_set_method_body_changes_semantics(self, owned_counter, alice):
        # mutability: "operations on existing objects that may change
        # their semantics" — exactly what Java 1.1 reflection could not do
        owned_counter.invoke("addMethod", ["greet", "return 'hello'"], caller=alice)
        assert owned_counter.invoke("greet") == "hello"
        _d, handle = owned_counter.invoke("getMethod", ["greet"], caller=alice)
        owned_counter.invoke(
            "setMethod", [handle, {"body": "return 'shalom'"}], caller=alice
        )
        assert owned_counter.invoke("greet") == "shalom"

    def test_reflective_invoke_meta_method(self, owned_counter, alice):
        # "invoke ... is used to invoke any method of the object,
        # including meta-methods"
        result = owned_counter.invoke(
            "invoke", ["addDataItem", ["via-invoke", 5]], caller=alice
        )
        assert result["name"] == "via-invoke"
        assert owned_counter.get_data("via-invoke", caller=alice) == 5

    def test_reflective_invoke_ordinary_method(self, counter):
        assert counter.invoke("invoke", ["increment", [4]]) == 4


class TestMetaSecurity:
    def test_default_meta_acl_is_owner_only(self, owned_counter, alice, mallory):
        # the Ambassador duality: the host must not reach the guest's
        # self-changing operations
        with pytest.raises(AccessDeniedError):
            owned_counter.invoke("addDataItem", ["evil", 1], caller=mallory)
        owned_counter.invoke("addDataItem", ["fine", 1], caller=alice)

    def test_anonymous_cannot_mutate(self, owned_counter):
        with pytest.raises(AccessDeniedError):
            owned_counter.invoke("deleteDataItem", ["count"])

    def test_per_item_meta_permission(self, alice, bob):
        # alice's object grants bob INVOKE on the meta-methods, but a
        # specific item still denies bob META — per-item granularity wins
        obj = build_counter(owner=alice, extensible_meta=True, meta_acl=allow_all())
        obj.invoke(
            "addDataItem",
            ["guarded", 1, {"acl": owner_only(alice).describe()}],
            caller=alice,
        )
        with pytest.raises(AccessDeniedError):
            obj.invoke("deleteDataItem", ["guarded"], caller=bob)
        obj.invoke("deleteDataItem", ["guarded"], caller=alice)

    def test_wrong_arity_reported(self, owned_counter, alice):
        with pytest.raises(StructureError):
            owned_counter.invoke("getDataItem", [], caller=alice)
        with pytest.raises(StructureError):
            owned_counter.invoke("addDataItem", ["only-name"], caller=alice)
