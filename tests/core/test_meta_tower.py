"""Meta-mutability: the tower of meta-invoke levels (Figure 1)."""

import pytest

from repro.core import (
    FixedSectionError,
    Phase,
    PreProcedureVeto,
    allow_all,
)

from ..conftest import build_counter


PASS_THROUGH = "return ctx.proceed()"


def add_level(obj, owner, body=PASS_THROUGH, properties=None):
    props = {"acl": allow_all().describe()}
    props.update(properties or {})
    return obj.invoke("addMethod", ["invoke", body, props], caller=owner)


class TestTowerMechanics:
    def test_fixed_meta_objects_refuse_levels(self, counter):
        from repro.core import SYSTEM

        with pytest.raises(FixedSectionError):
            counter.invoke("addMethod", ["invoke", PASS_THROUGH], caller=SYSTEM)

    def test_figure1_two_level_trace(self, open_meta_counter, alice):
        """Reproduce Figure 1: a two-level invocation of Mfoo on Obar."""
        add_level(open_meta_counter, alice)  # level 1
        add_level(open_meta_counter, alice)  # level 2
        open_meta_counter.invoke("peek")
        record = open_meta_counter.last_record
        # entry at the top, descent to 0, unwinding back up
        assert record.levels() == [2, 1, 0]
        assert record.phases_at_level(0) == [Phase.LOOKUP, Phase.MATCH, Phase.BODY]
        # the meta levels each ran Match then (eventually) Body
        assert record.phases_at_level(2) == [Phase.MATCH, Phase.BODY]
        assert record.phases_at_level(1) == [Phase.MATCH, Phase.BODY]

    def test_pass_through_preserves_semantics(self, open_meta_counter, alice):
        add_level(open_meta_counter, alice)
        assert open_meta_counter.invoke("increment", [3]) == 3
        assert open_meta_counter.invoke("peek") == 3

    def test_meta_level_can_transform_results(self, open_meta_counter, alice):
        add_level(open_meta_counter, alice, "return ['wrapped', ctx.proceed()]")
        assert open_meta_counter.invoke("peek") == ["wrapped", 0]

    def test_meta_level_can_absorb_invocations(self, open_meta_counter, alice):
        # the database-shutdown pattern: never proceed, answer directly
        add_level(
            open_meta_counter,
            alice,
            "return 'database is down for maintenance'",
        )
        assert open_meta_counter.invoke("peek") == "database is down for maintenance"
        # level 0 underneath is untouched
        assert open_meta_counter.invoke_primitive("peek") == 0

    def test_delete_method_pops_top_level(self, open_meta_counter, alice):
        # each level absorbs only 'peek'; meta-operations pass through
        # (a level that absorbed *everything* would block the second
        # addMethod too — the tower intercepts all invocations)
        add_level(
            open_meta_counter, alice,
            "if ctx.target == 'peek':\n    return 'L1'\nreturn ctx.proceed()",
        )
        add_level(
            open_meta_counter, alice,
            "if ctx.target == 'peek':\n    return 'L2'\nreturn ctx.proceed()",
        )
        assert open_meta_counter.invoke("peek") == "L2"
        open_meta_counter.invoke("deleteMethod", ["invoke"], caller=alice)
        assert open_meta_counter.invoke("peek") == "L1"
        open_meta_counter.invoke("deleteMethod", ["invoke"], caller=alice)
        assert open_meta_counter.invoke("peek") == 0

    def test_applies_to_all_methods_of_the_object(self, open_meta_counter, alice):
        # "Since the pre-procedure is on the invoke method itself, it
        # applies to the invocation of all methods in the object"
        add_level(
            open_meta_counter,
            alice,
            "self.env['calls'] = self.env.get('calls', 0) + 1\nreturn ctx.proceed()",
        )
        open_meta_counter.invoke("peek")
        open_meta_counter.invoke("increment", [1])
        open_meta_counter.invoke("peek")
        assert open_meta_counter.environment["calls"] == 3


class TestChargingPattern:
    """The paper's 'code renting' example: a level-1 meta-invoke whose
    pre-procedure performs the required charging."""

    def test_charging_pre_procedure(self, alice):
        obj = build_counter(owner=alice, extensible_meta=True, meta_acl=allow_all())
        obj.environment["credit"] = 2
        add_level(
            obj,
            alice,
            PASS_THROUGH,
            {
                "pre": (
                    "if self.env['credit'] <= 0:\n"
                    "    return False\n"
                    "self.env['credit'] = self.env['credit'] - 1\n"
                    "return True"
                )
            },
        )
        assert obj.invoke("increment") == 1
        assert obj.invoke("increment") == 2
        with pytest.raises(PreProcedureVeto):
            obj.invoke("increment")
        # nothing ran: the veto protected the body at every level below
        assert obj.invoke_primitive("peek") == 2

    def test_charging_trace_shows_pre_at_level1(self, alice):
        obj = build_counter(owner=alice, extensible_meta=True, meta_acl=allow_all())
        obj.environment["credit"] = 5
        add_level(
            obj,
            alice,
            PASS_THROUGH,
            {"pre": "self.env['credit'] = self.env['credit'] - 1\nreturn True"},
        )
        obj.invoke("peek")
        assert Phase.PRE in obj.last_record.phases_at_level(1)
        assert Phase.PRE not in obj.last_record.phases_at_level(0)


class TestTowerIntrospection:
    def test_get_method_returns_top_of_tower(self, open_meta_counter, alice):
        add_level(open_meta_counter, alice)
        description, handle = open_meta_counter.invoke(
            "getMethod", ["invoke"], caller=alice
        )
        assert handle.is_valid()
        # mutate the top level in place
        open_meta_counter.invoke(
            "setMethod", [handle, {"body": "return 'patched'"}], caller=alice
        )
        assert open_meta_counter.invoke("peek") == "patched"

    def test_tower_levels_in_describe_items(self, open_meta_counter, alice):
        add_level(open_meta_counter, alice)
        add_level(open_meta_counter, alice)
        names = [d.name for d in open_meta_counter.describe_items()]
        assert "invoke@level1" in names
        assert "invoke@level2" in names

    def test_popped_level_handle_goes_stale(self, open_meta_counter, alice):
        add_level(open_meta_counter, alice)
        _d, handle = open_meta_counter.invoke("getMethod", ["invoke"], caller=alice)
        open_meta_counter.invoke("deleteMethod", ["invoke"], caller=alice)
        assert not handle.is_valid()


class TestTowerDepth:
    def test_many_levels_still_correct(self, open_meta_counter, alice):
        for _ in range(10):
            add_level(open_meta_counter, alice)
        assert open_meta_counter.invoke("increment", [2]) == 2
        assert open_meta_counter.last_record.levels()[0] == 10

    def test_depth_guard(self, open_meta_counter, alice):
        from repro.core import MAX_META_LEVELS
        from repro.core.errors import InvocationDepthError

        for _ in range(MAX_META_LEVELS + 1):
            add_level(open_meta_counter, alice)
        with pytest.raises(InvocationDepthError):
            open_meta_counter.invoke("peek")
