"""Edge cases of the ACL machinery: domain matching, combined
permission flags, and deny-overrides evaluation order."""

import pytest

from repro.core.acl import (
    ANONYMOUS,
    SYSTEM,
    AccessControlList,
    AclEntry,
    Decision,
    Permission,
    Principal,
)


def principal(domain="technion.ee.dsl", guid="mrom:obj:p"):
    return Principal(guid=guid, domain=domain)


class TestAppliesToDomainMatching:
    def test_exact_domain_matches(self):
        entry = AclEntry("domain:technion.ee", Permission.ALL)
        assert entry.applies_to(principal(domain="technion.ee"))

    def test_subdomain_matches_the_subtree(self):
        entry = AclEntry("domain:technion", Permission.ALL)
        assert entry.applies_to(principal(domain="technion.ee.dsl"))

    def test_parent_domain_does_not_match_child_subject(self):
        entry = AclEntry("domain:technion.ee.dsl", Permission.ALL)
        assert not entry.applies_to(principal(domain="technion.ee"))

    def test_sibling_domain_does_not_match(self):
        entry = AclEntry("domain:technion.ee", Permission.ALL)
        assert not entry.applies_to(principal(domain="technion.cs.lab"))

    def test_prefix_is_componentwise_not_textual(self):
        # "technion.e" is not a parent of "technion.ee"
        entry = AclEntry("domain:technion.e", Permission.ALL)
        assert not entry.applies_to(principal(domain="technion.ee"))

    def test_empty_domain_subject_matches_every_identified_principal(self):
        entry = AclEntry("domain:", Permission.ALL)
        assert entry.applies_to(principal(domain=""))
        assert entry.applies_to(principal(domain="anywhere.at.all"))

    def test_anonymous_never_matches_a_domain(self):
        # ANONYMOUS has an empty domain, which would vacuously satisfy
        # in_domain — the entry must special-case it away
        entry = AclEntry("domain:", Permission.ALL)
        assert not entry.applies_to(ANONYMOUS)

    def test_anonymous_matches_everyone(self):
        assert AclEntry("*", Permission.ALL).applies_to(ANONYMOUS)

    def test_principal_subject_ignores_domain(self):
        entry = AclEntry("mrom:obj:p", Permission.ALL)
        assert entry.applies_to(principal(domain="somewhere.else"))
        assert not entry.applies_to(principal(guid="mrom:obj:q"))


class TestCoversCombinedFlags:
    def test_data_covers_both_get_and_set(self):
        entry = AclEntry("*", Permission.DATA)
        assert entry.covers(Permission.GET)
        assert entry.covers(Permission.SET)
        assert not entry.covers(Permission.INVOKE)
        assert not entry.covers(Permission.META)

    def test_read_only_is_get_alone(self):
        entry = AclEntry("*", Permission.READ_ONLY)
        assert entry.covers(Permission.GET)
        assert not entry.covers(Permission.SET)

    def test_all_covers_every_flag(self):
        entry = AclEntry("*", Permission.ALL)
        for flag in (Permission.GET, Permission.SET,
                     Permission.INVOKE, Permission.META):
            assert entry.covers(flag)

    def test_none_covers_nothing(self):
        entry = AclEntry("*", Permission.NONE)
        assert not entry.covers(Permission.GET)
        assert not entry.covers(Permission.ALL)

    def test_covers_is_intersection_not_subset(self):
        # an INVOKE-only entry speaks about a DATA|INVOKE query
        entry = AclEntry("*", Permission.INVOKE)
        assert entry.covers(Permission.INVOKE | Permission.GET)


class TestDenyOverridesOrdering:
    def test_deny_after_allow_still_denies(self):
        acl = (AccessControlList()
               .grant("*", Permission.GET)
               .revoke("mrom:obj:p", Permission.GET))
        assert not acl.permits(principal(), Permission.GET)
        assert acl.permits(principal(guid="mrom:obj:q"), Permission.GET)

    def test_allow_after_deny_does_not_resurrect(self):
        acl = (AccessControlList()
               .revoke("mrom:obj:p", Permission.GET)
               .grant("mrom:obj:p", Permission.GET))
        assert not acl.permits(principal(), Permission.GET)

    def test_deny_is_per_permission(self):
        # denying SET leaves GET granted by the broad allow
        acl = (AccessControlList()
               .grant("*", Permission.DATA)
               .revoke("mrom:obj:p", Permission.SET))
        assert acl.permits(principal(), Permission.GET)
        assert not acl.permits(principal(), Permission.SET)

    def test_domain_deny_beats_principal_allow(self):
        acl = (AccessControlList()
               .grant("mrom:obj:p", Permission.ALL)
               .revoke("domain:technion", Permission.ALL))
        assert not acl.permits(principal(), Permission.INVOKE)

    def test_default_allow_is_overridden_by_deny(self):
        acl = AccessControlList(default_allow=True)
        assert acl.permits(principal(), Permission.GET)
        acl.revoke("*", Permission.GET)
        assert not acl.permits(principal(), Permission.GET)

    def test_default_deny_with_no_applicable_entry(self):
        acl = AccessControlList([AclEntry("mrom:obj:q", Permission.ALL)])
        assert not acl.permits(principal(), Permission.GET)

    def test_inapplicable_deny_is_ignored(self):
        acl = (AccessControlList()
               .grant("*", Permission.GET)
               .revoke("mrom:obj:q", Permission.GET))
        assert acl.permits(principal(), Permission.GET)

    def test_system_bypasses_even_explicit_deny(self):
        acl = AccessControlList([
            AclEntry("*", Permission.ALL, Decision.DENY),
        ])
        assert acl.permits(SYSTEM, Permission.META)

    def test_remove_subject_restores_access(self):
        acl = (AccessControlList()
               .grant("*", Permission.GET)
               .revoke("mrom:obj:p", Permission.GET))
        assert acl.remove_subject("mrom:obj:p") == 1
        assert acl.permits(principal(), Permission.GET)

    def test_describe_round_trip_preserves_ordering_semantics(self):
        acl = (AccessControlList()
               .grant("*", Permission.DATA)
               .revoke("domain:technion", Permission.SET))
        rebuilt = AccessControlList.from_description(acl.describe())
        for perm in (Permission.GET, Permission.SET):
            assert (rebuilt.permits(principal(), perm)
                    == acl.permits(principal(), perm))
        assert not rebuilt.permits(principal(), Permission.SET)
