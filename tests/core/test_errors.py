"""The exception hierarchy: containment and classification guarantees."""

import inspect

import pytest

import repro.core.errors as errors_module
from repro.core.errors import (
    AccessDeniedError,
    CoercionError,
    ItemNotFoundError,
    MROMError,
    NotPortableError,
    PostProcedureError,
    PreProcedureVeto,
    RemoteInvocationError,
    SandboxViolation,
    SecurityError,
)


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == errors_module.__name__
    ]


class TestHierarchy:
    def test_everything_derives_from_mrom_error(self):
        # the self-containment guarantee: one except clause contains the
        # whole model
        for cls in all_error_classes():
            assert issubclass(cls, MROMError), cls.__name__

    def test_item_not_found_is_a_key_error(self):
        assert issubclass(ItemNotFoundError, KeyError)

    def test_sandbox_violation_is_also_a_security_error(self):
        assert issubclass(SandboxViolation, SecurityError)

    def test_every_class_has_a_docstring(self):
        for cls in all_error_classes():
            assert cls.__doc__, f"{cls.__name__} lacks a docstring"


class TestErrorContext:
    def test_access_denied_carries_triple(self):
        err = AccessDeniedError("caller-1", "salary", "GET")
        assert (err.caller, err.item, err.permission) == ("caller-1", "salary", "GET")
        assert "salary" in str(err)

    def test_item_not_found_str_is_readable(self):
        err = ItemNotFoundError("ghost", "fixed")
        assert str(err) == "no item named 'ghost' (searched section: fixed)"

    def test_pre_veto_names_method(self):
        err = PreProcedureVeto("withdraw", reason="insufficient funds")
        assert err.method == "withdraw"
        assert "insufficient funds" in str(err)

    def test_post_error_keeps_result(self):
        err = PostProcedureError("compute", result=-1)
        assert err.result == -1

    def test_not_portable_lists_offenders(self):
        err = NotPortableError("mrom://x/1.1", ("native_op", "other"))
        assert err.offenders == ("native_op", "other")
        assert "native_op" in str(err)

    def test_coercion_error_context(self):
        err = CoercionError("abc", "integer", "no numeric content")
        assert err.value == "abc"
        assert err.target == "integer"

    def test_remote_error_carries_remote_type(self):
        err = RemoteInvocationError("boom", remote_type="ValueError")
        assert err.remote_type == "ValueError"

    def test_sandbox_violation_names_construct(self):
        err = SandboxViolation("Import", "line 3")
        assert err.construct == "Import"


def test_mrom_error_contains_a_whole_scenario():
    """A host wrapping guest interaction with one except MROMError sees
    every model-level failure, none of Python's own leak categories."""
    from repro.core import MROMObject

    obj = MROMObject()
    obj.define_fixed_method("m", "return args[0]", pre="return args[0] > 0")
    obj.seal()
    failures = 0
    for args in ([0], []):  # veto, then an IndexError inside the pre
        try:
            obj.invoke("m", args)
        except MROMError:
            failures += 1
        except IndexError:
            # guest-code bugs are NOT model errors: they surface as
            # themselves so hosts can distinguish "the model refused"
            # from "the guest crashed"
            failures += 10
    assert failures == 11
