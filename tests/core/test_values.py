"""Weak typing: kind classification and generic coercion."""

import math

import pytest

from repro.core import CoercionError, HtmlText, Kind, coerce, conforms, kind_of
from repro.core.errors import KindError
from repro.core.values import coerce_all, strip_html


class TestKindOf:
    def test_null(self):
        assert kind_of(None) is Kind.NULL

    def test_boolean_is_not_integer(self):
        assert kind_of(True) is Kind.BOOLEAN
        assert kind_of(1) is Kind.INTEGER

    def test_real(self):
        assert kind_of(3.25) is Kind.REAL

    def test_text_and_html_distinct(self):
        assert kind_of("plain") is Kind.TEXT
        assert kind_of(HtmlText("<b>bold</b>")) is Kind.HTML

    def test_binary(self):
        assert kind_of(b"\x00\x01") is Kind.BINARY
        assert kind_of(bytearray(b"x")) is Kind.BINARY

    def test_collections(self):
        assert kind_of([1, 2]) is Kind.LIST
        assert kind_of((1, 2)) is Kind.LIST
        assert kind_of({"a": 1}) is Kind.MAPPING

    def test_reference_via_guid_attribute(self):
        class Ref:
            guid = "mrom:obj:x"

        assert kind_of(Ref()) is Kind.REFERENCE

    def test_unclassifiable_raises(self):
        with pytest.raises(KindError):
            kind_of(object())


class TestConforms:
    def test_any_accepts_everything(self):
        assert conforms(42, Kind.ANY)
        assert conforms(None, Kind.ANY)

    def test_html_is_text(self):
        assert conforms(HtmlText("<i>x</i>"), Kind.TEXT)

    def test_text_is_not_html(self):
        assert not conforms("plain", Kind.HTML)

    def test_unclassifiable_conforms_nothing(self):
        assert not conforms(object(), Kind.TEXT)


class TestHtmlStripping:
    def test_tags_removed(self):
        assert strip_html("<p>hello <b>world</b></p>") == "hello world"

    def test_entities_decoded(self):
        assert strip_html("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_whitespace_normalised(self):
        assert strip_html("<div>\n  a\n\n  b </div>") == "a b"

    def test_visible_text_method(self):
        assert HtmlText("<td>42</td>").visible_text() == "42"


class TestCoerceInteger:
    def test_paper_example_html_to_integer(self):
        # the motivating example from Section 1
        assert coerce(HtmlText("<td><b>1200</b></td>"), Kind.INTEGER) == 1200

    def test_embedded_number_in_prose(self):
        assert coerce("salary: 1200 NIS", Kind.INTEGER) == 1200

    def test_negative_and_signed(self):
        assert coerce("-17", Kind.INTEGER) == -17
        assert coerce("+4", Kind.INTEGER) == 4

    def test_boolean_to_integer(self):
        assert coerce(True, Kind.INTEGER) == 1

    def test_whole_real_to_integer(self):
        assert coerce(5.0, Kind.INTEGER) == 5

    def test_fractional_real_rejected(self):
        with pytest.raises(CoercionError):
            coerce(5.5, Kind.INTEGER)

    def test_nan_rejected(self):
        with pytest.raises(CoercionError):
            coerce(float("nan"), Kind.INTEGER)

    def test_no_numeric_content_rejected(self):
        with pytest.raises(CoercionError):
            coerce("no numbers here", Kind.INTEGER)

    def test_html_without_number_rejected(self):
        with pytest.raises(CoercionError):
            coerce(HtmlText("<p>maintenance</p>"), Kind.INTEGER)


class TestCoerceReal:
    def test_text_with_exponent(self):
        assert coerce("1.5e3", Kind.REAL) == 1500.0

    def test_integer_widens(self):
        result = coerce(7, Kind.REAL)
        assert result == 7.0 and isinstance(result, float)

    def test_html_table_cell(self):
        assert math.isclose(coerce(HtmlText("<td>3.14</td>"), Kind.REAL), 3.14)


class TestCoerceBoolean:
    @pytest.mark.parametrize("word", ["true", "Yes", "ON", "1", "y"])
    def test_true_words(self, word):
        assert coerce(word, Kind.BOOLEAN) is True

    @pytest.mark.parametrize("word", ["false", "No", "off", "0", ""])
    def test_false_words(self, word):
        assert coerce(word, Kind.BOOLEAN) is False

    def test_numbers(self):
        assert coerce(0, Kind.BOOLEAN) is False
        assert coerce(2, Kind.BOOLEAN) is True

    def test_null_is_false(self):
        assert coerce(None, Kind.BOOLEAN) is False

    def test_ambiguous_word_rejected(self):
        with pytest.raises(CoercionError):
            coerce("maybe", Kind.BOOLEAN)


class TestCoerceTextHtmlBinary:
    def test_html_to_text_renders(self):
        assert coerce(HtmlText("<b>bold</b> move"), Kind.TEXT) == "bold move"

    def test_text_to_html_escapes(self):
        result = coerce("a < b", Kind.HTML)
        assert isinstance(result, HtmlText)
        assert "&lt;" in result

    def test_html_to_html_identity(self):
        original = HtmlText("<i>x</i>")
        assert coerce(original, Kind.HTML) is original

    def test_integer_to_text(self):
        assert coerce(42, Kind.TEXT) == "42"

    def test_binary_roundtrip_via_text(self):
        assert coerce("héllo", Kind.BINARY) == "héllo".encode("utf-8")
        assert coerce(b"h\xc3\xa9llo", Kind.TEXT) == "héllo"

    def test_list_to_text_rejected(self):
        with pytest.raises(CoercionError):
            coerce([1, 2], Kind.TEXT)


class TestCoerceCollections:
    def test_mapping_to_list_of_pairs(self):
        assert coerce({"a": 1}, Kind.LIST) == [["a", 1]]

    def test_pairs_to_mapping(self):
        assert coerce([["a", 1], ["b", 2]], Kind.MAPPING) == {"a": 1, "b": 2}

    def test_scalar_to_singleton_list(self):
        assert coerce(5, Kind.LIST) == [5]

    def test_null_to_empty_collections(self):
        assert coerce(None, Kind.LIST) == []
        assert coerce(None, Kind.MAPPING) == {}

    def test_non_pair_list_to_mapping_rejected(self):
        with pytest.raises(CoercionError):
            coerce([1, 2, 3], Kind.MAPPING)

    def test_scalar_to_mapping_rejected(self):
        with pytest.raises(CoercionError):
            coerce(5, Kind.MAPPING)


class TestCoerceEdges:
    def test_any_is_identity(self):
        marker = {"x": [1]}
        assert coerce(marker, Kind.ANY) is marker

    def test_null_target(self):
        assert coerce(None, Kind.NULL) is None
        with pytest.raises(CoercionError):
            coerce(0, Kind.NULL)

    def test_reference_passthrough_and_rejection(self):
        class Ref:
            guid = "g"

        ref = Ref()
        assert coerce(ref, Kind.REFERENCE) is ref
        with pytest.raises(CoercionError):
            coerce("not a ref", Kind.REFERENCE)

    def test_coerce_all_elementwise(self):
        assert coerce_all(["1", "2.5"], [Kind.INTEGER, Kind.REAL]) == [1, 2.5]

    def test_coerce_all_arity_mismatch(self):
        with pytest.raises(CoercionError):
            coerce_all(["1"], [Kind.INTEGER, Kind.REAL])
