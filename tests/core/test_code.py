"""Method-code carriers: native vs portable, roles, descriptions."""

import pytest

from repro.core import CodeRole, MethodCode, NativeCode, PortableCode, as_code
from repro.core.code import code_from_description
from repro.core.errors import (
    MobilityError,
    ProcedureSignatureError,
    SandboxViolation,
)


class TestNativeCode:
    def test_wraps_callable(self):
        code = NativeCode(lambda self, args, ctx: sum(args))
        assert code.call(None, [1, 2, 3], None) == 6
        assert not code.portable

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            NativeCode("not callable")

    def test_label_defaults_to_function_name(self):
        def my_body(self, args, ctx):
            return None

        assert NativeCode(my_body).label == "my_body"

    def test_describe_has_no_source(self):
        described = NativeCode(lambda *a: None, label="secret").describe()
        assert described == {"flavour": "native", "role": "body", "label": "secret"}


class TestPortableCode:
    def test_lazy_compilation(self):
        code = PortableCode("return args[0] * 2")
        assert code._compiled is None
        assert code.call(None, [21], None) == 42
        assert code._compiled is not None

    def test_compile_now_is_idempotent(self):
        code = PortableCode("return 1")
        code.compile_now()
        first = code._compiled
        code.compile_now()
        assert code._compiled is first

    def test_hostile_source_fails_at_compile(self):
        code = PortableCode("import os")
        with pytest.raises(SandboxViolation):
            code.compile_now()

    def test_post_role_gets_result_parameter(self):
        code = PortableCode("return result == 42", role=CodeRole.POST)
        assert code.call(None, [], 42, None) is True

    def test_bindings_and_rebind(self):
        code = PortableCode("return rate * args[0]", bindings={"rate": 2})
        assert code.call(None, [10], None) == 20
        code.rebind({"rate": 3})
        assert code.call(None, [10], None) == 30

    def test_requires_text(self):
        with pytest.raises(TypeError):
            PortableCode(lambda: None)

    def test_describe_carries_source(self):
        described = PortableCode("return 1", label="x").describe()
        assert described["flavour"] == "portable"
        assert described["source"] == "return 1"


class TestCallBoolean:
    def test_accepts_bools_only(self):
        ok = PortableCode("return True", role=CodeRole.PRE)
        assert ok.call_boolean(None, [], None) is True
        sneaky = PortableCode("return 1", role=CodeRole.PRE)
        with pytest.raises(ProcedureSignatureError):
            sneaky.call_boolean(None, [], None)

    def test_truthy_strings_rejected(self):
        code = PortableCode("return 'yes'", role=CodeRole.PRE)
        with pytest.raises(ProcedureSignatureError):
            code.call_boolean(None, [], None)


class TestAsCode:
    def test_none_passes_through(self):
        assert as_code(None) is None

    def test_string_becomes_portable(self):
        code = as_code("return 1")
        assert isinstance(code, PortableCode)

    def test_callable_becomes_native(self):
        code = as_code(lambda self, args, ctx: 1)
        assert isinstance(code, NativeCode)

    def test_carrier_passes_through(self):
        original = PortableCode("return 1", role=CodeRole.PRE)
        assert as_code(original, CodeRole.PRE) is original

    def test_role_mismatch_rejected(self):
        body = PortableCode("return 1", role=CodeRole.BODY)
        with pytest.raises(MobilityError):
            as_code(body, CodeRole.PRE)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_code(42)


class TestCodeFromDescription:
    def test_portable_round_trip(self):
        original = PortableCode("return 7", role=CodeRole.BODY, label="seven")
        rebuilt = code_from_description(original.describe())
        assert rebuilt.call(None, [], None) == 7
        assert rebuilt.label == "seven"

    def test_native_cannot_be_rebuilt(self):
        described = NativeCode(lambda *a: None).describe()
        with pytest.raises(MobilityError):
            code_from_description(described)

    def test_unknown_flavour_rejected(self):
        with pytest.raises(MobilityError):
            code_from_description({"flavour": "quantum"})


class TestRoles:
    def test_parameter_lists(self):
        assert CodeRole.BODY.parameters == ("self", "args", "ctx")
        assert CodeRole.PRE.parameters == ("self", "args", "ctx")
        assert CodeRole.POST.parameters == ("self", "args", "result", "ctx")
        assert CodeRole.META.parameters == ("self", "args", "ctx")

    def test_method_code_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MethodCode().call()
