"""Items: data items, methods, handles, descriptions."""

import pytest

from repro.core import (
    AccessDeniedError,
    DataItem,
    ItemContainer,
    ItemHandle,
    Kind,
    MROMMethod,
    Permission,
    Principal,
    StaleHandleError,
    allow_all,
    owner_only,
)
from repro.core.errors import CoercionError, KindError


@pytest.fixture
def reader():
    return Principal("mrom://x/1.1", "dom", "reader")


class TestDataItem:
    def test_value_access_with_acl(self, reader):
        item = DataItem("x", 5, acl=allow_all())
        assert item.get_value(reader) == 5
        item.set_value(reader, 6)
        assert item.peek() == 6

    def test_denied_access(self, reader):
        item = DataItem("x", 5, acl=owner_only(Principal("mrom://other/1.1")))
        with pytest.raises(AccessDeniedError):
            item.get_value(reader)
        with pytest.raises(AccessDeniedError):
            item.set_value(reader, 6)

    def test_declared_kind_coerces_on_write(self, reader):
        item = DataItem("n", "42", kind=Kind.INTEGER)
        assert item.peek() == 42
        item.set_value(reader, "17")
        assert item.peek() == 17

    def test_uncoercible_write_rejected(self, reader):
        item = DataItem("n", 0, kind=Kind.INTEGER)
        with pytest.raises(CoercionError):
            item.set_value(reader, "not a number")
        assert item.peek() == 0

    def test_poke_respects_kind(self):
        item = DataItem("n", 0, kind=Kind.INTEGER)
        item.poke("5")
        assert item.peek() == 5
        with pytest.raises(CoercionError):
            item.poke([1, 2])

    def test_set_kind_recoerces_current_value(self):
        item = DataItem("n", "123")
        item.set_kind(Kind.INTEGER)
        assert item.peek() == 123
        assert item.version == 2

    def test_set_kind_validates(self):
        with pytest.raises(KindError):
            DataItem("n", 0).set_kind("integer")  # must be a Kind, not str

    def test_describe(self):
        item = DataItem("n", 1, kind=Kind.INTEGER, metadata={"doc": "a number"})
        described = item.describe("fixed")
        assert described.name == "n"
        assert described.category == "data"
        assert described.section == "fixed"
        assert described.kind == "integer"
        assert described.metadata["doc"] == "a number"

    def test_rename_bumps_version(self):
        item = DataItem("old", 1)
        item.rename("new")
        assert item.name == "new"
        assert item.version == 2

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            DataItem("", 1)
        item = DataItem("ok", 1)
        with pytest.raises(ValueError):
            item.rename("")


class TestVisibility:
    def test_invisible_when_no_permission_at_all(self, reader):
        hidden = DataItem("x", 1, acl=owner_only(Principal("mrom://o/1.1")))
        assert not hidden.visible_to(reader)

    def test_visible_with_any_of_get_invoke_meta(self, reader):
        from repro.core import AccessControlList, AclEntry

        for permission in (Permission.GET, Permission.INVOKE, Permission.META):
            item = DataItem(
                "x", 1,
                acl=AccessControlList([AclEntry(reader.guid, permission)]),
            )
            assert item.visible_to(reader)

    def test_set_only_is_not_visibility(self, reader):
        from repro.core import AccessControlList, AclEntry

        item = DataItem(
            "x", 1, acl=AccessControlList([AclEntry(reader.guid, Permission.SET)])
        )
        assert not item.visible_to(reader)


class TestMROMMethod:
    def test_portability_depends_on_all_components(self):
        portable = MROMMethod("m", "return 1", pre="return True")
        assert portable.portable
        mixed = MROMMethod("m", "return 1", pre=lambda s, a, c: True)
        assert not mixed.portable

    def test_component_swaps_bump_version(self):
        method = MROMMethod("m", "return 1")
        method.set_pre("return True")
        method.set_post("return True")
        method.set_body("return 2")
        assert method.version == 4

    def test_body_is_mandatory(self):
        with pytest.raises(ValueError):
            MROMMethod("m", None)
        method = MROMMethod("m", "return 1")
        with pytest.raises(ValueError):
            method.set_body(None)

    def test_pack_components_round_trip(self):
        method = MROMMethod(
            "m", "return args[0]", pre="return True", post="return True",
            metadata={"doc": "d"},
        )
        rebuilt = MROMMethod.from_packed(
            "m", method.pack_components(), metadata=dict(method.metadata)
        )
        assert rebuilt.portable
        assert rebuilt.body.call(None, [9], None) == 9

    def test_describe_flags_wrappers(self):
        bare = MROMMethod("m", "return 1").describe("fixed")
        assert not bare.has_pre and not bare.has_post
        wrapped = MROMMethod(
            "m", "return 1", pre="return True", post="return True"
        ).describe("extensible")
        assert wrapped.has_pre and wrapped.has_post

    def test_verify_compiles_all_components(self):
        from repro.core import SandboxViolation

        method = MROMMethod("m", "return 1", pre="import os\nreturn True")
        with pytest.raises(SandboxViolation):
            method.verify()


class TestHandles:
    def test_valid_while_item_in_container(self):
        container = ItemContainer("c")
        item = DataItem("x", 1)
        container.add(item)
        handle = ItemHandle(item, container)
        assert handle.is_valid()
        assert handle.item is item

    def test_stale_after_removal(self):
        container = ItemContainer("c")
        item = DataItem("x", 1)
        container.add(item)
        handle = ItemHandle(item, container)
        container.remove("x")
        assert not handle.is_valid()
        with pytest.raises(StaleHandleError):
            handle.ensure_valid()

    def test_stale_after_replacement(self):
        container = ItemContainer("c")
        item = DataItem("x", 1)
        container.add(item)
        handle = ItemHandle(item, container)
        container.replace("x", DataItem("x", 2))
        assert not handle.is_valid()

    def test_survives_rename(self):
        container = ItemContainer("c")
        item = DataItem("x", 1)
        container.add(item)
        handle = ItemHandle(item, container)
        container.rename("x", "y")
        assert handle.is_valid()
        assert handle.name == "y"

    def test_token_carries_instance_nonce(self):
        container = ItemContainer("c")
        item = DataItem("x", 1)
        container.add(item)
        token = ItemHandle(item, container).token()
        assert token["__item_handle__"] is True
        assert token["nonce"] == item.nonce
        assert token["category"] == "data"

    def test_nonces_are_per_instance(self):
        assert DataItem("x", 1).nonce != DataItem("x", 1).nonce
