"""Regression tests for :class:`InvocationCache` accounting.

Two bugs fixed in the compile-tier PR are pinned here:

* ``sync()`` used to count the *cold* sync — aligning a fresh (or
  freshly migrated) cache with the live generation — as an
  invalidation, so every object was born with ``invalidations == 1``
  and the ``fastpath.invalidations`` telemetry overcounted by one per
  cache lifetime.
* ``reset()`` dropped the tables without counting anything, so
  migration-install resets were invisible in :meth:`stats`.

Both now funnel through one accounting helper: an invalidation is
counted exactly when non-empty tables were actually dropped.
"""

from __future__ import annotations

import pytest

from repro.core import MROMObject, Principal, allow_all
from repro.core.fastpath import InvocationCache

pytestmark = [pytest.mark.fastpath, pytest.mark.compile]

OWNER = Principal("mrom://cache/owner", "cache", "owner")


def warm(cache: InvocationCache) -> None:
    cache.lookup_table["m"] = (object(), "fixed")
    cache.match_table[("g", "d", "m")] = (object(), 1, object(), 1)


class TestSyncAccounting:
    def test_cold_sync_is_not_an_invalidation(self):
        cache = InvocationCache()
        assert not cache.sync(7), "cold sync drops nothing"
        assert cache.invalidations == 0
        assert cache.generation == 7

    def test_sync_same_generation_is_a_noop(self):
        cache = InvocationCache()
        cache.sync(3)
        warm(cache)
        assert not cache.sync(3)
        assert cache.entries == 2
        assert cache.invalidations == 0

    def test_sync_counts_only_drops_of_nonempty_tables(self):
        cache = InvocationCache()
        cache.sync(1)
        warm(cache)
        assert cache.sync(2), "a warm cache crossing a generation drops"
        assert cache.invalidations == 1
        assert cache.entries == 0
        # the generation moving again over empty tables is silent
        assert not cache.sync(3)
        assert cache.invalidations == 1

    def test_sync_drop_counts_compiled_discards(self):
        cache = InvocationCache()
        cache.sync(1)
        warm(cache)
        cache.store_compiled(("g", "d", "m"), lambda caller, args: None)
        cache.sync(2)
        assert cache.compiled_entries == 0
        assert cache.compiled_discards == 1
        assert cache.invalidations == 1


class TestResetAccounting:
    def test_reset_counts_exactly_like_sync(self):
        cache = InvocationCache()
        cache.sync(1)
        warm(cache)
        assert cache.reset(), "a warm reset drops and counts"
        assert cache.invalidations == 1
        assert cache.generation == InvocationCache._COLD
        assert not cache.reset(), "a cold reset is silent"
        assert cache.invalidations == 1

    def test_reset_discards_compiled_closures(self):
        cache = InvocationCache()
        cache.sync(1)
        cache.store_compiled(("g", "d", "m"), lambda caller, args: None)
        assert cache.reset()
        assert cache.compiled_entries == 0
        assert cache.compiled_discards == 1


class TestCompiledTableBounds:
    def test_store_evicts_oldest_at_cap(self):
        cache = InvocationCache()
        for index in range(cache.COMPILED_CAP + 3):
            cache.store_compiled(("g", "d", f"m{index}"), lambda c, a: index)
        assert cache.compiled_entries == cache.COMPILED_CAP
        assert cache.compiled_discards == 3
        assert ("g", "d", "m0") not in cache.compiled, "oldest evicted first"
        assert ("g", "d", f"m{cache.COMPILED_CAP + 2}") in cache.compiled

    def test_discard_is_idempotent(self):
        cache = InvocationCache()
        cache.store_compiled(("g", "d", "m"), lambda c, a: None)
        cache.discard_compiled(("g", "d", "m"))
        cache.discard_compiled(("g", "d", "m"))
        assert cache.compiled_discards == 1

    def test_disable_discards_and_counts(self):
        cache = InvocationCache()
        cache.store_compiled(("g", "d", "m"), lambda c, a: None)
        cache.set_compiled(False)
        assert not cache.compile_enabled
        assert cache.compiled_entries == 0
        assert cache.compiled_discards == 1

    def test_accounting_stays_closed(self):
        """Every closure ever stored is live or counted discarded."""
        cache = InvocationCache()
        for index in range(10):
            cache.store_compiled(("g", "d", f"m{index}"), lambda c, a: None)
        cache.discard_compiled(("g", "d", "m4"))
        cache.sync(1)  # aligns cold; tables hold closures -> drop
        assert cache.compiled_entries == cache.compiles - cache.compiled_discards


def build_subject() -> MROMObject:
    obj = MROMObject(
        display_name="subject", owner=OWNER, meta_acl=allow_all(),
    )
    obj.define_fixed_data("base", 10)
    obj.define_fixed_method("get_base", "return self.get('base')")
    obj.seal()
    return obj


class TestLiveObjectAccounting:
    def test_fresh_object_first_invoke_counts_no_invalidation(self):
        """The headline regression: invoking a fresh object cold-syncs
        the cache, which must not register as an invalidation."""
        obj = build_subject()
        assert obj.invoke("get_base", caller=OWNER) == 10
        assert obj.fastpath.invalidations == 0

    def test_mutation_counts_exactly_one_invalidation(self):
        obj = build_subject()
        obj.invoke("get_base", caller=OWNER)  # warm
        obj.invoke("addDataItem", ["scratch", 1], caller=OWNER)
        obj.invoke("get_base", caller=OWNER)  # drops at sync
        assert obj.fastpath.invalidations == 1

    def test_fastpath_reset_counts_when_warm_only(self):
        obj = build_subject()
        obj.fastpath_reset()  # cold: nothing to drop
        assert obj.fastpath.invalidations == 0
        obj.invoke("get_base", caller=OWNER)
        obj.fastpath_reset()
        assert obj.fastpath.invalidations == 1
