"""Self-representation: interrogating a newcomer object."""

import pytest

from repro.core import (
    MROMObject,
    SYSTEM,
    allow_all,
    can_invoke,
    describe,
    find_methods,
    interrogate,
    owner_only,
)

from ..conftest import build_counter


@pytest.fixture
def newcomer(alice):
    """An object arriving at a host that knows nothing about it."""
    obj = MROMObject(display_name="newcomer", owner=alice, domain="technion.ee")
    obj.define_fixed_data("payload", {"rows": 3})
    obj.define_fixed_method(
        "query",
        "return self.get('payload')",
        metadata={
            "doc": "Run a query against the payload.",
            "params": [{"name": "filter", "kind": "text"}],
            "returns": "mapping",
            "tags": ["service", "query"],
        },
    )
    obj.define_fixed_method(
        "internal",
        "return 'secret'",
        acl=owner_only(alice),
        metadata={"tags": ["internal"]},
    )
    obj.seal()
    return obj


class TestDescribe:
    def test_anonymous_viewer_sees_public_items_only(self, newcomer):
        description = describe(newcomer)
        names = description.names()
        assert "query" in names
        assert "payload" in names
        # owner-only items are invisible: encapsulation IS security
        assert "internal" not in names
        # the owner-only meta-methods are invisible too
        assert "addDataItem" not in names

    def test_owner_sees_guarded_items(self, newcomer, alice):
        names = describe(newcomer, viewer=alice).names()
        assert "internal" in names
        assert "addDataItem" in names

    def test_system_sees_everything(self, newcomer):
        description = describe(newcomer, viewer=SYSTEM)
        assert "internal" in description.names()

    def test_description_carries_identity(self, newcomer):
        description = describe(newcomer)
        assert description.guid == newcomer.guid
        assert description.display_name == "newcomer"
        assert description.domain == "technion.ee"

    def test_description_marshals_to_mapping(self, newcomer):
        mapping = describe(newcomer).to_mapping()
        assert mapping["guid"] == newcomer.guid
        assert all(isinstance(item, dict) for item in mapping["items"])

    def test_categories_split(self, newcomer, alice):
        description = describe(newcomer, viewer=alice)
        data_names = [d.name for d in description.data_items()]
        method_names = [d.name for d in description.methods()]
        assert "payload" in data_names
        assert "query" in method_names
        assert "payload" not in method_names

    def test_tower_levels_described(self, alice):
        obj = build_counter(owner=alice, extensible_meta=True, meta_acl=allow_all())
        obj.invoke(
            "addMethod",
            ["invoke", "return ctx.proceed()", {"acl": allow_all().describe()}],
            caller=alice,
        )
        description = describe(obj, viewer=alice)
        assert description.tower_depth == 1
        assert "invoke@level1" in description.names()


class TestInterrogate:
    def test_signature_hints_surface(self, newcomer):
        protocol = interrogate(newcomer)
        assert protocol["query"]["doc"].startswith("Run a query")
        assert protocol["query"]["params"][0]["name"] == "filter"
        assert protocol["query"]["returns"] == "mapping"

    def test_only_invocable_methods_listed(self, newcomer, bob):
        protocol = interrogate(newcomer, viewer=bob)
        assert "query" in protocol
        assert "internal" not in protocol

    def test_decide_whether_and_how_to_invoke(self, newcomer, bob):
        # the full newcomer protocol: interrogate, decide, invoke
        protocol = interrogate(newcomer, viewer=bob)
        assert can_invoke(newcomer, bob, "query")
        result = newcomer.invoke("query", [], caller=bob)
        assert result == {"rows": 3}
        assert protocol["query"]["returns"] == "mapping"

    def test_meta_flag_identifies_meta_methods(self, newcomer, alice):
        protocol = interrogate(newcomer, viewer=alice)
        assert protocol["addDataItem"]["meta"] is True
        assert protocol["query"]["meta"] is False


class TestCanInvoke:
    def test_missing_method(self, newcomer, bob):
        assert not can_invoke(newcomer, bob, "no-such-method")

    def test_denied_method(self, newcomer, bob):
        assert not can_invoke(newcomer, bob, "internal")

    def test_owner_allowed(self, newcomer, alice):
        assert can_invoke(newcomer, alice, "internal")

    def test_no_side_effects(self, newcomer, bob):
        before = newcomer.last_record
        can_invoke(newcomer, bob, "query")
        assert newcomer.last_record is before


class TestFindMethods:
    def test_find_by_tag(self, newcomer, bob):
        assert find_methods(newcomer, bob, tags=["query"]) == ["query"]

    def test_all_tags_must_match(self, newcomer, bob):
        assert find_methods(newcomer, bob, tags=["query", "missing-tag"]) == []

    def test_invisible_methods_not_found(self, newcomer, bob):
        assert find_methods(newcomer, bob, tags=["internal"]) == []

    def test_no_tags_returns_everything_visible(self, newcomer, bob):
        names = find_methods(newcomer, bob)
        assert "query" in names
