"""Rolling Ambassador updates: revisions, ordering, rollback, isolation."""

import pytest

from repro.apps import sample_database
from repro.core.errors import MROMError
from repro.hadas import IOO
from repro.hadas.update import (
    FleetUpdater,
    InterfaceRevision,
    REVISION_ITEM,
)
from repro.net import Network, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def fleet():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    paris = Site(network, "paris", "inria.fr")
    network.topology.connect("haifa", "boston", *WAN)
    network.topology.connect("haifa", "paris", *WAN)
    ioos = {name: IOO(site) for name, site in
            (("haifa", haifa), ("boston", boston), ("paris", paris))}
    db = sample_database()
    apo = ioos["haifa"].integrate(
        "employees", db, operations={"headcount": db.headcount}
    )
    for city in ("boston", "paris"):
        ioos[city].link("haifa")
        ioos[city].import_apo("haifa", "employees")
    return network, ioos, apo


class TestRevisionValidation:
    def test_revision_numbers_start_at_one(self):
        with pytest.raises(MROMError):
            InterfaceRevision(0)

    def test_add_replace_overlap_rejected(self):
        with pytest.raises(MROMError):
            InterfaceRevision(
                1, add_methods={"x": "return 1"},
                replace_methods={"x": "return 2"},
            )


class TestRollout:
    def test_first_revision_applies_everywhere(self, fleet):
        _network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        report = updater.rollout(
            InterfaceRevision(
                1,
                add_methods={"motd": "return self.get('motd_text')"},
                add_data={"motd_text": "welcome to r1"},
            )
        )
        assert report.clean
        assert len(report.updated) == 2
        for city in ("boston", "paris"):
            amb = ioos[city].imported("employees")
            assert amb.invoke("motd") == "welcome to r1"
            assert amb.get_data(REVISION_ITEM, caller=apo.principal) == 1

    def test_replace_and_remove(self, fleet):
        _network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        updater.rollout(
            InterfaceRevision(1, add_methods={"motd": "return 'r1'"})
        )
        updater.rollout(
            InterfaceRevision(
                2,
                replace_methods={"motd": "return 'r2'"},
                add_data={"extra": 1},
            )
        )
        report = updater.rollout(
            InterfaceRevision(3, remove_methods=("motd",), remove_data=("extra",))
        )
        assert report.clean
        amb = ioos["boston"].imported("employees")
        with pytest.raises(MROMError):
            amb.invoke("motd")
        assert updater.revision_of(apo.deployed[amb.guid]) == 3

    def test_idempotent_rollout_skips(self, fleet):
        _network, _ioos, apo = fleet
        updater = FleetUpdater(apo)
        revision = InterfaceRevision(1, add_methods={"motd": "return 'r1'"})
        updater.rollout(revision)
        second = updater.rollout(revision)
        assert second.updated == []
        assert len(second.skipped) == 2
        assert all("already at r1" in why for _guid, why in second.skipped)

    def test_out_of_order_revision_skipped(self, fleet):
        _network, _ioos, apo = fleet
        updater = FleetUpdater(apo)
        report = updater.rollout(
            InterfaceRevision(2, add_methods={"x": "return 1"})
        )
        assert report.updated == []
        assert all("needs r1 first" in why for _guid, why in report.skipped)


class TestRollback:
    def test_failed_revision_rolls_back_cleanly(self, fleet):
        _network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        updater.rollout(InterfaceRevision(1, add_methods={"motd": "return 'r1'"}))
        # r2 adds one good method, then fails on hostile source (the
        # sandbox rejects it at install time on the remote side)
        report = updater.rollout(
            InterfaceRevision(
                2,
                add_methods={
                    "good": "return 'fine'",
                    "hostile": "import os\nreturn 1",
                },
            )
        )
        assert len(report.failed) == 2
        for city in ("boston", "paris"):
            amb = ioos[city].imported("employees")
            # the good method was compensated away; revision unchanged
            assert not amb.containers.has_method("hostile")
            assert not amb.containers.has_method("good")
            assert amb.invoke("motd") == "r1"
            assert updater.revision_of(apo.deployed[amb.guid]) == 1

    def test_replace_rolls_back_to_old_body(self, fleet):
        _network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        updater.rollout(InterfaceRevision(1, add_methods={"motd": "return 'r1'"}))
        report = updater.rollout(
            InterfaceRevision(
                2,
                replace_methods={"motd": "return 'r2'"},
                add_methods={"hostile": "import os"},
            )
        )
        assert not report.clean
        amb = ioos["boston"].imported("employees")
        assert amb.invoke("motd") == "r1"

    def test_retry_after_fix_converges(self, fleet):
        _network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        updater.rollout(InterfaceRevision(1, add_methods={"motd": "return 'r1'"}))
        updater.rollout(
            InterfaceRevision(2, add_methods={"bad": "import os"})
        )
        fixed = updater.rollout(
            InterfaceRevision(2, add_methods={"bad": "return 'now fine'"})
        )
        assert fixed.clean and len(fixed.updated) == 2
        assert ioos["paris"].imported("employees").invoke("bad") == "now fine"


class TestPartitionIsolation:
    def test_unreachable_ambassador_does_not_block_fleet(self, fleet):
        network, ioos, apo = fleet
        updater = FleetUpdater(apo)
        network.topology.partition({"paris"}, {"haifa", "boston"})
        report = updater.rollout(
            InterfaceRevision(1, add_methods={"motd": "return 'r1'"})
        )
        assert len(report.updated) == 1
        assert len(report.failed) == 1
        assert ioos["boston"].imported("employees").invoke("motd") == "r1"
        # after healing, the same rollout converges the straggler
        network.topology.heal()
        retry = updater.rollout(
            InterfaceRevision(1, add_methods={"motd": "return 'r1'"})
        )
        assert len(retry.updated) == 1
        assert len(retry.skipped) == 1
        assert ioos["paris"].imported("employees").invoke("motd") == "r1"
