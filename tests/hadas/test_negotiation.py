"""Interface negotiation: adjusting newcomers to host expectations."""

import pytest

from repro.core import MROMObject, Principal, owner_only
from repro.core.errors import PolicyViolationError
from repro.hadas import InterfaceRequirement, negotiate


@pytest.fixture
def owner():
    return Principal("mrom://origin/1.1", "technion.ee", "origin")


@pytest.fixture
def host():
    return Principal("mrom://host/1.1", "host.dom", "host")


@pytest.fixture
def newcomer(owner):
    """An object whose interface almost matches the host's expectations."""
    obj = MROMObject(display_name="newcomer", owner=owner, extensible_meta=True)
    obj.define_fixed_method(
        "run_query",
        "return {'rows': args[0]}",
        metadata={"tags": ["query", "service"],
                  "params": [{"name": "filter", "kind": "text"}]},
    )
    obj.define_fixed_method(
        "shutdown",
        "return 'bye'",
        acl=owner_only(owner),  # invisible to the host
        metadata={"tags": ["admin"]},
    )
    obj.seal()
    return obj


class TestNegotiate:
    def test_exact_name_match_satisfies(self, newcomer, host, owner):
        report = negotiate(
            newcomer, [InterfaceRequirement("run_query", arity=1)], host, owner
        )
        assert report.satisfied == ["run_query"]
        assert report.complete

    def test_tag_match_adds_alias_adapter(self, newcomer, host, owner):
        report = negotiate(
            newcomer,
            [InterfaceRequirement("query", arity=1, tags=("query",))],
            host,
            owner,
        )
        assert report.adapted == {"query": "run_query"}
        # the adapter is a real extensible method that forwards
        assert newcomer.invoke("query", ["x"], caller=host) == {"rows": "x"}
        _method, section = newcomer.containers.lookup_method("query")
        assert section == "extensible"

    def test_unsatisfiable_reported(self, newcomer, host, owner):
        report = negotiate(
            newcomer,
            [InterfaceRequirement("transmogrify", tags=("magic",))],
            host,
            owner,
        )
        assert report.unsatisfiable == ["transmogrify"]
        assert not report.complete

    def test_strict_mode_raises(self, newcomer, host, owner):
        with pytest.raises(PolicyViolationError):
            negotiate(
                newcomer,
                [InterfaceRequirement("transmogrify")],
                host,
                owner,
                strict=True,
            )

    def test_invisible_methods_do_not_count(self, newcomer, host, owner):
        # 'shutdown' exists but the host may not invoke it: a requirement
        # for it is unsatisfiable from the host's point of view
        report = negotiate(
            newcomer, [InterfaceRequirement("shutdown")], host, owner
        )
        assert report.unsatisfiable == ["shutdown"]

    def test_updater_must_be_admitted(self, newcomer, host, mallory):
        from repro.core.errors import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            negotiate(
                newcomer,
                [InterfaceRequirement("query", tags=("query",))],
                host,
                updater=mallory,
            )

    def test_adapters_are_honest_and_removable(self, newcomer, host, owner):
        negotiate(
            newcomer,
            [InterfaceRequirement("query", tags=("query",))],
            host,
            owner,
        )
        from repro.core.introspection import interrogate

        signature = interrogate(newcomer, viewer=host)["query"]
        assert "adapter" in signature["tags"]
        newcomer.invoke("deleteMethod", ["query"], caller=owner)
        assert not newcomer.containers.has_method("query")

    def test_mixed_report_summary(self, newcomer, host, owner):
        report = negotiate(
            newcomer,
            [
                InterfaceRequirement("run_query", arity=1),
                InterfaceRequirement("query", tags=("query",)),
                InterfaceRequirement("missing"),
            ],
            host,
            owner,
        )
        summary = report.summary()
        assert "satisfied: run_query" in summary
        assert "query->run_query" in summary
        assert "unsatisfiable: missing" in summary

    def test_arity_mismatch_of_declared_params(self, host, owner):
        obj = MROMObject(owner=owner, extensible_meta=True)
        obj.define_fixed_method(
            "fetch",
            "return args",
            metadata={"params": [{"name": "a"}, {"name": "b"}],
                      "tags": ["query"]},
        )
        obj.seal()
        report = negotiate(
            obj, [InterfaceRequirement("query", arity=1, tags=("query",))],
            host, owner,
        )
        assert report.unsatisfiable == ["query"]
