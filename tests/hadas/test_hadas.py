"""HADAS: IOOs, APOs, Link, Import/Export, Ambassadors, programs."""

import pytest

from repro.apps import Calculator, sample_database
from repro.core.errors import (
    AccessDeniedError,
    PolicyViolationError,
    RemoteInvocationError,
)
from repro.hadas import APO, IOO, LinkError
from repro.net import Network, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    paris = Site(network, "paris", "inria.fr")
    network.topology.connect("haifa", "boston", *WAN)
    network.topology.connect("haifa", "paris", *WAN)
    network.topology.connect("boston", "paris", *WAN)
    ioos = {
        "haifa": IOO(haifa),
        "boston": IOO(boston),
        "paris": IOO(paris),
    }
    return network, ioos


@pytest.fixture
def db_world(world):
    network, ioos = world
    db = sample_database()
    apo = ioos["haifa"].integrate(
        "employees",
        db,
        operations={
            "salary_of": db.salary_of,
            "headcount": db.headcount,
            "payroll_total": db.payroll_total,
            "departments": db.departments,
        },
    )
    return network, ioos, db, apo


class TestIntegration:
    def test_apo_in_home(self, db_world):
        _network, ioos, _db, apo = db_world
        assert ioos["haifa"].apo("employees") is apo
        assert sorted(apo.operations()) == [
            "departments", "headcount", "payroll_total", "salary_of",
        ]

    def test_local_invocation(self, db_world):
        _network, _ioos, _db, apo = db_world
        assert apo.invoke("salary_of", ["dana"]) == 7200

    def test_duplicate_integration_rejected(self, db_world):
        _network, ioos, db, _apo = db_world
        with pytest.raises(Exception):
            ioos["haifa"].integrate("employees", db)

    def test_interrogation_of_apo_facade(self, db_world):
        _network, ioos, _db, apo = db_world
        from repro.core.introspection import interrogate

        protocol = interrogate(apo.facade)
        assert "salary_of" in protocol
        assert protocol["salary_of"]["tags"] == ["service"]


class TestLink:
    def test_link_installs_peer_ambassador(self, world):
        _network, ioos = world
        entry = ioos["boston"].link("haifa")
        assert entry.site == "haifa"
        assert entry.ambassador.invoke("info") == {
            "site": "haifa", "domain": "technion.ee",
        }
        assert ioos["boston"].linked_sites() == ("haifa",)

    def test_link_is_idempotent(self, world):
        _network, ioos = world
        first = ioos["boston"].link("haifa")
        second = ioos["boston"].link("haifa")
        assert first is second

    def test_link_is_directional(self, world):
        _network, ioos = world
        ioos["boston"].link("haifa")
        assert ioos["haifa"].linked_sites() == ()

    def test_link_policy(self, world):
        network, _ioos = world
        closed_site = Site(network, "closed", "private.corp")
        network.topology.connect("closed", "boston", *WAN)
        IOO(closed_site, accept_links_from=("friendly",))
        with pytest.raises(RemoteInvocationError) as excinfo:
            _ioos["boston"].site.request(
                "closed", "hadas.link",
                {"from_site": "boston", "from_domain": "mit.lcs"},
            )
        assert excinfo.value.remote_type == "PolicyViolationError"

    def test_ambassador_in_vicinity_reaches_origin_ioo(self, world):
        _network, ioos = world
        entry = ioos["boston"].link("haifa")
        origin = entry.ambassador.get_data(
            "origin", caller=ioos["boston"].site.principal
        )
        assert origin.guid == ioos["haifa"].obj.guid


class TestImportExport:
    def test_import_requires_link(self, db_world):
        _network, ioos, _db, _apo = db_world
        with pytest.raises(LinkError):
            ioos["boston"].import_apo("haifa", "employees")

    def test_import_installs_ambassador(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        assert amb.invoke("whoami")["hosted_by"] == "boston"
        assert ioos["boston"].imported("employees") is amb

    def test_forwarding_reaches_the_real_application(self, db_world):
        _network, ioos, db, _apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        before = db.queries_served
        assert amb.invoke("salary_of", ["noa"]) == 5600
        assert db.queries_served == before + 1

    def test_unknown_apo(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        with pytest.raises(RemoteInvocationError) as excinfo:
            ioos["boston"].import_apo("haifa", "nothing")
        assert excinfo.value.remote_type == "ExportError"

    def test_export_access_control(self, world):
        _network, ioos = world
        db = sample_database()
        ioos["haifa"].integrate(
            "secret-db", db,
            operations={"headcount": db.headcount},
            allowed_importers=("paris",),
        )
        ioos["paris"].link("haifa")
        ioos["boston"].link("haifa")
        ioos["paris"].import_apo("haifa", "secret-db")
        with pytest.raises(RemoteInvocationError) as excinfo:
            ioos["boston"].import_apo("haifa", "secret-db")
        assert excinfo.value.remote_type == "PolicyViolationError"

    def test_partial_interface_import(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo(
            "haifa", "employees", forward=["headcount"]
        )
        assert amb.invoke("headcount") == 8
        assert not amb.containers.has_method("salary_of")

    def test_origin_remembers_deployments(self, db_world):
        _network, ioos, _db, apo = db_world
        ioos["boston"].link("haifa")
        ioos["paris"].link("haifa")
        ioos["boston"].import_apo("haifa", "employees")
        ioos["paris"].import_apo("haifa", "employees")
        assert len(apo.deployed) == 2

    def test_import_name_collision(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        ioos["boston"].import_apo("haifa", "employees")
        with pytest.raises(Exception):
            ioos["boston"].import_apo("haifa", "employees")


class TestAmbassadorDuality:
    """The security/encapsulation duality between host IOO and guest."""

    def test_host_cannot_touch_guest_meta_methods(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        host = ioos["boston"].site.principal
        with pytest.raises(AccessDeniedError):
            amb.invoke("addMethod", ["evil", "return 1"], caller=host)
        with pytest.raises(AccessDeniedError):
            amb.invoke("deleteMethod", ["salary_of"], caller=host)

    def test_guest_meta_methods_invisible_to_host(self, db_world):
        from repro.core.introspection import describe

        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        names = describe(amb, viewer=ioos["boston"].site.principal).names()
        assert "salary_of" in names
        assert "addMethod" not in names

    def test_origin_can_update_deployed_ambassador(self, db_world):
        _network, ioos, _db, apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        apo.broadcast_add_method(
            "greeting", "return 'shalom from ' + self.get('origin_apo')"
        )
        assert amb.invoke("greeting") == "shalom from employees"


class TestMaintenanceScenario:
    """Section 5's database shutdown example, end to end."""

    def test_queries_get_notice_then_recover(self, db_world):
        _network, ioos, _db, apo = db_world
        for city in ("boston", "paris"):
            ioos[city].link("haifa")
            ioos[city].import_apo("haifa", "employees")
        notice = "database is down for maintenance"
        assert apo.broadcast_maintenance(notice) == 2
        for city in ("boston", "paris"):
            amb = ioos[city].imported("employees")
            assert amb.invoke("salary_of", ["moshe"]) == notice
            assert amb.invoke("headcount") == notice
        apo.broadcast_lift_maintenance()
        for city in ("boston", "paris"):
            amb = ioos[city].imported("employees")
            assert amb.invoke("salary_of", ["moshe"]) == 4500

    def test_origin_passes_through_during_maintenance(self, db_world):
        _network, ioos, _db, apo = db_world
        ioos["boston"].link("haifa")
        amb = ioos["boston"].import_apo("haifa", "employees")
        apo.broadcast_maintenance("down")
        # the owner (origin APO) still reaches the real methods
        assert amb.invoke("headcount", caller=apo.principal) == 8


class TestInteropPrograms:
    def test_program_coordinates_imports(self, db_world):
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        ioos["boston"].import_apo("haifa", "employees")
        ioos["boston"].add_program(
            "avg_salary",
            "db = self.get('imports')['employees']\n"
            "return db.invoke('payroll_total', []) / db.invoke('headcount', [])",
        )
        assert ioos["boston"].run_program("avg_salary") == pytest.approx(5150.0)
        assert ioos["boston"].programs() == ["avg_salary"]

    def test_program_spanning_two_imports(self, world):
        network, ioos = world
        db = sample_database()
        calc = Calculator()
        ioos["haifa"].integrate(
            "employees", db, operations={"payroll_total": db.payroll_total}
        )
        ioos["paris"].integrate(
            "calc", calc, operations={"evaluate": calc.evaluate}
        )
        ioos["boston"].link("haifa")
        ioos["boston"].link("paris")
        ioos["boston"].import_apo("haifa", "employees")
        ioos["boston"].import_apo("paris", "calc")
        ioos["boston"].add_program(
            "taxed_payroll",
            "db = self.get('imports')['employees']\n"
            "calc = self.get('imports')['calc']\n"
            "total = db.invoke('payroll_total', [])\n"
            "return calc.invoke('evaluate', [str(total) + ' * 2'])",
        )
        assert ioos["boston"].run_program("taxed_payroll") == 41200 * 2

    def test_programs_invocable_remotely(self, db_world):
        # multi-site InterOperability Programs: another IOO can run them
        _network, ioos, _db, _apo = db_world
        ioos["boston"].link("haifa")
        ioos["boston"].import_apo("haifa", "employees")
        ioos["boston"].add_program(
            "headcount_program",
            "return self.get('imports')['employees'].invoke('headcount', [])",
        )
        ref = ioos["paris"].site.ref_to(
            ioos["boston"].obj.guid, site="boston"
        )
        assert ref.invoke("headcount_program") == 8
