"""Mediation: coercing the invocation boundary."""

import pytest

from repro.core import (
    HtmlText,
    Kind,
    MROMObject,
    PreProcedureVeto,
    Principal,
    allow_all,
)
from repro.hadas.mediation import (
    attach_argument_mediator,
    attach_result_mediator,
    mediate_import,
)


@pytest.fixture
def owner():
    return Principal("mrom://x/1.1", "dom", "owner")


@pytest.fixture
def service(owner):
    """An extensible service whose operation expects clean typed args."""
    obj = MROMObject(display_name="svc", owner=owner, extensible_meta=True)
    obj.seal()
    view = obj.self_view()
    view.add_method(
        "raise_salary",
        # body assumes (text name, integer amount)
        "return {'name': args[0], 'new_salary': 4000 + args[1]}",
        {"acl": allow_all().describe()},
    )
    view.add_method("payroll", "return '41200'", {"acl": allow_all().describe()})
    return obj


class TestArgumentMediation:
    def test_html_argument_coerced(self, service, owner):
        attach_argument_mediator(
            service, "raise_salary", [Kind.TEXT, Kind.INTEGER], updater=owner
        )
        result = service.invoke(
            "raise_salary",
            ["moshe", HtmlText("<td><b>500</b></td>")],
        )
        assert result == {"name": "moshe", "new_salary": 4500}

    def test_text_number_coerced(self, service, owner):
        attach_argument_mediator(
            service, "raise_salary", [Kind.TEXT, Kind.INTEGER], updater=owner
        )
        assert service.invoke("raise_salary", ["dana", "250"])["new_salary"] == 4250

    def test_uncoercible_argument_vetoes(self, service, owner):
        attach_argument_mediator(
            service, "raise_salary", [Kind.TEXT, Kind.INTEGER], updater=owner
        )
        with pytest.raises(PreProcedureVeto):
            service.invoke("raise_salary", ["moshe", "not a number"])

    def test_extra_arguments_pass_through(self, service, owner):
        attach_argument_mediator(
            service, "raise_salary", [Kind.TEXT], updater=owner
        )
        result = service.invoke("raise_salary", [123, 500])
        assert result["name"] == "123"  # coerced to text
        assert result["new_salary"] == 4500  # untouched

    def test_pad_missing(self, service, owner):
        service.self_view().add_method(
            "arity_probe", "return len(args)", {"acl": allow_all().describe()}
        )
        attach_argument_mediator(
            service, "arity_probe", [Kind.ANY, Kind.ANY, Kind.ANY],
            updater=owner, pad_missing=True,
        )
        assert service.invoke("arity_probe", [1]) == 3


class TestResultMediation:
    def test_textual_result_presented_as_integer(self, service, owner):
        attach_result_mediator(service, "payroll", Kind.INTEGER, updater=owner)
        assert service.invoke("payroll") == 41200

    def test_original_body_parked_not_lost(self, service, owner):
        attach_result_mediator(service, "payroll", Kind.INTEGER, updater=owner)
        assert service.invoke("payroll__unmediated", caller=owner) == "41200"

    def test_mediated_method_is_no_longer_portable(self, service, owner):
        # mediators are host-side native code: they stay behind on migration
        from repro.mobility import portability_report

        attach_result_mediator(service, "payroll", Kind.INTEGER, updater=owner)
        assert "payroll" in portability_report(service)


class TestBulkMediation:
    def test_mediate_import(self, service, owner):
        mediated = mediate_import(
            service,
            {
                "raise_salary": {"params": [Kind.TEXT, Kind.INTEGER]},
                "payroll": {"returns": Kind.INTEGER},
            },
            updater=owner,
        )
        assert sorted(mediated) == ["payroll", "raise_salary"]
        assert service.invoke(
            "raise_salary", ["a", HtmlText("<i>100</i>")]
        )["new_salary"] == 4100
        assert service.invoke("payroll") == 41200


class TestSecurity:
    def test_stranger_cannot_attach_mediators(self, service, mallory):
        from repro.core import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            attach_argument_mediator(
                service, "raise_salary", [Kind.TEXT], updater=mallory
            )
