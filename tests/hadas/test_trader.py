"""Federated service discovery over linked IOOs."""

import pytest

from repro.apps import Calculator, sample_database
from repro.core.errors import MROMError
from repro.hadas import IOO
from repro.hadas.trader import ServiceOffer, Trader
from repro.net import Network, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def market():
    network = Network(Simulator())
    sites = {
        name: Site(network, name, f"dom.{name}")
        for name in ("client", "data", "math")
    }
    network.topology.connect("client", "data", *WAN)
    network.topology.connect("client", "math", *WAN)
    ioos = {name: IOO(site) for name, site in sites.items()}
    traders = {name: Trader(ioo) for name, ioo in ioos.items()}

    db = sample_database()
    data_apo = ioos["data"].integrate("employees", db)
    data_apo.expose(
        "salary_of", db.salary_of,
        doc="salary lookup", tags=["query", "hr"],
        params=[{"name": "name", "kind": "text"}],
    )
    data_apo.expose(
        "headcount", db.headcount, doc="employee count", tags=["query", "stats"],
    )
    calc = Calculator()
    math_apo = ioos["math"].integrate("calc", calc)
    math_apo.expose(
        "evaluate", calc.evaluate, doc="arithmetic", tags=["compute"],
    )

    ioos["client"].link("data")
    ioos["client"].link("math")
    return network, ioos, traders


class TestDiscovery:
    def test_discover_by_tag(self, market):
        _network, _ioos, traders = market
        offers = traders["client"].discover(tags=["query"])
        found = {(o.site, o.apo, o.operation) for o in offers}
        assert found == {
            ("data", "employees", "salary_of"),
            ("data", "employees", "headcount"),
        }

    def test_discover_everything(self, market):
        _network, _ioos, traders = market
        offers = traders["client"].discover()
        operations = {o.operation for o in offers}
        assert {"salary_of", "headcount", "evaluate"} <= operations

    def test_offers_carry_signatures(self, market):
        _network, _ioos, traders = market
        offers = traders["client"].discover(tags=["hr"])
        assert len(offers) == 1
        offer = offers[0]
        assert offer.doc == "salary lookup"
        assert dict(offer.params[0])["name"] == "name"

    def test_all_tags_must_match(self, market):
        _network, _ioos, traders = market
        assert traders["client"].discover(tags=["query", "compute"]) == []

    def test_unlinked_sites_not_queried(self, market):
        _network, ioos, traders = market
        # the math site never linked back to anyone: its own discovery
        # has nobody to ask
        assert traders["math"].discover(tags=["query"]) == []

    def test_partitioned_site_skipped(self, market):
        network, _ioos, traders = market
        network.topology.partition({"math"}, {"client", "data"})
        offers = traders["client"].discover()
        assert {o.site for o in offers} == {"data"}

    def test_export_acl_bounds_discovery(self, market):
        network, ioos, traders = market
        secret_db = sample_database()
        secret = ioos["data"].integrate(
            "secret", secret_db, allowed_importers=("somebody-else",),
        )
        secret.expose("peek", secret_db.headcount, tags=["query"])
        offers = traders["client"].discover(tags=["query"])
        assert all(o.apo != "secret" for o in offers)


class TestImportFirst:
    def test_discover_then_import_then_invoke(self, market):
        _network, _ioos, traders = market
        offer, ambassador = traders["client"].import_first(["hr"])
        assert offer.operation == "salary_of"
        assert ambassador.invoke("salary_of", ["moshe"]) == 4500

    def test_import_first_is_idempotent(self, market):
        _network, _ioos, traders = market
        _offer, first = traders["client"].import_first(["hr"])
        _offer2, second = traders["client"].import_first(["hr"])
        assert first is second

    def test_no_offers_raises(self, market):
        _network, _ioos, traders = market
        with pytest.raises(MROMError):
            traders["client"].import_first(["nonexistent-capability"])


class TestOfferSerialization:
    def test_round_trip(self):
        offer = ServiceOffer(
            site="s", apo="a", operation="op", doc="d",
            tags=("x", "y"), params=((("kind", "text"), ("name", "n")),),
        )
        assert ServiceOffer.from_mapping(offer.to_mapping()) == offer
