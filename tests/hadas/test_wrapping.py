"""Tool-integration wrapping helpers."""

import pytest

from repro.core import MROMObject, PreProcedureVeto, PostProcedureError
from repro.hadas import attach_assertions, attach_preparation, attach_usage_meter


@pytest.fixture
def tool():
    """An object with an extensible 'run' method (wrapping target)."""
    obj = MROMObject(display_name="tool")
    obj.define_fixed_data("runs", 0)
    obj.seal()
    obj.self_view().add_method(
        "run",
        "self.set('runs', self.get('runs') + 1)\nreturn args[0] * 2",
    )
    return obj


class TestAssertions:
    def test_pre_assertion(self, tool):
        attach_assertions(tool, "run", pre_source="return args[0] >= 0")
        assert tool.invoke("run", [5]) == 10
        with pytest.raises(PreProcedureVeto):
            tool.invoke("run", [-1])

    def test_post_assertion(self, tool):
        attach_assertions(tool, "run", post_source="return result < 100")
        assert tool.invoke("run", [5]) == 10
        with pytest.raises(PostProcedureError):
            tool.invoke("run", [500])

    def test_both_at_once(self, tool):
        attach_assertions(
            tool, "run",
            pre_source="return args[0] >= 0",
            post_source="return result >= 0",
        )
        assert tool.invoke("run", [1]) == 2


class TestPreparation:
    def test_runs_once_before_first_use(self, tool):
        prepared = []
        attach_preparation(tool, "run", lambda: prepared.append(1) or True)
        tool.invoke("run", [1])
        tool.invoke("run", [1])
        assert prepared == [1]

    def test_every_time_when_once_false(self, tool):
        prepared = []
        attach_preparation(
            tool, "run", lambda: prepared.append(1) or True, once=False
        )
        tool.invoke("run", [1])
        tool.invoke("run", [1])
        assert prepared == [1, 1]

    def test_failed_preparation_vetoes(self, tool):
        attach_preparation(tool, "run", lambda: False)
        with pytest.raises(PreProcedureVeto):
            tool.invoke("run", [1])
        assert tool.get_data("runs") == 0

    def test_failed_preparation_retried_next_call(self, tool):
        attempts = []

        def flaky():
            attempts.append(1)
            return len(attempts) >= 2

        attach_preparation(tool, "run", flaky)
        with pytest.raises(PreProcedureVeto):
            tool.invoke("run", [1])
        assert tool.invoke("run", [1]) == 2
        tool.invoke("run", [1])
        assert attempts == [1, 1]  # succeeded once, then cached


class TestUsageMeter:
    def test_counts_completed_calls(self, tool):
        attach_usage_meter(tool, "run")
        tool.invoke("run", [1])
        tool.invoke("run", [2])
        assert tool.get_data("usage") == 2

    def test_vetoed_calls_not_counted(self, tool):
        attach_usage_meter(tool, "run")
        attach_assertions(tool, "run", pre_source="return args[0] > 0")
        with pytest.raises(PreProcedureVeto):
            tool.invoke("run", [0])
        tool.invoke("run", [1])
        assert tool.get_data("usage") == 1

    def test_custom_counter_item(self, tool):
        attach_usage_meter(tool, "run", counter_item="billed")
        tool.invoke("run", [1])
        assert tool.get_data("billed") == 1
