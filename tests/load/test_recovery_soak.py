"""Crash-restart soak: the PR's acceptance invariants, as tests.

Whole serving sites are killed and restarted from their write-ahead
logs while the fault plane drops and duplicates messages, and the
closed-form accounting from the clean soak must still hold: every
request settles, no update is lost or double-applied, and every object
ends with exactly one owner. The differential case pins the other half
of the contract: durability *off by default* means a durable run with
no crashes is observationally identical to a plain run.
"""

from __future__ import annotations

import pytest

from repro.load import LoadConfig, run_load_scenario, run_soak_scenario

pytestmark = [pytest.mark.load, pytest.mark.recovery]

SMALL = dict(sites=4, clients=4, requests=1_200)


class TestCrashRestartSoak:
    def test_closed_form_holds_across_three_kill_restart_cycles(self):
        report = run_soak_scenario(
            LoadConfig(**SMALL, durable=True, crash_cycles=3)
        )
        assert report.restarts >= 3  # the schedule actually fired
        assert report.faults.get("drop", 0) > 0  # ...alongside message faults
        # the closed form: zero lost replies, zero lost updates
        assert report.ok == report.issued
        assert report.failed == 0
        assert report.unresolved == 0
        assert report.consistent
        # exactly-once transfer across restarts: one owner per object
        assert report.exactly_once
        recoveries = report.durable["recoveries"]
        assert len(recoveries) >= 3
        assert all(r["damage"] is None for r in recoveries)  # quiescent kills
        assert sum(r["records_replayed"] for r in recoveries) > 0
        assert report.durable["restarts"] == report.restarts

    def test_durable_soak_is_seed_deterministic(self):
        config = dict(sites=4, clients=2, requests=600, seed=3,
                      durable=True, crash_cycles=2)
        first = run_soak_scenario(LoadConfig(**config))
        second = run_soak_scenario(LoadConfig(**config))
        # recovery wall-clock stays out of the mapping, so two identical
        # runs — crashes, replays and all — must agree byte for byte
        assert first.to_mapping() == second.to_mapping()

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_disk_backends_survive_crash_cycles(self, backend, tmp_path):
        report = run_soak_scenario(LoadConfig(
            sites=4, clients=2, requests=600, durable=True, crash_cycles=1,
            backend=backend, wal_root=str(tmp_path),
        ))
        assert report.restarts >= 1
        assert report.ok == report.issued
        assert report.consistent
        assert report.exactly_once
        suffix = ".db" if backend == "sqlite" else ".wal"
        logs = sorted(tmp_path.glob(f"*{suffix}"))
        assert len(logs) == 4  # one log per serving site, left for `repro recover`


class TestDurabilityOffDifferential:
    def test_durable_run_without_crashes_is_observationally_identical(self):
        plain = run_load_scenario(LoadConfig(**SMALL, seed=5)).to_mapping()
        durable = run_load_scenario(
            LoadConfig(**SMALL, seed=5, durable=True)
        ).to_mapping()
        assert plain.pop("durable") == {}
        summary = durable.pop("durable")
        assert summary["restarts"] == 0
        assert summary["recoveries"] == []
        # everything the application can observe — settlement counts,
        # counters, migrations, simulated timing — is unchanged
        assert plain == durable
