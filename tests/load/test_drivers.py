"""Op profiles and the closed/open-loop drivers in isolation."""

from __future__ import annotations

import random

import pytest

from repro.load import (
    DEFAULT_PROFILE,
    ClosedLoopDriver,
    DriverStats,
    LatencyRecorder,
    OpenLoopDriver,
    OpProfile,
)
from tests.conftest import make_site_world

pytestmark = pytest.mark.load


class TestOpProfile:
    def test_weights_validate(self):
        with pytest.raises(ValueError):
            OpProfile(invoke=-1.0)
        with pytest.raises(ValueError):
            OpProfile(invoke=0, get_data=0, describe=0, migrate=0)

    def test_pick_is_deterministic_per_seed(self):
        draws = [
            [DEFAULT_PROFILE.pick(random.Random(7)) for _ in range(20)]
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_pick_tracks_weights(self):
        profile = OpProfile(invoke=1.0, get_data=0.0, describe=0.0, migrate=0.0)
        rng = random.Random(3)
        assert {profile.pick(rng) for _ in range(50)} == {"invoke"}

    def test_parse_spec(self):
        profile = OpProfile.parse("invoke=70, get_data=30")
        assert profile.invoke == 70
        assert profile.get_data == 30
        assert profile.describe == 0  # a spec states the whole mix
        assert profile.migrate == 0

    def test_parse_rejects_unknown_ops_and_bad_weights(self):
        with pytest.raises(ValueError, match="unknown op"):
            OpProfile.parse("teleport=1")
        with pytest.raises(ValueError, match="bad weight"):
            OpProfile.parse("invoke=lots")


def two_site_world():
    network, sites = make_site_world(seed=0, names=("client", "server"),
                                     domain="")
    client, server = sites["client"], sites["server"]
    counter = server.create_object(display_name="counter")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "increment", "self.set('count', self.get('count') + 1)\n"
                     "return self.get('count')"
    )
    counter.seal()
    server.register_object(counter)
    return network, client, server, counter


class TestClosedLoop:
    def test_one_outstanding_request_chained_to_budget(self):
        network, client, server, counter = two_site_world()
        stats, recorder = DriverStats(), LatencyRecorder()
        issue = lambda: client.remote_invoke_async(  # noqa: E731
            "server", counter.guid, "increment"
        )
        driver = ClosedLoopDriver(
            client, issue, lambda: stats.issued < 25, stats, recorder
        )
        driver.start()
        network.run()
        assert stats.issued == stats.completed == stats.ok == 25
        assert stats.unresolved == 0
        assert counter.get_data("count", caller=counter.owner) == 25
        assert recorder.count == 25

    def test_think_time_spaces_the_chain(self):
        network, client, server, counter = two_site_world()
        stats, recorder = DriverStats(), LatencyRecorder()
        issue = lambda: client.remote_invoke_async(  # noqa: E731
            "server", counter.guid, "increment"
        )
        driver = ClosedLoopDriver(
            client, issue, lambda: stats.issued < 10, stats, recorder,
            think_time=1.0,
        )
        driver.start()
        network.run()
        assert stats.ok == 10
        assert network.now >= 9.0  # nine think gaps separate ten requests


class TestOpenLoop:
    def test_arrivals_do_not_wait_for_completions(self):
        network, client, server, counter = two_site_world()
        server.service_delay = 0.5  # far slower than the arrival gap
        stats, recorder = DriverStats(), LatencyRecorder()
        issue = lambda: client.remote_invoke_async(  # noqa: E731
            "server", counter.guid, "increment"
        )
        driver = OpenLoopDriver(
            client, issue, lambda: stats.issued < 20, stats, recorder,
            rate=100.0,
        )
        driver.start()
        network.run()
        assert stats.issued == stats.completed == 20
        # closed-loop would need >= 10s of service time serialized; open
        # arrivals overlapped so the run finishes just after the last
        # service completes
        assert network.now < 20 * 0.5

    def test_rate_must_be_positive(self):
        network, client, _server, _counter = two_site_world()
        with pytest.raises(ValueError):
            OpenLoopDriver(
                client, lambda: None, lambda: False,
                DriverStats(), LatencyRecorder(), rate=0.0,
            )

    def test_poisson_gaps_are_seed_deterministic(self):
        def run(seed):
            network, client, server, counter = two_site_world()
            stats, recorder = DriverStats(), LatencyRecorder()
            issue = lambda: client.remote_invoke_async(  # noqa: E731
                "server", counter.guid, "increment"
            )
            driver = OpenLoopDriver(
                client, issue, lambda: stats.issued < 30, stats, recorder,
                rate=50.0, rng=network.simulator.derive_rng("arrivals"),
            )
            driver.start()
            network.run()
            return network.now, stats.to_mapping()

        assert run(5) == run(5)
