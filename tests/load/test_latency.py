"""The fixed-bucket latency recorder and its interpolated percentiles."""

from __future__ import annotations

import pytest

from repro.load import LatencyRecorder
from repro.telemetry import enabled

pytestmark = pytest.mark.load


class TestRecorder:
    def test_empty_recorder_reports_zero(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.percentile(0.5) == 0.0
        assert recorder.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_counts_sum_and_extremes(self):
        recorder = LatencyRecorder()
        for value in (0.001, 0.002, 0.010):
            recorder.observe(value)
        assert recorder.count == 3
        assert recorder.total == pytest.approx(0.013)
        assert recorder.min == 0.001
        assert recorder.max == 0.010
        assert recorder.mean == pytest.approx(0.013 / 3)

    def test_bucket_edges_are_inclusive_below(self):
        recorder = LatencyRecorder(boundaries=(0.1, 1.0))
        recorder.observe(0.1)   # lands in the first bucket (<= 0.1)
        recorder.observe(0.5)
        recorder.observe(99.0)  # above every bound: the +Inf bucket
        assert recorder.counts == [1, 1, 1]

    def test_percentiles_interpolate_within_buckets(self):
        recorder = LatencyRecorder(boundaries=(0.0, 1.0))
        for _ in range(100):
            recorder.observe(0.5)  # all in the (0.0, 1.0] bucket
        # the bucket spans 0..1 uniformly by assumption; the estimate is
        # clamped to [min, max], so every quantile reads the true value
        assert recorder.percentile(0.50) == pytest.approx(0.5)
        assert recorder.percentile(0.99) == pytest.approx(0.5)

    def test_percentile_ordering_on_spread_samples(self):
        recorder = LatencyRecorder()
        for index in range(1, 1001):
            recorder.observe(index / 1000.0)  # 1ms .. 1s
        p50, p95, p99 = (
            recorder.percentile(q) for q in (0.50, 0.95, 0.99)
        )
        assert p50 < p95 < p99 <= recorder.max
        assert p50 == pytest.approx(0.5, rel=0.25)
        assert p99 == pytest.approx(0.99, rel=0.25)

    def test_overflow_bucket_reports_observed_max(self):
        recorder = LatencyRecorder(boundaries=(0.001,))
        recorder.observe(7.0)
        recorder.observe(9.0)
        assert recorder.percentile(0.99) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRecorder(boundaries=())
        with pytest.raises(ValueError):
            LatencyRecorder(boundaries=(1.0, 0.5))
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(0.0)
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(1.5)

    def test_snapshot_shape(self):
        recorder = LatencyRecorder()
        recorder.observe(0.003)
        snapshot = recorder.snapshot()
        for key in ("count", "sum", "mean", "min", "max", "p50", "p95",
                    "p99", "boundaries", "buckets"):
            assert key in snapshot
        assert snapshot["count"] == 1


class TestTelemetryExport:
    def test_samples_mirror_into_the_metrics_registry(self):
        with enabled() as tel:
            recorder = LatencyRecorder(name="load.latency.test")
            recorder.observe(0.004)
            recorder.observe(0.008)
            histogram = tel.metrics.histogram(
                "load.latency.test", recorder.boundaries
            )
            assert histogram.count == 2
            assert histogram.total == pytest.approx(0.012)

    def test_recording_works_with_telemetry_off(self):
        recorder = LatencyRecorder()
        recorder.observe(0.001)
        assert recorder.count == 1
