"""End-to-end load and soak scenarios: the acceptance invariants."""

from __future__ import annotations

import pytest

from repro.load import (
    LoadConfig,
    OpProfile,
    run_load_scenario,
    run_soak_scenario,
)
from repro.telemetry import enabled

pytestmark = pytest.mark.load

# test-sized: the CLI smoke runs the full 10k-request shape
SMALL = dict(sites=4, clients=4, requests=1_200)


class TestCleanLoad:
    def test_closed_loop_settles_every_request(self):
        report = run_load_scenario(LoadConfig(**SMALL))
        assert report.issued == report.requests
        assert report.unresolved == 0
        assert report.shed == report.failed == 0
        assert report.ok == report.issued
        assert report.consistent  # counters == successful increments
        assert report.migrations > 0  # mobility ran under load
        assert report.latency["count"] == report.ok
        assert 0 < report.latency["p50"] <= report.latency["p95"] <= (
            report.latency["p99"]
        )
        assert report.throughput > 0

    def test_open_loop_settles_every_request(self):
        report = run_load_scenario(LoadConfig(**SMALL, mode="open", rate=800))
        assert report.unresolved == 0
        assert report.ok == report.issued
        assert report.consistent

    def test_runs_are_seed_deterministic(self):
        first = run_load_scenario(LoadConfig(**SMALL, seed=9))
        second = run_load_scenario(LoadConfig(**SMALL, seed=9))
        assert first.to_mapping() == second.to_mapping()

    def test_different_seeds_differ(self):
        first = run_load_scenario(LoadConfig(**SMALL, seed=1))
        second = run_load_scenario(LoadConfig(**SMALL, seed=2))
        assert first.to_mapping() != second.to_mapping()

    def test_report_renders_lines_and_mapping(self):
        report = run_load_scenario(LoadConfig(sites=4, clients=2, requests=200))
        lines = report.to_lines()
        assert any("p50=" in line for line in lines)
        assert any("no lost updates" in line for line in lines)
        mapping = report.to_mapping()
        assert mapping["consistent"] is True
        assert mapping["latency"]["count"] == report.ok

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(sites=0)
        with pytest.raises(ValueError):
            LoadConfig(mode="bursty")
        with pytest.raises(ValueError):
            LoadConfig(rate=0)


class TestBackpressure:
    def test_window_below_offered_load_sheds_structured(self):
        report = run_load_scenario(LoadConfig(
            **SMALL, mode="open", rate=2_000.0,
            inflight_limit=2, service_delay=0.002,
            profile=OpProfile(invoke=1.0, get_data=0, describe=0, migrate=0),
        ))
        assert report.shed > 0
        assert report.failed == 0  # non-shed requests all complete
        assert report.unresolved == 0  # a shed is a settled outcome
        assert report.ok + report.shed == report.issued
        assert report.consistent
        assert sum(report.server_sheds.values()) >= report.shed

    def test_shed_count_visible_in_telemetry(self):
        with enabled() as tel:
            report = run_load_scenario(LoadConfig(
                sites=4, clients=4, requests=400, mode="open", rate=2_000.0,
                inflight_limit=1, service_delay=0.002,
                profile=OpProfile(invoke=1.0, get_data=0, describe=0,
                                  migrate=0),
            ))
            assert report.shed > 0
            assert tel.metrics.counter_value("site.shed") == sum(
                report.server_sheds.values()
            )
            shed_events = [e for e in tel.events if e.name == "site.shed"]
            assert shed_events
            assert {e.attrs["site"] for e in shed_events} <= set(
                report.server_sheds
            )
            reports = [e for e in tel.events if e.name == "load.report"]
            assert reports and reports[-1].attrs["shed"] == report.shed

    def test_generous_window_never_sheds(self):
        report = run_load_scenario(LoadConfig(
            sites=4, clients=2, requests=400, inflight_limit=64,
            service_delay=0.001,
        ))
        assert report.shed == 0
        assert report.ok == report.issued


class TestSoak:
    def test_soak_settles_everything_despite_faults(self):
        report = run_soak_scenario(LoadConfig(**SMALL))
        assert report.soak
        assert report.faults.get("drop", 0) > 0  # faults actually fired
        assert report.faults.get("duplicate", 0) > 0
        assert report.unresolved == 0  # every future settled anyway
        assert report.consistent  # dedup held: no double increments
        assert report.ok == report.issued  # retries carried all to success

    def test_soak_is_seed_deterministic(self):
        first = run_soak_scenario(LoadConfig(sites=4, clients=2,
                                             requests=400, seed=3))
        second = run_soak_scenario(LoadConfig(sites=4, clients=2,
                                              requests=400, seed=3))
        assert first.to_mapping() == second.to_mapping()
