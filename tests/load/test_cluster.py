"""The sim-mode cluster scenarios: accounting, convergence, scaling.

Every run is seeded and simulated, so each assertion here is exact:
closed-form accounting (issued == settled, ``counter_total ==
invoke_ok``), the single-owner invariant, post-drain convergence, and
— because the whole point of sharding is parallel service lanes —
simulated throughput scaling with site count.
"""

from __future__ import annotations

import pytest

from repro.load import ClusterConfig, run_cluster_scenario, run_cluster_soak

pytestmark = pytest.mark.cluster

SEEDS = (0, 1, 2)


def small(seed: int, **overrides) -> ClusterConfig:
    defaults = dict(
        sites=4, clients=8, requests=600, seed=seed, service_delay=0.002,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestCleanScenario:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_closed_form_accounting_across_seeds(self, seed):
        report = run_cluster_scenario(small(seed))
        assert report.issued == report.completed == 600
        assert report.ok == 600 and report.failed == 0 and report.shed == 0
        assert report.unresolved == 0
        assert report.consistent, (
            f"counters {report.counter_total} != ok increments "
            f"{report.invoke_ok}"
        )
        assert report.single_owner and report.owner_violations == 0
        assert report.converged

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stale_redirects_and_migrations_exercised(self, seed):
        report = run_cluster_scenario(small(seed))
        # the mix's 5% migrate share guarantees both sides of the lease
        # protocol actually ran: moves happened, and at least one cached
        # lease went stale and was redirected
        assert report.migrations >= 1
        assert report.stale_client >= 1
        assert report.stale_served >= report.stale_client
        assert report.directory["updates"] >= report.migrations

    def test_identical_seeds_produce_identical_reports(self):
        first = run_cluster_scenario(small(3)).to_mapping()
        second = run_cluster_scenario(small(3)).to_mapping()
        assert first == second

    def test_different_seeds_diverge(self):
        a = run_cluster_scenario(small(0)).to_mapping()
        b = run_cluster_scenario(small(1)).to_mapping()
        assert a != b

    def test_throughput_scales_with_sites(self):
        # the sharding claim in miniature: double the ring, (nearly)
        # double the simulated ok-ops/s under the same total demand
        four = run_cluster_scenario(small(0, requests=1200))
        eight = run_cluster_scenario(
            small(0, sites=8, clients=16, requests=1200)
        )
        ratio = eight.throughput / four.throughput
        assert ratio >= 1.6, (
            f"8 sites gave only {ratio:.2f}x the 4-site throughput"
        )

    def test_report_lines_render(self):
        report = run_cluster_scenario(small(0, requests=200))
        lines = report.to_lines()
        assert any("no lost updates" in line for line in lines)
        assert any("single-owner held" in line for line in lines)
        assert any("(converged)" in line for line in lines)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(sites=0)
        with pytest.raises(ValueError):
            ClusterConfig(mode="sideways")
        with pytest.raises(ValueError):
            ClusterConfig(max_redirects=0)
        with pytest.raises(ValueError):
            ClusterConfig(keys_per_site=0)


class TestSoak:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_runs_keep_the_invariants(self, seed):
        report = run_cluster_soak(small(seed, requests=500))
        assert report.unresolved == 0
        assert report.issued == report.completed == 500
        assert report.consistent
        assert report.single_owner and report.converged
        # under drops/dups the only admissible terminal failure is a
        # typed stale lease whose redirect budget ran out — never an
        # untyped error, never a wrong-site success
        untyped = report.failed - report.errors.get("StaleLeaseError", 0)
        assert untyped == 0, f"untyped failures: {report.errors}"
        assert report.faults.get("drop", 0) >= 1
