"""Chaos over the lease protocol: hostile schedules aimed at the directory.

The generic soak sprinkles faults everywhere; this suite aims them
where the protocol is most exposed — the directory RPCs themselves
(``dir.resolve`` / ``dir.update`` dropped, duplicated, reordered) plus
a serving site flapping fail-stop mid-run, while migrations keep
moving placements. Under all of it, resolution must stay
exactly-once-consistent: no name ever maps to two live owners, every
acknowledged increment is counted exactly once (the PR-6 closed-form
accounting), and the only admissible terminal failure is a *typed*
``StaleLeaseError`` — a client can be told "stale" or "try again",
never handed a wrong-site success.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    CrashRestartInjector,
    DropInjector,
    DuplicateInjector,
    FaultPlane,
    ReorderInjector,
)
from repro.load import ClusterConfig, run_cluster_soak

pytestmark = [pytest.mark.cluster, pytest.mark.chaos]

#: the wire the directory itself speaks
DIRECTORY_KINDS = ("dir.resolve", "dir.update")
#: the commit-side traffic a move depends on
COMMIT_KINDS = ("dir.update", "cluster.adopt")


def hostile_attach(config: ClusterConfig):
    """A plane that drops/dups/reorders directory RPCs and flaps s1
    fail-stop mid-run (same endpoint re-registered, state intact —
    the flap model; WAL recovery is the durability suite's business)."""

    def attach(network, world) -> FaultPlane:
        plane = FaultPlane(network, seed=config.seed,
                          scenario="cluster-chaos")
        plane.add(DropInjector(rate=0.15, only_kinds=DIRECTORY_KINDS))
        plane.add(DuplicateInjector(rate=0.15, spread=0.02,
                                    only_kinds=DIRECTORY_KINDS))
        plane.add(ReorderInjector(rate=0.10, hold=0.05,
                                  only_kinds=COMMIT_KINDS))
        plane.add(DuplicateInjector(rate=0.05, spread=0.02,
                                    only_kinds=("cluster.invoke",)))

        def restart(net, site_id):
            site = world.servers[site_id]
            site.incarnation = net.register(site)

        plane.add(CrashRestartInjector(
            "s1", at=0.3, down_for=0.25, on_restart=restart,
        ))
        return plane

    return attach


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_directory_chaos_stays_exactly_once_consistent(seed):
    config = ClusterConfig(
        sites=4, clients=8, requests=500, seed=seed, service_delay=0.002,
    )
    report = run_cluster_soak(config, attach=hostile_attach(config))

    # every future settled, even the ones racing the flap
    assert report.unresolved == 0
    assert report.issued == report.completed == 500

    # the PR-6 closed-form ledger survives dropped directory updates,
    # duplicated invokes and the mid-migration flap: acknowledged
    # increments == counted increments, exactly
    assert report.consistent, (
        f"seed {seed}: counters {report.counter_total} != "
        f"acked increments {report.invoke_ok}"
    )

    # resolution is exactly-once: never two live owners for one name,
    # and after drain every name has exactly one reachable home the
    # shard agrees with
    assert report.single_owner and report.owner_violations == 0
    assert report.converged

    # failures may happen (a redirect budget can die against a downed
    # shard) but they must be *typed* staleness — wrong-site silent
    # success or an untyped error would be a protocol hole
    untyped = report.failed - report.errors.get("StaleLeaseError", 0)
    assert untyped == 0, f"seed {seed}: untyped failures {report.errors}"

    # the schedule actually bit: faults fired on the directory wire and
    # the site flapped exactly once
    assert report.faults.get("drop", 0) >= 1
    assert report.faults.get("duplicate", 0) >= 1
    assert report.faults.get("crash", 0) == 1
    # and the protocol still did real work under it
    assert report.migrations >= 1
    assert report.stale_client >= 1


def test_chaos_is_deterministic_per_seed():
    config = ClusterConfig(
        sites=4, clients=8, requests=300, seed=5, service_delay=0.002,
    )
    first = run_cluster_soak(config, attach=hostile_attach(config))
    second = run_cluster_soak(config, attach=hostile_attach(config))
    assert first.to_mapping() == second.to_mapping()
