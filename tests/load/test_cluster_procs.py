"""The multi-process cluster driver, at smoke scale.

One real OS process per site (own simulator, own gateway), real TCP
between them, the ring rederived per-process from configuration alone.
The full scaling pair lives in ``benchmarks/bench_perf14_cluster.py``;
here a small run proves the machinery: closed-form accounting across
process boundaries, directory-mediated rebalances mid-run, and
exactly-one-active-placement at the end.
"""

from __future__ import annotations

import sys

import pytest

from repro.load import ClusterProcsConfig, run_cluster_procs

pytestmark = [
    pytest.mark.cluster,
    pytest.mark.skipif(
        sys.platform == "win32", reason="fork-based multi-process driver"
    ),
]


def test_small_proc_cluster_keeps_the_invariants():
    report = run_cluster_procs(ClusterProcsConfig(
        sites=3, duration=1.0, keys_per_site=2, service_sleep=0.02,
        client_procs=2, moves=2, seed=0,
    ))
    assert report["sites"] == 3 and report["keys"] == 6
    assert report["ok"] >= 1
    # a rebalance window can exhaust a few ops' stale-retry budgets at
    # this tiny scale; that is a visible typed failure, never a lost or
    # double-counted update — the accounting below is what must hold
    assert report["failed"] <= max(4, report["ok"] // 10)
    # the cross-process ledger: every acknowledged increment is in a
    # counter exactly once, despite rebalances moving objects mid-run
    assert report["consistent"], (
        f"counters {report['counter_total']} != acked {report['ok']}"
    )
    assert report["single_owner"]
    assert report["moves"] == 2
    assert report["throughput"] > 0


def test_moves_surface_stale_leases_to_real_clients():
    report = run_cluster_procs(ClusterProcsConfig(
        sites=4, duration=1.5, keys_per_site=2, service_sleep=0.02,
        client_procs=2, moves=4, seed=1,
    ))
    assert report["consistent"] and report["single_owner"]
    assert report["failed"] <= max(4, report["ok"] // 10)
    # with 4 rebalances in 1.5s some client held a dead lease: the
    # typed redirect path ran over real TCP
    assert report["stale"] >= 1
    assert report["stale_served"] >= 1
    assert 0 <= report["stale_rate"] < 1
