"""Property battery: randomized op sequences against a never-crashed
oracle.

Each case derives a pure op script from its seed — invokes, nomad
migrations, checkpoints (compacting and not), and whole-site
crash-restarts — and runs it through two worlds built identically:

* the **durable** world actually executes the crash-restarts (journal
  closed, endpoint unregistered, incarnation rebuilt from the WAL);
* the **oracle** world treats them as no-ops (the site simply never
  crashed).

After every crash-restart, and again at the end, the observable
application state of the two worlds — which site owns each object, and
every piece of object data — must be identical. Divergence anywhere is
a durability bug: a lost update, a lost object, a double-applied
install, or a resurrected zombie.
"""

from __future__ import annotations

import random

import pytest

from ..conftest import build_counter
from .conftest import FAST, DurableWorld

pytestmark = pytest.mark.recovery

NAMES = ("a", "b", "c")
SEQUENCES = 200
OPS_PER_SEQUENCE = 10


def make_script(seed: int) -> list[tuple]:
    """A pure list of ops — both worlds consume the same script, so the
    randomness is spent before either world exists."""
    rng = random.Random(seed)
    script: list[tuple] = []
    for _ in range(OPS_PER_SEQUENCE):
        roll = rng.random()
        if roll < 0.45:
            target = rng.choice(NAMES)
            caller = rng.choice([n for n in NAMES if n != target])
            script.append(("invoke", caller, target, rng.randint(1, 5)))
        elif roll < 0.65:
            script.append(("migrate", rng.random()))
        elif roll < 0.80:
            script.append(("checkpoint", rng.choice(NAMES),
                           rng.random() < 0.5))
        else:
            script.append(("crash", rng.choice(NAMES)))
    if not any(op[0] == "crash" for op in script):
        script.append(("crash", rng.choice(NAMES)))  # always crash once
    return script


class Harness:
    """One world (durable or oracle) executing the shared script."""

    def __init__(self, seed: int, crashes_real: bool):
        self.world = DurableWorld(seed=seed, names=NAMES)
        self.crashes_real = crashes_real
        self.counters: dict[str, str] = {}
        for name in NAMES:
            counter = build_counter()
            self.world.sites[name].register_object(counter)
            self.counters[name] = counter.guid
        nomad = self.world.sites[NAMES[0]].create_object(display_name="nomad")
        nomad.define_fixed_data("hops", 0)
        nomad.define_fixed_method(
            "install", "self.set('hops', self.get('hops') + 1)"
        )
        nomad.seal()
        self.world.sites[NAMES[0]].register_object(nomad)
        self.nomad_guid = nomad.guid
        self.nomad_home = NAMES[0]

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "invoke":
            _kind, caller, target, step = op
            self.world.sites[caller].remote_invoke(
                target, self.counters[target], "increment", [step],
                policy=FAST,
            )
        elif kind == "migrate":
            choices = [n for n in NAMES if n != self.nomad_home]
            dst = choices[int(op[1] * len(choices)) % len(choices)]
            home = self.world.sites[self.nomad_home]
            self.world.managers[self.nomad_home].migrate(
                home.local_object(self.nomad_guid), dst
            )
            self.nomad_home = dst
        elif kind == "checkpoint":
            _kind, name, compact = op
            self.world.journals[name].checkpoint(compact=compact)
        elif kind == "crash":
            if self.crashes_real:
                report = self.world.crash_restart(op[1])
                assert report.objects_failed == 0, (
                    f"recovery dropped objects at {op[1]}"
                )
        else:  # pragma: no cover - script generator bug
            raise AssertionError(f"unknown op {op!r}")

    def observe(self) -> dict:
        """Everything an application can see: placement and data."""
        state: dict = {}
        for name, guid in self.counters.items():
            owners = tuple(sorted(self.world.owners_of(guid)))
            assert len(owners) == 1, f"counter {name} owned by {owners}"
            obj = self.world.sites[owners[0]].local_object(guid)
            state[f"counter.{name}"] = (
                owners, obj.get_data("count", caller=obj.owner),
            )
        owners = tuple(sorted(self.world.owners_of(self.nomad_guid)))
        assert len(owners) == 1, f"nomad owned by {owners}"
        obj = self.world.sites[owners[0]].local_object(self.nomad_guid)
        state["nomad"] = (owners, obj.get_data("hops", caller=obj.owner))
        return state


def run_sequence(seed: int) -> None:
    script = make_script(seed)
    durable = Harness(seed, crashes_real=True)
    oracle = Harness(seed, crashes_real=False)
    for index, op in enumerate(script):
        durable.apply(op)
        oracle.apply(op)
        if op[0] == "crash":
            assert durable.observe() == oracle.observe(), (
                f"seed {seed}: diverged after step {index} {op!r}"
            )
    assert durable.observe() == oracle.observe(), (
        f"seed {seed}: diverged at end of script {script!r}"
    )


@pytest.mark.parametrize("block", range(10))
def test_recovered_state_matches_never_crashed_oracle(block):
    # 10 blocks x 20 seeds = 200 randomized sequences, split into blocks
    # so a failure names a narrow range and pytest -x stays informative
    for seed in range(block * 20, block * 20 + 20):
        run_sequence(seed)
