"""Shared scaffolding for the durability suite: a durable world whose
sites can be crashed (journal closed, endpoint unregistered) and
recovered from their write-ahead logs."""

from __future__ import annotations

from repro.mobility import MobilityManager
from repro.net import RetryPolicy
from repro.persistence import (
    MemoryStore,
    WriteAheadLog,
    attach_journal,
    recover_site,
)

from tests.conftest import make_site_world

FAST = RetryPolicy(attempts=4, timeout=0.5, backoff=0.05, multiplier=2.0)


class DurableWorld:
    """A full mesh of journaled sites plus crash/recover verbs."""

    def __init__(self, seed: int = 0, names: tuple[str, ...] = ("a", "b")):
        self.network, self.sites = make_site_world(seed=seed, names=names)
        self.names = names
        self.managers: dict[str, MobilityManager] = {}
        self.wals: dict[str, WriteAheadLog] = {}
        self.journals: dict = {}
        for name, site in self.sites.items():
            self.managers[name] = MobilityManager(site, retry_policy=FAST)
            wal = WriteAheadLog(MemoryStore())
            self.wals[name] = wal
            self.journals[name] = attach_journal(site, wal)

    def crash(self, name: str) -> None:
        """Fail-stop *name*: the journal goes silent, the endpoint dies."""
        journal = self.journals[name]
        if not journal.closed:
            journal.close()
        self.network.unregister(name)

    def recover(self, name: str):
        """Bring up a fresh incarnation of *name* from its WAL."""
        site, manager, report = recover_site(
            self.network, name, self.wals[name],
            domain=f"dom.{name}", retry_policy=FAST,
        )
        self.sites[name] = site
        self.managers[name] = manager
        self.journals[name] = attach_journal(site, self.wals[name])
        return report

    def crash_restart(self, name: str):
        self.crash(name)
        return self.recover(name)

    def owners_of(self, guid: str) -> list[str]:
        return [
            name for name, site in self.sites.items()
            if site.has_object(guid)
        ]
