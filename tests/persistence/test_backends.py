"""The pluggable frame stores: contract, capacity, damage, errors."""

from __future__ import annotations

import pytest

from repro.core.errors import PersistenceError
from repro.persistence import (
    BACKENDS,
    FileStore,
    MemoryStore,
    SqliteStore,
    Store,
    StoreFullError,
    make_store,
)

pytestmark = pytest.mark.recovery

FRAMES = [b"alpha", b"beta-beta", b"\x00\xffgamma\x00"]


def open_store(backend: str, tmp_path, **kwargs) -> Store:
    return make_store(backend, root=tmp_path, name="site", **kwargs)


class TestContract:
    """Every backend honours the same ordered append-only contract."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_preserves_order_and_bytes(self, backend, tmp_path):
        store = open_store(backend, tmp_path)
        ordinals = [store.append(frame) for frame in FRAMES]
        assert ordinals == [0, 1, 2]
        assert store.frames() == FRAMES
        assert store.appends == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rewrite_replaces_everything(self, backend, tmp_path):
        store = open_store(backend, tmp_path)
        for frame in FRAMES:
            store.append(frame)
        store.rewrite([b"compacted"])
        assert store.frames() == [b"compacted"]
        store.append(b"after")
        assert store.frames() == [b"compacted", b"after"]

    @pytest.mark.parametrize("backend", ("file", "sqlite"))
    def test_reopen_sees_appended_frames(self, backend, tmp_path):
        store = open_store(backend, tmp_path)
        for frame in FRAMES:
            store.append(frame)
        store.sync()
        store.close()
        again = open_store(backend, tmp_path)
        assert again.frames() == FRAMES

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_size_tracks_payload_bytes(self, backend, tmp_path):
        store = open_store(backend, tmp_path)
        assert store.size_bytes() == 0
        store.append(b"x" * 10)
        assert store.size_bytes() >= 10


class TestCapacity:
    """A full store refuses the append — the journal's fail-safe hook."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_store_raises(self, backend, tmp_path):
        store = open_store(backend, tmp_path, capacity_bytes=16)
        store.append(b"x" * 10)
        with pytest.raises(StoreFullError):
            store.append(b"y" * 10)
        # the refused frame was not half-written
        assert store.frames() == [b"x" * 10]

    def test_capacity_must_be_positive(self):
        with pytest.raises(PersistenceError):
            MemoryStore(capacity_bytes=0)

    def test_store_full_is_a_persistence_error(self):
        assert issubclass(StoreFullError, PersistenceError)


class TestFileDamage:
    """Torn tails: the file store detects them, rewrite repairs them."""

    def test_truncated_length_word(self, tmp_path):
        store = FileStore(tmp_path / "site.wal")
        store.append(b"intact")
        store.close()
        raw = (tmp_path / "site.wal").read_bytes()
        (tmp_path / "site.wal").write_bytes(raw + b"\x00\x00")  # torn u32
        again = FileStore(tmp_path / "site.wal")
        assert again.frames() == [b"intact"]
        assert again.truncated

    def test_frame_cut_mid_body(self, tmp_path):
        store = FileStore(tmp_path / "site.wal")
        store.append(b"intact")
        store.append(b"doomed-frame")
        store.close()
        raw = (tmp_path / "site.wal").read_bytes()
        (tmp_path / "site.wal").write_bytes(raw[:-5])
        again = FileStore(tmp_path / "site.wal")
        assert again.frames() == [b"intact"]
        assert again.truncated

    def test_rewrite_clears_truncation(self, tmp_path):
        store = FileStore(tmp_path / "site.wal")
        store.append(b"intact")
        store.close()
        raw = (tmp_path / "site.wal").read_bytes()
        (tmp_path / "site.wal").write_bytes(raw + b"\x00")
        again = FileStore(tmp_path / "site.wal")
        frames = again.frames()
        assert again.truncated
        again.rewrite(frames)
        assert not again.truncated
        assert again.frames() == [b"intact"]

    def test_bad_header_is_fatal(self, tmp_path):
        (tmp_path / "site.wal").write_bytes(b"NOTAWAL0\n")
        store = FileStore(tmp_path / "site.wal")
        with pytest.raises(PersistenceError):
            store.frames()


class TestClosedStores:
    def test_file_append_after_close(self, tmp_path):
        store = FileStore(tmp_path / "site.wal")
        store.append(b"one")
        store.close()
        with pytest.raises(PersistenceError):
            store.append(b"two")

    def test_sqlite_append_after_close(self, tmp_path):
        store = SqliteStore(tmp_path / "site.db")
        store.append(b"one")
        store.close()
        with pytest.raises(PersistenceError):
            store.append(b"two")


class TestMakeStore:
    def test_unknown_backend(self):
        with pytest.raises(PersistenceError):
            make_store("papyrus")

    @pytest.mark.parametrize("backend", ("file", "sqlite"))
    def test_disk_backends_need_a_root(self, backend):
        with pytest.raises(PersistenceError):
            make_store(backend)

    def test_paths_are_namespaced(self, tmp_path):
        make_store("file", root=tmp_path, name="s7").append(b"x")
        make_store("sqlite", root=tmp_path, name="s7").append(b"x")
        assert (tmp_path / "s7.wal").exists()
        assert (tmp_path / "s7.db").exists()
