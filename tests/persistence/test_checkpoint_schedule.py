"""Regressions for the recurring checkpoint schedule: cancellation must
leave ``Simulator.pending`` exact, and a tick landing inside a crash
window must skip the checkpoint without stranding the schedule."""

from __future__ import annotations

import pytest

from repro.core.errors import PersistenceError
from repro.net import Network, Site
from repro.persistence import ObjectStore, schedule_checkpoints
from repro.sim import Simulator

from ..conftest import build_counter

pytestmark = pytest.mark.recovery


def checkpointed_world(tmp_path, period=1.0):
    network = Network(Simulator(0))
    site = Site(network, "a", "dom.a")
    counter = build_counter()
    site.register_object(counter)
    store = ObjectStore(tmp_path / "store")
    cancel = schedule_checkpoints(site, store, period=period)
    return network, site, store, cancel


class TestCancellation:
    def test_cancel_removes_the_pending_event(self, tmp_path):
        network, _site, _store, cancel = checkpointed_world(tmp_path)
        simulator = network.simulator
        assert simulator.pending == 1
        cancel()
        # the regression: the event used to stay queued as a zombie,
        # leaving `pending` wrong and run_until stalled on its deadline
        assert simulator.pending == 0

    def test_cancel_stops_future_checkpoints(self, tmp_path):
        network, _site, _store, cancel = checkpointed_world(tmp_path)
        network.simulator.run_until(2.5)
        assert len(cancel.reports) == 2
        cancel()
        network.simulator.run_until(10.0)
        assert len(cancel.reports) == 2  # nothing fired after cancel

    def test_cancel_is_idempotent(self, tmp_path):
        network, _site, _store, cancel = checkpointed_world(tmp_path)
        cancel()
        cancel()
        assert network.simulator.pending == 0

    def test_run_until_advances_past_a_cancelled_tick(self, tmp_path):
        network, _site, _store, cancel = checkpointed_world(tmp_path)
        cancel()
        network.simulator.run_until(5.0)
        assert network.simulator.now == 5.0


class TestCrashWindow:
    def test_tick_during_downtime_skips_but_reschedules(self, tmp_path):
        network, site, _store, cancel = checkpointed_world(tmp_path)
        network.simulator.run_until(1.5)
        assert len(cancel.reports) == 1
        network.unregister("a")
        # two ticks land inside the crash window: both must skip the
        # checkpoint yet keep the period alive (the regression returned
        # without rescheduling, stranding the schedule forever)
        network.simulator.run_until(3.5)
        assert len(cancel.reports) == 1
        assert network.simulator.pending == 1  # the schedule survives
        Site(network, "a", "dom.a").register_object(build_counter())
        network.simulator.run_until(5.5)
        assert len(cancel.reports) == 3  # checkpoints resumed

    def test_restarted_incarnation_is_the_one_checkpointed(self, tmp_path):
        network, site, store, cancel = checkpointed_world(tmp_path)
        network.simulator.run_until(1.5)
        network.unregister("a")
        revived = Site(network, "a", "dom.a")
        fresh = build_counter()
        fresh.invoke("increment", [41], caller=fresh.owner)
        revived.register_object(fresh)
        network.simulator.run_until(2.5)
        # the tick re-resolved the CURRENT endpoint, not the dead object
        # the closure originally captured
        assert store.load(fresh.guid).get_data("count") == 41

    def test_period_must_be_positive(self, tmp_path):
        network = Network(Simulator(0))
        site = Site(network, "a", "dom.a")
        with pytest.raises(PersistenceError):
            schedule_checkpoints(site, ObjectStore(tmp_path / "s"), period=0)
