"""Crash recovery: replayed state, exactly-once transfer resolution,
record-before-reply dedup across incarnations, and the journal's
fail-safe posture when the disk goes away."""

from __future__ import annotations

import pytest

from repro.core.errors import TransferUnresolvedError
from repro.faults import DropInjector, FaultPlane
from repro.net import RetryPolicy
from repro.persistence import MemoryStore, WriteAheadLog, attach_journal
from repro.telemetry import Telemetry, enabled

from ..conftest import build_counter
from .conftest import DurableWorld

pytestmark = pytest.mark.recovery

ONE_SHOT = RetryPolicy(attempts=1, timeout=0.5)


def durable_counter(world: DurableWorld, home: str = "a"):
    counter = build_counter()
    world.sites[home].register_object(counter)
    return counter


class TestStateRecovery:
    def test_invoked_state_survives_a_crash(self):
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        for _ in range(3):
            world.sites["b"].remote_invoke(
                "a", counter.guid, "increment", [1], policy=ONE_SHOT
            )
        report = world.crash_restart("a")
        assert report.objects_restored == 1
        recovered = world.sites["a"].local_object(counter.guid)
        assert recovered is not counter  # a fresh incarnation's instance
        assert recovered.get_data("count", caller=recovered.owner) == 3

    def test_recovery_does_not_rerun_install(self):
        world = DurableWorld(names=("a", "b"))
        nomad = world.sites["a"].create_object(display_name="nomad")
        nomad.define_fixed_data("hops", 0)
        nomad.define_fixed_method(
            "install", "self.set('hops', self.get('hops') + 1)"
        )
        nomad.seal()
        world.sites["a"].register_object(nomad)
        ref = world.managers["a"].migrate(nomad, "b")
        landed = world.sites["b"].local_object(ref.guid)
        assert landed.get_data("hops", caller=landed.owner) == 1
        world.crash_restart("b")
        recovered = world.sites["b"].local_object(ref.guid)
        # WAL images are post-install: replay must not double-apply it
        assert recovered.get_data("hops", caller=recovered.owner) == 1
        assert recovered.environment["install_context"]["recovered"] is True

    def test_served_replies_are_replayed_not_reexecuted(self):
        # the record-before-reply discipline across incarnations: the
        # first attempt executes and its reply is dropped; the site
        # crashes and recovers BETWEEN the attempts (a scheduled event
        # inside the synchronous retry pump); the retry carries the same
        # request id and must hit the restored ledger of the NEW
        # incarnation — replayed, never re-executed
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        FaultPlane(world.network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["reply"], limit=1)
        )
        world.network.simulator.schedule(
            0.25, lambda: world.crash_restart("a"), label="mid-retry crash"
        )
        result = world.sites["b"].remote_invoke(
            "a", counter.guid, "increment", [1],
            policy=RetryPolicy(attempts=4, timeout=0.5, backoff=0.05),
        )
        assert result == 1
        assert world.sites["a"].replayed_requests == 1
        recovered = world.sites["a"].local_object(counter.guid)
        assert recovered.get_data("count", caller=recovered.owner) == 1

    def test_compacted_log_recovers_from_snapshot(self):
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        world.sites["b"].remote_invoke(
            "a", counter.guid, "increment", [5], policy=ONE_SHOT
        )
        world.journals["a"].checkpoint(compact=True)
        assert len(world.wals["a"].records()) == 1  # one snapshot frame
        report = world.crash_restart("a")
        assert report.snapshot_used
        recovered = world.sites["a"].local_object(counter.guid)
        assert recovered.get_data("count", caller=recovered.owner) == 5

    def test_unregistered_objects_stay_gone(self):
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        world.sites["a"].unregister_object(counter.guid)
        report = world.crash_restart("a")
        assert report.objects_restored == 0
        assert not world.sites["a"].has_object(counter.guid)


class TestRestartTimeTransferResolution:
    """A sender crashing between PREPARE and COMMIT must settle to
    exactly one owner after restart — the write-ahead intent half."""

    def _ambiguous_handoff(self, drop_kind: str):
        """Drive a handoff whose verdict the sender never learns."""
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        world.managers["a"].retry_policy = ONE_SHOT
        FaultPlane(world.network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=[drop_kind], limit=1)
        )
        with pytest.raises(TransferUnresolvedError):
            world.managers["a"].migrate(counter, "b")
        return world, counter

    def test_settled_verdict_completes_the_move(self):
        # the PREPARE settled at b; only its ACK was lost
        world, counter = self._ambiguous_handoff("reply")
        assert world.owners_of(counter.guid) == ["a", "b"]  # transient
        report = world.crash_restart("a")
        assert report.unresolved_restored == 1
        outcomes = world.managers["a"].reconcile()
        assert list(outcomes.values()) == ["settled"]
        assert world.owners_of(counter.guid) == ["b"]
        assert not world.managers["a"].unresolved

    def test_aborted_verdict_keeps_the_original(self):
        # the PREPARE itself was lost: b never saw the transfer
        world, counter = self._ambiguous_handoff("transfer.prepare")
        report = world.crash_restart("a")
        assert report.unresolved_restored == 1
        outcomes = world.managers["a"].reconcile()
        assert list(outcomes.values()) == ["aborted"]
        assert world.owners_of(counter.guid) == ["a"]
        assert not world.managers["a"].unresolved

    def test_resolution_is_journaled_too(self):
        # after reconcile, a SECOND crash must not resurrect the intent
        world, counter = self._ambiguous_handoff("reply")
        world.crash_restart("a")
        world.managers["a"].reconcile()
        report = world.crash_restart("a")
        assert report.unresolved_restored == 0
        assert world.owners_of(counter.guid) == ["b"]

    def test_restarted_receiver_still_suppresses_duplicates(self):
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        world.managers["a"].migrate(counter, "b")
        report = world.crash_restart("b")
        assert report.ledger_restored == 1
        # a late duplicate PREPARE (same transfer id) hits the restored
        # ledger of the NEW incarnation and is suppressed, not re-run
        before = world.managers["b"].duplicates_suppressed
        world.managers["a"].retry_policy = ONE_SHOT
        transfer_id = next(iter(world.managers["b"]._ledger))
        from repro.mobility.package import pack

        world.sites["a"].request(
            "b", "transfer.prepare",
            {"transfer_id": transfer_id,
             "package": pack(world.sites["b"].local_object(counter.guid)),
             "install_args": []},
            policy=ONE_SHOT,
        )
        assert world.managers["b"].duplicates_suppressed == before + 1
        assert world.owners_of(counter.guid) == ["b"]


class TestJournalFailSafe:
    def test_full_store_disables_durability_not_service(self):
        with enabled(Telemetry()) as tel:
            world = DurableWorld(names=("a", "b"))
            # shrink the log under a's feet: the next append must fail
            world.wals["a"].store.capacity_bytes = (
                world.wals["a"].store.size_bytes() + 1
            )
            counter = durable_counter(world, "a")
            journal = world.journals["a"]
            assert journal.failed  # the register note hit the full store
            # the site keeps serving without durability
            result = world.sites["b"].remote_invoke(
                "a", counter.guid, "increment", [1], policy=ONE_SHOT
            )
            assert result == 1
            assert tel.metrics.counter_value("wal.failures") >= 1

    def test_failed_journal_goes_quiet(self):
        world = DurableWorld(names=("a", "b"))
        journal = world.journals["a"]
        journal.failed = True
        writes = journal.writes
        durable_counter(world, "a")
        assert journal.writes == writes
        assert journal.checkpoint(compact=True) is None

    def test_closed_journal_never_writes(self):
        world = DurableWorld(names=("a", "b"))
        counter = durable_counter(world, "a")
        journal = world.journals["a"]
        journal.close()
        frames = len(world.wals["a"].store.frames())
        world.sites["a"].unregister_object(counter.guid)
        assert len(world.wals["a"].store.frames()) == frames
        assert world.sites["a"].journal is None

    def test_unportable_guests_are_skipped_not_fatal(self):
        world = DurableWorld(names=("a", "b"))
        site = world.sites["a"]
        hostile = site.create_object(display_name="native-guest")
        # native code: recovery could never rebuild this from an image
        hostile.define_fixed_method("local_only", lambda self, args, ctx: 42)
        hostile.seal()
        site.register_object(hostile)
        journal = world.journals["a"]
        assert journal.skipped_unportable >= 1
        assert not journal.failed  # skipping is not failing


class TestRecoveryReportShape:
    def test_mapping_excludes_wall_clock(self):
        world = DurableWorld(names=("a", "b"))
        durable_counter(world, "a")
        report = world.crash_restart("a")
        mapping = report.to_mapping()
        assert "replay_seconds" not in mapping  # determinism discipline
        assert report.replay_seconds >= 0.0
        assert mapping["site_id"] == "a"
        assert mapping["damage"] is None
