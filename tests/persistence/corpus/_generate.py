"""Regenerate the WAL golden corpus.

Run from the repo root::

    PYTHONPATH=src python tests/persistence/corpus/_generate.py

Each sample is a :class:`~repro.persistence.backends.FileStore` image
(``MROMWAL1`` header + length-prefixed frames) plus a ``.json`` sidecar
recording the exact replay expectation: the damage verdict, every
intact record's mapping, and the folded
:class:`~repro.persistence.recovery.ReplayState` summary. The corpus
pins the on-disk format: if framing, marshalling, or the replay fold
change shape, ``test_wal_corpus.py`` fails against these bytes and this
script must be re-run deliberately (and the diff reviewed as a format
change).

The samples are fully deterministic — fixed attrs, fixed timestamps,
no telemetry — so regeneration is byte-stable.

(The filename starts with ``_`` so pytest's ``bench_*/test_*`` globs
never collect it.)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.persistence import (
    FileStore,
    WriteAheadLog,
    decode_frames,
    replay_records,
)

CORPUS = Path(__file__).resolve().parent

IMAGE = {
    "format": "mrom-package-v1",
    "guid": "mrom://a/2.1",
    "display_name": "golden-counter",
    "payload": {"count": 7},
}


def fresh_wal(path: Path) -> WriteAheadLog:
    if path.exists():
        path.unlink()
    return WriteAheadLog(FileStore(path))


def write_expectation(path: Path, store: FileStore) -> None:
    records, damage = decode_frames(store.frames(), store.truncated)
    state = replay_records(records)
    expectation = {
        "damage": damage,
        "records": [record.to_mapping() for record in records],
        "state": {
            "images": sorted(state.images),
            "served": sorted(state.served),
            "ledger": sorted(state.ledger),
            "unresolved": sorted(state.unresolved),
            "snapshot_used": state.snapshot_used,
            "records_replayed": state.records_replayed,
            "unknown_kinds": state.unknown_kinds,
        },
    }
    path.write_text(
        json.dumps(expectation, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def sample_every_kind() -> None:
    """One intact record of every kind the replay fold understands."""
    path = CORPUS / "every_kind.wal"
    wal = fresh_wal(path)
    wal.append("object.image", {"guid": IMAGE["guid"], "package": IMAGE},
               site="a", time=1.0)
    wal.append("served.reply",
               {"kind": "invoke", "request_id": "req-1",
                "reply": {"status": "ok", "value": 7},
                "guid": IMAGE["guid"], "image": IMAGE},
               site="a", time=2.0)
    wal.append("transfer.intent",
               {"transfer_id": "xfer:a#1:1",
                "entry": {"guid": IMAGE["guid"], "dst": "b",
                          "mode": "move"}},
               site="a", time=3.0)
    wal.append("transfer.ledger",
               {"transfer_id": "xfer:b#1:9", "state": "settled",
                "report": {"guid": "mrom://b/3.1", "installed": True},
                "image": IMAGE},
               site="a", time=4.0)
    wal.append("transfer.resolved",
               {"transfer_id": "xfer:a#1:1", "outcome": "committed"},
               site="a", time=5.0)
    wal.append("object.remove", {"guid": IMAGE["guid"]},
               site="a", time=6.0)
    wal.append("snapshot",
               {"objects": {IMAGE["guid"]: IMAGE},
                "served": [["req-1", {"status": "ok", "value": 7}]],
                "ledger": [], "unresolved": {}},
               site="a", time=7.0)
    write_expectation(path.with_suffix(".json"), wal.store)


def sample_snapshot_then_updates() -> None:
    """Compaction mid-history: replay starts from the snapshot fold."""
    path = CORPUS / "snapshot_then_updates.wal"
    wal = fresh_wal(path)
    wal.append("object.image", {"guid": "mrom://a/9.9", "package": IMAGE},
               site="a", time=0.5)
    wal.compact(
        {"objects": {IMAGE["guid"]: IMAGE},
         "served": [["req-0", {"status": "ok"}]],
         "ledger": [["xfer:b#1:1", {"state": "aborted", "report": None}]],
         "unresolved": {}},
        site="a", time=1.0,
    )
    wal.append("served.reply",
               {"kind": "invoke", "request_id": "req-2",
                "reply": {"status": "ok", "value": 8},
                "guid": IMAGE["guid"],
                "image": {**IMAGE, "payload": {"count": 8}}},
               site="a", time=2.0)
    wal.append("transfer.intent",
               {"transfer_id": "xfer:a#2:1",
                "entry": {"guid": IMAGE["guid"], "dst": "c",
                          "mode": "copy"}},
               site="a", time=3.0)
    write_expectation(path.with_suffix(".json"), wal.store)


def sample_unknown_kind() -> None:
    """Forward compatibility: an unknown kind decodes but folds to a
    skip, never a failure."""
    path = CORPUS / "unknown_kind.wal"
    wal = fresh_wal(path)
    wal.append("object.image", {"guid": IMAGE["guid"], "package": IMAGE},
               site="a", time=1.0)
    wal.append("lease.granted", {"holder": "b", "until": 9.0},
               site="a", time=2.0)
    write_expectation(path.with_suffix(".json"), wal.store)


def sample_empty() -> None:
    """A header-only log: a site that crashed before its first write."""
    path = CORPUS / "empty.wal"
    wal = fresh_wal(path)
    write_expectation(path.with_suffix(".json"), wal.store)


def sample_truncated_tail() -> None:
    """A frame physically cut mid-write (the torn-page analogue): the
    intact prefix replays, the tail reports ``truncated``."""
    path = CORPUS / "truncated_tail.wal"
    wal = fresh_wal(path)
    wal.append("object.image", {"guid": IMAGE["guid"], "package": IMAGE},
               site="a", time=1.0)
    wal.append("served.reply",
               {"kind": "invoke", "request_id": "req-1",
                "reply": {"status": "ok", "value": 7}},
               site="a", time=2.0)
    wal.append("object.remove", {"guid": "mrom://a/doomed"},
               site="a", time=3.0)
    wal.store.close()
    raw = path.read_bytes()
    path.write_bytes(raw[:-11])  # cut the last frame mid-body
    write_expectation(path.with_suffix(".json"), FileStore(path))


def sample_torn_write() -> None:
    """A frame whose body was written but damaged (bit rot / torn
    sector): the checksum refuses it and everything after it."""
    path = CORPUS / "torn_write.wal"
    wal = fresh_wal(path)
    wal.append("object.image", {"guid": IMAGE["guid"], "package": IMAGE},
               site="a", time=1.0)
    wal.append("served.reply",
               {"kind": "invoke", "request_id": "req-1",
                "reply": {"status": "ok", "value": 7}},
               site="a", time=2.0)
    wal.append("snapshot", {"objects": {}, "served": [], "ledger": [],
                            "unresolved": {}},
               site="a", time=3.0)
    wal.store.close()
    raw = bytearray(path.read_bytes())
    raw[-20] ^= 0xFF  # flip one byte deep inside the final frame's body
    path.write_bytes(bytes(raw))
    write_expectation(path.with_suffix(".json"), FileStore(path))


def main() -> None:
    sample_every_kind()
    sample_snapshot_then_updates()
    sample_unknown_kind()
    sample_empty()
    sample_truncated_tail()
    sample_torn_write()
    print(f"regenerated {len(list(CORPUS.glob('*.wal')))} samples "
          f"under {CORPUS}")


if __name__ == "__main__":
    main()
