"""Golden-corpus replay: the WAL's on-disk format, pinned byte-for-byte.

Each ``corpus/*.wal`` is a committed :class:`FileStore` image with a
``.json`` sidecar recording the exact expected decode — damage verdict,
every intact record's mapping, and the folded replay state. The suite
exact-matches current code against those bytes, so any change to
framing, marshalling, or the replay fold fails here first and must be
accompanied by a deliberate corpus regeneration
(``tests/persistence/corpus/_generate.py``).

The corpus includes damaged samples — a physically cut tail
(``truncated_tail``) and a checksum-failing frame (``torn_write``) —
which must decode to the intact prefix and be repaired exactly once on
open.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.persistence import (
    RECORD_KINDS,
    FileStore,
    WriteAheadLog,
    decode_frames,
    replay_records,
)
from repro.persistence.wal import _frame

pytestmark = pytest.mark.recovery

CORPUS = Path(__file__).resolve().parent / "corpus"
SAMPLES = sorted(CORPUS.glob("*.wal"))
DAMAGED = [path for path in SAMPLES
           if json.loads(path.with_suffix(".json").read_text())["damage"]]


def expectation(path: Path) -> dict:
    return json.loads(path.with_suffix(".json").read_text(encoding="utf-8"))


def decode(path: Path):
    store = FileStore(path)
    return decode_frames(store.frames(), store.truncated)


class TestExactMatchReplay:
    @pytest.mark.parametrize("path", SAMPLES, ids=lambda p: p.stem)
    def test_records_decode_exactly(self, path):
        expected = expectation(path)
        records, damage = decode(path)
        assert damage == expected["damage"]
        assert [record.to_mapping() for record in records] == (
            expected["records"]
        )

    @pytest.mark.parametrize("path", SAMPLES, ids=lambda p: p.stem)
    def test_replay_fold_matches(self, path):
        expected = expectation(path)["state"]
        records, _damage = decode(path)
        state = replay_records(records)
        assert sorted(state.images) == expected["images"]
        assert sorted(state.served) == expected["served"]
        assert sorted(state.ledger) == expected["ledger"]
        assert sorted(state.unresolved) == expected["unresolved"]
        assert state.snapshot_used == expected["snapshot_used"]
        assert state.records_replayed == expected["records_replayed"]
        assert state.unknown_kinds == expected["unknown_kinds"]

    @pytest.mark.parametrize("path", SAMPLES, ids=lambda p: p.stem)
    def test_encoder_reproduces_the_golden_frames(self, path):
        # the write side is pinned too: re-framing each decoded record
        # must reproduce the committed bytes, so a silent marshal or
        # checksum change cannot hide behind a still-working decoder
        store = FileStore(path)
        records, _damage = decode_frames(store.frames(), store.truncated)
        for frame, record in zip(store.frames(), records):
            assert _frame(record) == frame


class TestDamagedSamples:
    @pytest.mark.parametrize("path", DAMAGED, ids=lambda p: p.stem)
    def test_open_repairs_the_tail_exactly_once(self, path, tmp_path):
        expected = expectation(path)
        scratch = tmp_path / path.name  # never mutate the committed bytes
        shutil.copy(path, scratch)
        wal = WriteAheadLog(FileStore(scratch))
        assert wal.repaired == expected["damage"]
        prefix = [record.to_mapping() for record in wal.records()]
        assert prefix == expected["records"]
        # appends land on firm ground, right after the intact prefix
        appended = wal.append("object.remove", {"guid": "mrom://a/x"})
        assert appended.seq == len(prefix) + 1
        reopened = WriteAheadLog(FileStore(scratch))
        assert reopened.repaired is None  # the damage was cut, not kept

    @pytest.mark.parametrize("path", DAMAGED, ids=lambda p: p.stem)
    def test_repair_can_be_declined(self, path, tmp_path):
        scratch = tmp_path / path.name
        shutil.copy(path, scratch)
        before = scratch.read_bytes()
        WriteAheadLog(FileStore(scratch), repair=False)
        assert scratch.read_bytes() == before


class TestCorpusCompleteness:
    def test_every_record_kind_is_covered(self):
        seen = {
            record["kind"]
            for path in SAMPLES
            for record in expectation(path)["records"]
        }
        missing = set(RECORD_KINDS) - seen
        assert not missing, (
            f"corpus lacks samples for {sorted(missing)}; extend "
            f"corpus/_generate.py and regenerate"
        )

    def test_every_damage_verdict_is_covered(self):
        verdicts = {expectation(path)["damage"] for path in SAMPLES}
        assert verdicts == {None, "torn", "truncated"}

    def test_every_sample_has_a_sidecar_and_vice_versa(self):
        wals = {path.stem for path in SAMPLES}
        sidecars = {path.stem for path in CORPUS.glob("*.json")}
        assert wals == sidecars
        assert wals  # the glob found the corpus at all
