"""Self-contained persistence: versioned images, corruption, bootstrap."""

import pytest

from repro.core import MROMObject, Principal
from repro.core.errors import PersistenceError
from repro.persistence import ObjectStore, persist, restore


@pytest.fixture
def store(tmp_path):
    return ObjectStore(tmp_path / "store")


@pytest.fixture
def owner():
    return Principal("mrom://home/1.1", "dom.home", "owner")


def make_obj(owner, guid="mrom://home/2.1", balance=100):
    obj = MROMObject(guid=guid, display_name="persistent", owner=owner)
    obj.define_fixed_data("balance", balance)
    obj.define_fixed_method(
        "spend",
        "self.set('balance', self.get('balance') - args[0])\n"
        "return self.get('balance')",
    )
    obj.seal()
    return obj


class TestSaveAndLoad:
    def test_round_trip(self, store, owner):
        obj = make_obj(owner)
        version = persist(obj, store)
        assert version == 1
        loaded = restore(store, obj.guid)
        assert loaded.guid == obj.guid
        assert loaded.invoke("spend", [25], caller=owner) == 75

    def test_versions_accumulate(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store, keep=0)
        obj.invoke("spend", [10], caller=owner)
        persist(obj, store, keep=0)
        assert store.versions(obj.guid) == [1, 2]
        assert restore(store, obj.guid, version=1).get_data("balance") == 100
        assert restore(store, obj.guid).get_data("balance") == 90

    def test_keep_bounds_history(self, store, owner):
        obj = make_obj(owner)
        for _ in range(5):
            persist(obj, store, keep=2)
        assert len(store.versions(obj.guid)) == 2
        assert store.versions(obj.guid)[-1] == 5

    def test_missing_object(self, store):
        with pytest.raises(PersistenceError):
            store.load("mrom://home/99.99")

    def test_missing_version(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store)
        with pytest.raises(PersistenceError):
            store.load(obj.guid, version=7)


class TestCorruption:
    def _corrupt_latest(self, store, guid):
        version = store.versions(guid)[-1]
        path = store._image_path(guid, version)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_checksum_detects_corruption(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store)
        self._corrupt_latest(store, obj.guid)
        with pytest.raises(PersistenceError, match="checksum"):
            store.load(obj.guid, version=1)

    def test_falls_back_to_previous_intact_version(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store, keep=0)
        obj.invoke("spend", [40], caller=owner)
        persist(obj, store, keep=0)
        self._corrupt_latest(store, obj.guid)
        loaded = store.load(obj.guid)
        assert loaded.get_data("balance") == 100  # v1 survived

    def test_all_versions_corrupt(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store)
        self._corrupt_latest(store, obj.guid)
        with pytest.raises(PersistenceError, match="every image"):
            store.load(obj.guid)

    def test_identity_mismatch_detected(self, store, owner):
        first = make_obj(owner, guid="mrom://home/2.1")
        second = make_obj(owner, guid="mrom://home/3.1")
        persist(first, store)
        persist(second, store)
        # swap the image files between the two allocations
        path_a = store._image_path(first.guid, 1)
        path_b = store._image_path(second.guid, 1)
        a, b = path_a.read_bytes(), path_b.read_bytes()
        path_a.write_bytes(b)
        path_b.write_bytes(a)
        with pytest.raises(PersistenceError, match="identity"):
            store.load(first.guid, version=1)


class TestAllocation:
    def test_allocate_is_idempotent(self, store):
        first = store.allocate("mrom://home/5.5")
        second = store.allocate("mrom://home/5.5")
        assert first == second

    def test_distinct_guids_distinct_space(self, store):
        a = store.allocate("mrom://home/1.1")
        b = store.allocate("mrom://home/1.2")
        assert a != b

    def test_nasty_guid_characters(self, store, owner):
        obj = make_obj(owner, guid="mrom://home/1.9")
        persist(obj, store)
        assert store.load(obj.guid).guid == obj.guid

    def test_delete_releases_space(self, store, owner):
        obj = make_obj(owner)
        persist(obj, store)
        store.delete(obj.guid)
        assert store.versions(obj.guid) == []
        assert obj.guid not in store.guids()


class TestBootstrap:
    def test_bootstrap_restores_everything(self, store, owner):
        guids = []
        for index in range(3):
            obj = make_obj(owner, guid=f"mrom://home/7.{index}", balance=index)
            persist(obj, store)
            guids.append(obj.guid)
        restored = store.bootstrap()
        assert sorted(obj.guid for obj in restored) == sorted(guids)

    def test_bootstrap_skips_corrupt_objects(self, store, owner):
        good = make_obj(owner, guid="mrom://home/8.1")
        bad = make_obj(owner, guid="mrom://home/8.2")
        persist(good, store)
        persist(bad, store)
        version = store.versions(bad.guid)[-1]
        store._image_path(bad.guid, version).write_bytes(b"garbage")
        restored = store.bootstrap()
        assert [obj.guid for obj in restored] == [good.guid]
        report = store.bootstrap_report()
        assert len(report) == 1
        assert report[0][0] == bad.guid
