"""The write-ahead log: framing, replay, damage repair, compaction."""

from __future__ import annotations

import pytest

from repro.net.marshal import marshal
from repro.persistence import (
    MemoryStore,
    WalRecord,
    WriteAheadLog,
    decode_frames,
)
from repro.persistence.wal import _frame
from repro.telemetry import Telemetry, enabled

pytestmark = pytest.mark.recovery


def filled_wal(kinds=("object.image", "served.reply", "object.remove")):
    wal = WriteAheadLog(MemoryStore())
    for index, kind in enumerate(kinds):
        wal.append(kind, {"index": index}, site="a", time=float(index))
    return wal


class TestAppendAndReplay:
    def test_records_come_back_in_order(self):
        wal = filled_wal()
        records, damage = wal.replay()
        assert damage is None
        assert [record.kind for record in records] == [
            "object.image", "served.reply", "object.remove",
        ]
        assert [record.seq for record in records] == [1, 2, 3]
        assert records[1].attrs == {"index": 1}
        assert records[1].site == "a"
        assert records[1].time == 1.0

    def test_sequence_survives_reopen(self):
        wal = filled_wal()
        again = WriteAheadLog(wal.store)
        assert again.next_seq == 4
        record = again.append("snapshot", {}, site="a", time=9.0)
        assert record.seq == 4

    def test_round_trip_preserves_mapping(self):
        record = WalRecord(
            seq=7, kind="served.reply", time=1.5, site="b",
            attrs={"request_id": "r1", "reply": {"value": [1, 2]}},
            trace={"trace_id": "t", "span_id": "s"},
        )
        assert WalRecord.from_mapping(record.to_mapping()).to_mapping() == (
            record.to_mapping()
        )

    def test_trace_stamp_rides_along_under_telemetry(self):
        with enabled(Telemetry()) as tel:
            span = tel.begin_span("outer")
            wal = WriteAheadLog(MemoryStore())
            record = wal.append("object.image", {"guid": "g"}, site="a")
            tel.end_span(span)
        assert record.trace == {
            "trace_id": span.trace_id, "span_id": span.span_id,
        }
        replayed = wal.records()[0]
        assert replayed.trace == record.trace
        # and the appends counter saw the write
        assert tel.metrics.counter_value("wal.appends") == 1

    def test_no_trace_stamp_without_telemetry(self):
        wal = filled_wal()
        assert all(record.trace is None for record in wal.records())


class TestDamage:
    def test_torn_checksum_cuts_the_tail(self):
        wal = filled_wal()
        frames = wal.store.frames()
        frames[-1] = frames[-1][:-1] + bytes([frames[-1][-1] ^ 0xFF])
        records, damage = decode_frames(frames)
        assert damage == "torn"
        assert [record.seq for record in records] == [1, 2]

    def test_undecodable_body_is_torn(self):
        records, damage = decode_frames([b"\x00" * 12])
        assert records == [] and damage == "torn"

    def test_malformed_record_mapping_is_torn(self):
        # checksums fine, but the mapping is not a WAL record
        body = marshal({"not": "a record"})
        import hashlib

        frame = hashlib.sha256(body).digest()[:8] + body
        records, damage = decode_frames([frame])
        assert records == [] and damage == "torn"

    def test_store_truncation_reports_truncated(self):
        wal = filled_wal()
        records, damage = decode_frames(wal.store.frames(), truncated=True)
        assert damage == "truncated"
        assert len(records) == 3

    def test_open_repairs_a_torn_tail(self):
        wal = filled_wal()
        store = wal.store
        frames = store.frames()
        store.rewrite(frames[:2] + [b"garbage-frame"])
        repaired = WriteAheadLog(store)
        assert repaired.repaired == "torn"
        records, damage = repaired.replay()
        assert damage is None  # the hole is gone from the store
        assert [record.seq for record in records] == [1, 2]
        # appends continue after the intact prefix
        assert repaired.append("snapshot", {}).seq == 3

    def test_repair_can_be_declined(self):
        wal = filled_wal()
        store = wal.store
        store.rewrite(store.frames()[:1] + [b"garbage"])
        readonly = WriteAheadLog(store, repair=False)
        assert readonly.repaired is None
        _records, damage = readonly.replay()
        assert damage == "torn"


class TestCompaction:
    def test_compact_folds_to_one_snapshot(self):
        wal = filled_wal()
        record = wal.compact({"objects": {}}, site="a", time=5.0)
        assert record.kind == "snapshot"
        records = wal.records()
        assert [r.kind for r in records] == ["snapshot"]
        assert records[0].seq == 4  # the LSN keeps counting
        assert wal.next_seq == 5

    def test_appends_after_compaction(self):
        wal = filled_wal()
        wal.compact({"objects": {}}, site="a")
        wal.append("object.image", {"guid": "g"}, site="a")
        assert [r.kind for r in wal.records()] == ["snapshot", "object.image"]

    def test_frame_is_checksummed(self):
        record = WalRecord(seq=1, kind="snapshot", time=0.0, site="a",
                           attrs={})
        frame = _frame(record)
        records, damage = decode_frames([frame])
        assert damage is None and records[0].seq == 1
        bad = frame[:-1]
        _records, damage = decode_frames([bad])
        assert damage == "torn"
