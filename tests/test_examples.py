"""Every example script runs to completion and prints what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: script -> fragments that must appear in its output
EXPECTATIONS = {
    "quickstart.py": ["withdraw 30 -> 70", "4500", "identity travels: True"],
    "two_level_invocation.py": [
        "level 2: match -> body",
        "level 0: lookup -> match -> body",
    ],
    "database_shutdown.py": [
        "down for maintenance",
        "boston asks salary_of(moshe) -> 4500",
    ],
    "code_renting.py": ["REFUSED: out of credit", "service resumes"],
    "hadas_topology.py": ["Vicinity:", "payroll_with_bonus"],
    "mobile_agent_tour.py": ["market-feed", "back home"],
    "mpl_demo.py": ["refused", "spent: 950"],
    "service_marketplace.py": [
        "adapted: salary_of->comp_lookup",
        "salary_band(dana) -> senior",
    ],
}


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTATIONS), (
        "EXPECTATIONS out of sync with examples/ — add the new script here"
    )


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs(name):
    output = run_example(name)
    for fragment in EXPECTATIONS[name]:
        assert fragment in output, (
            f"{name}: expected {fragment!r} in output:\n{output}"
        )
