"""Deferred functionality placement: load balancing with object copies.

Section 1: "the decision as to how to split the functionality of an
application between components (e.g., between a client and a server, or
for balancing the load among multiple nodes) can be deferred and made
on-the-fly." Here a dispatcher deploys *copies* of a worker object to
several nodes at run time, balances tasks across them, and — when one
node gets slow — shifts placement without touching the worker's code.
"""

import pytest

from repro.mobility import MobilityManager
from repro.net import LAN, Network, Site
from repro.sim import Simulator

NODES = ("node1", "node2", "node3")


@pytest.fixture
def cluster():
    network = Network(Simulator())
    dispatcher = Site(network, "dispatcher", "cluster.head")
    nodes = {name: Site(network, name, f"cluster.{name}") for name in NODES}
    for name in NODES:
        network.topology.connect("dispatcher", name, *LAN)
    managers = {"dispatcher": MobilityManager(dispatcher)}
    managers.update({name: MobilityManager(site) for name, site in nodes.items()})
    return network, dispatcher, nodes, managers


def make_worker(site):
    worker = site.create_object(display_name="worker", owner=site.principal)
    worker.define_fixed_data("done", 0)
    worker.define_fixed_method(
        "crunch",
        "self.set('done', self.get('done') + 1)\n"
        "return sum(range(args[0])) if args else 0",
    )
    worker.define_fixed_method("load", "return self.get('done')")
    worker.seal()
    site.register_object(worker)
    return worker


class TestLoadBalancing:
    def test_copies_deployed_on_the_fly(self, cluster):
        _network, dispatcher, nodes, managers = cluster
        template = make_worker(dispatcher)
        replicas = {
            name: managers["dispatcher"].deploy_copy(template, name)
            for name in NODES
        }
        # all three copies share identity (same object, three placements)
        assert {ref.guid for ref in replicas.values()} == {template.guid}
        for name, ref in replicas.items():
            assert nodes[name].has_object(template.guid)
            assert ref.invoke("crunch", [10], caller=template.owner) == 45

    def test_round_robin_balances_evenly(self, cluster):
        _network, dispatcher, _nodes, managers = cluster
        template = make_worker(dispatcher)
        replicas = [
            managers["dispatcher"].deploy_copy(template, name) for name in NODES
        ]
        for task in range(30):
            replicas[task % len(replicas)].invoke(
                "crunch", [task], caller=template.owner
            )
        loads = [ref.invoke("load", caller=template.owner) for ref in replicas]
        assert loads == [10, 10, 10]
        # the stay-home original never worked
        assert template.get_data("done") == 0

    def test_least_loaded_dispatch(self, cluster):
        _network, dispatcher, _nodes, managers = cluster
        template = make_worker(dispatcher)
        replicas = [
            managers["dispatcher"].deploy_copy(template, name) for name in NODES
        ]
        # pre-load node1 heavily
        for _ in range(8):
            replicas[0].invoke("crunch", [1], caller=template.owner)

        def least_loaded():
            loads = [
                ref.invoke("load", caller=template.owner) for ref in replicas
            ]
            return replicas[loads.index(min(loads))]

        for _ in range(10):
            least_loaded().invoke("crunch", [1], caller=template.owner)
        final = [ref.invoke("load", caller=template.owner) for ref in replicas]
        # the balancer avoided the hot node entirely
        assert final[0] == 8
        assert sorted(final[1:]) == [5, 5]

    def test_rebalance_by_migration(self, cluster):
        """Placement changes at run time: drain a node by moving its
        worker elsewhere; callers keep working through fresh references."""
        _network, dispatcher, nodes, managers = cluster
        template = make_worker(dispatcher)
        ref = managers["dispatcher"].deploy_copy(template, "node1")
        ref.invoke("crunch", [5], caller=template.owner)
        # node1 must drain: forward its copy to node2, state intact
        moved = managers["dispatcher"].forward("node1", ref.guid, "node2")
        assert not nodes["node1"].has_object(template.guid)
        assert nodes["node2"].has_object(template.guid)
        assert moved.invoke("load", caller=template.owner) == 1
