"""End-to-end scenarios from the paper, crossing every subsystem."""

import pytest

from repro.apps import sample_database
from repro.core import Principal, allow_all
from repro.core.errors import PreProcedureVeto
from repro.core.introspection import find_methods, interrogate
from repro.hadas import IOO
from repro.mobility import MobilityManager
from repro.net import Network, Site, WAN
from repro.persistence import ObjectStore
from repro.security import AuditKind, AuditLog, HostPolicy, audited_invoke
from repro.sim import Simulator


@pytest.fixture
def world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    return network, haifa, boston


class TestFunctionalitySplit:
    """Mutability used "to dynamically determine how to split a
    component's functionality between the APO and the Ambassador"."""

    def test_pushed_cache_answers_locally(self, world):
        network, haifa, boston = world
        ioo_h, ioo_b = IOO(haifa), IOO(boston)
        db = sample_database()
        apo = ioo_h.integrate(
            "employees", db,
            operations={"departments": db.departments, "headcount": db.headcount},
        )
        ioo_b.link("haifa")
        amb = ioo_b.import_apo("haifa", "employees")

        # phase 1: every call crosses the WAN
        baseline_msgs = network.messages_sent
        assert amb.invoke("departments") == ["engineering", "research", "sales"]
        assert network.messages_sent > baseline_msgs

        # phase 2: the origin migrates data + a local method into the
        # ambassador (the functionality split, via the meta-methods)
        apo.broadcast_add_data("cached_departments", db.departments())
        apo.broadcast_add_method(
            "departments_local", "return self.get('cached_departments')"
        )
        quiet = network.messages_sent
        assert amb.invoke("departments_local") == [
            "engineering", "research", "sales",
        ]
        assert network.messages_sent == quiet  # answered with zero traffic

    def test_split_decision_is_reversible(self, world):
        _network, haifa, boston = world
        ioo_h, ioo_b = IOO(haifa), IOO(boston)
        db = sample_database()
        apo = ioo_h.integrate(
            "employees", db, operations={"headcount": db.headcount}
        )
        ioo_b.link("haifa")
        amb = ioo_b.import_apo("haifa", "employees")
        apo.broadcast_add_method("quick", "return 'local'")
        assert amb.invoke("quick") == "local"
        apo.broadcast(
            lambda ref: ref.invoke("deleteMethod", ["quick"], caller=apo.principal)
        )
        with pytest.raises(Exception):
            amb.invoke("quick")


class TestCodeRenting:
    """Section 3's "code renting": a level-1 meta-invoke whose
    pre-procedure contacts a (remote) charging object per invocation."""

    def make_rented_service(self, haifa, boston, credits=2):
        # the charging object lives at the vendor's site (haifa)
        vendor = Principal("mrom://haifa/90.90", "technion.ee", "vendor")
        charger = haifa.create_object(display_name="charger", owner=vendor)
        charger.define_fixed_data("credit", credits)
        charger.define_fixed_method(
            "charge",
            "remaining = self.get('credit')\n"
            "if remaining <= 0:\n"
            "    return False\n"
            "self.set('credit', remaining - 1)\n"
            "return True",
        )
        charger.define_fixed_method("balance", "return self.get('credit')")
        charger.seal()
        haifa.register_object(charger, name="billing/charger")

        # the rented object is deployed at the customer's site (boston)
        rented = haifa.create_object(
            display_name="rented", owner=vendor, extensible_meta=True,
        )
        rented.define_fixed_data("charger", haifa.ref_to(charger))
        rented.define_fixed_method("work", "return 'value delivered'")
        rented.seal()
        rented.invoke(
            "addMethod",
            [
                "invoke",
                "return ctx.proceed()",
                {
                    "acl": allow_all().describe(),
                    "pre": "return self.get('charger').invoke('charge', [])",
                },
            ],
            caller=vendor,
        )
        MobilityManager(haifa).migrate(rented, "boston")
        return boston.local_object(rented.guid), charger

    def test_each_invocation_is_charged(self, world):
        _network, haifa, boston = world
        MobilityManager(boston)
        rented, charger = self.make_rented_service(haifa, boston, credits=2)
        customer = Principal("mrom://boston/5.5", "mit.lcs", "customer")
        assert rented.invoke("work", caller=customer) == "value delivered"
        assert rented.invoke("work", caller=customer) == "value delivered"
        assert charger.get_data("credit") == 0
        with pytest.raises(PreProcedureVeto):
            rented.invoke("work", caller=customer)

    def test_charging_happens_at_the_vendor_site(self, world):
        network, haifa, boston = world
        MobilityManager(boston)
        rented, charger = self.make_rented_service(haifa, boston, credits=5)
        before = network.messages_sent
        rented.invoke("work", caller=Principal("mrom://boston/5.5", "mit.lcs"))
        # the pre-procedure crossed the network to charge
        assert network.messages_sent > before
        assert charger.get_data("credit") == 4


class TestNewcomerProtocol:
    """Self-representation in anger: a host interrogates an arriving
    object it has never seen and figures out how to use it."""

    def test_full_newcomer_flow(self, world):
        _network, haifa, boston = world
        origin = MobilityManager(haifa)
        MobilityManager(boston, policy=HostPolicy())

        stranger = haifa.create_object(display_name="stranger")
        stranger.define_fixed_method(
            "convert",
            "return args[0] * 3.785",
            metadata={
                "doc": "gallons to litres",
                "params": [{"name": "gallons", "kind": "real"}],
                "returns": "real",
                "tags": ["service", "conversion"],
            },
        )
        stranger.seal()
        haifa.register_object(stranger)
        origin.migrate(stranger, "boston")

        arrived = boston.local_object(stranger.guid)
        host = boston.principal
        # 1. interrogate: what can we call, and how?
        services = find_methods(arrived, host, tags=["conversion"])
        assert services == ["convert"]
        protocol = interrogate(arrived, host)
        assert protocol["convert"]["params"][0]["name"] == "gallons"
        # 2. decide and invoke
        assert arrived.invoke("convert", [2.0], caller=host) == pytest.approx(7.57)


class TestPersistentMigration:
    """Self-containment across both axes: migrate, persist, restart,
    restore, migrate home — state intact throughout."""

    def test_object_survives_host_restart(self, world, tmp_path):
        _network, haifa, boston = world
        origin = MobilityManager(haifa)
        MobilityManager(boston)

        ledger = haifa.create_object(display_name="ledger", owner=haifa.principal)
        ledger.define_fixed_data("entries", [])
        ledger.define_fixed_method(
            "record",
            "log = self.get('entries')\nlog.append(args[0])\n"
            "self.set('entries', log)\nreturn len(log)",
        )
        ledger.seal()
        haifa.register_object(ledger)
        ledger.invoke("record", ["created at haifa"], caller=haifa.principal)

        origin.migrate(ledger, "boston")
        settled = boston.local_object(ledger.guid)
        settled.invoke("record", ["arrived at boston"], caller=haifa.principal)

        # the host persists its guests, then "restarts"
        store = ObjectStore(tmp_path / "boston-store")
        store.save(settled)
        boston.unregister_object(settled.guid)
        del settled

        restored = store.bootstrap()
        assert len(restored) == 1
        revived = restored[0]
        boston.register_object(revived)
        revived.invoke("record", ["revived after restart"], caller=haifa.principal)
        assert revived.get_data("entries", caller=haifa.principal) == [
            "created at haifa",
            "arrived at boston",
            "revived after restart",
        ]


class TestAuditedDistributedScenario:
    def test_denials_and_arrivals_on_the_record(self, world):
        network, haifa, boston = world
        log = AuditLog(clock=lambda: network.now)
        ioo_h, ioo_b = IOO(haifa), IOO(boston)
        db = sample_database()
        apo = ioo_h.integrate(
            "employees", db, operations={"headcount": db.headcount}
        )
        ioo_b.link("haifa")
        amb = ioo_b.import_apo("haifa", "employees")
        log.record(AuditKind.ARRIVAL, amb.guid, "haifa")

        host = boston.principal
        audited_invoke(amb, log, "headcount", caller=host)
        with pytest.raises(Exception):
            audited_invoke(amb, log, "addMethod", ["evil", "return 1"], caller=host)

        counts = log.counts()
        assert counts["arrival"] == 1
        assert counts["invocation"] == 1
        assert counts["denial"] == 1


class TestApprovalObject:
    """The paper's other meta-invoke example: "an object contacts another
    (possibly remote) 'approval' object prior to the actual invocation"."""

    def test_remote_approval_gates_every_invocation(self, world):
        network, haifa, boston = world
        MobilityManager(boston)
        shipping = MobilityManager(haifa)
        compliance = Principal("mrom://haifa/60.1", "technion.ee", "compliance")

        approver = haifa.create_object(display_name="approver", owner=compliance)
        approver.define_fixed_data("open_hours", True)
        approver.define_fixed_method("approve", "return self.get('open_hours')")
        approver.define_fixed_method(
            "set_hours", "self.set('open_hours', args[0])\nreturn args[0]"
        )
        approver.seal()
        haifa.register_object(approver)

        worker = haifa.create_object(
            display_name="worker", owner=compliance, extensible_meta=True
        )
        worker.define_fixed_data("approver", haifa.ref_to(approver))
        worker.define_fixed_method("work", "return 'done'")
        worker.seal()
        worker.invoke(
            "addMethod",
            ["invoke", "return ctx.proceed()",
             {"acl": allow_all().describe(),
              "pre": "return self.get('approver').invoke('approve', [])"}],
            caller=compliance,
        )
        shipping.migrate(worker, "boston")
        deployed = boston.local_object(worker.guid)

        customer = Principal("mrom://boston/61.1", "mit.lcs", "customer")
        assert deployed.invoke("work", caller=customer) == "done"
        # compliance flips the switch at the origin; the deployed object
        # obeys instantly, with no message to the object itself
        approver.invoke("set_hours", [False], caller=compliance)
        with pytest.raises(PreProcedureVeto):
            deployed.invoke("work", caller=customer)
        approver.invoke("set_hours", [True], caller=compliance)
        assert deployed.invoke("work", caller=customer) == "done"
