"""End-to-end determinism: the substitution contract of DESIGN.md §3.

The simulated internetwork replaced the paper's real testbed *because*
it makes experiments exactly reproducible. This test holds the whole
stack to that contract: running an identical multi-site scenario twice
produces byte-identical traffic accounting and identical simulated
timestamps — across HADAS protocols, migration, and meta-updates.
"""

from repro.apps import sample_database
from repro.hadas import IOO
from repro.net import LAN, Network, Site, WAN
from repro.sim import Simulator


def run_scenario() -> dict:
    network = Network(Simulator(seed=1234))
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    paris = Site(network, "paris", "inria.fr")
    network.topology.connect("haifa", "boston", *WAN)
    network.topology.connect("haifa", "paris", *MODEM_LIKE)
    network.topology.connect("boston", "paris", *LAN)

    ioos = {"haifa": IOO(haifa), "boston": IOO(boston), "paris": IOO(paris)}
    db = sample_database()
    apo = ioos["haifa"].integrate(
        "employees", db,
        operations={"salary_of": db.salary_of, "headcount": db.headcount},
    )
    timeline = []
    for city in ("boston", "paris"):
        ioos[city].link("haifa")
        timeline.append(("linked", city, network.now))
        amb = ioos[city].import_apo("haifa", "employees")
        timeline.append(("imported", city, network.now))
        amb.invoke("salary_of", ["moshe"])
        timeline.append(("queried", city, network.now))
    apo.broadcast_maintenance("down")
    timeline.append(("maintenance", "*", network.now))
    apo.broadcast_lift_maintenance()
    timeline.append(("lifted", "*", network.now))

    # a migration for good measure
    agent = haifa.create_object(display_name="probe", owner=haifa.principal)
    agent.define_fixed_method("noop", "return None")
    agent.seal()
    haifa.register_object(agent)
    # the IOOs already own their sites' mobility managers
    ioos["haifa"].mobility.migrate(agent, "boston")
    timeline.append(("migrated", "boston", network.now))

    return {
        "timeline": timeline,
        "messages": network.messages_sent,
        "bytes": network.bytes_sent,
        "events": network.simulator.events_processed,
        "final_time": network.now,
    }


MODEM_LIKE = (0.120, 5_000.0)


def test_identical_runs_are_byte_identical():
    first = run_scenario()
    second = run_scenario()
    assert first == second


def test_timeline_is_strictly_causal():
    outcome = run_scenario()
    times = [entry[2] for entry in outcome["timeline"]]
    assert times == sorted(times)
    assert times[0] > 0.0
