"""Failure injection: partitions mid-protocol, site crash and restart."""

import pytest

from repro.apps import sample_database
from repro.core.errors import PartitionError
from repro.hadas import IOO
from repro.mobility import MobilityManager
from repro.net import Network, Site, WAN
from repro.persistence import ObjectStore, checkpoint_site, restore_site
from repro.sim import Simulator


@pytest.fixture
def world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    return network, haifa, boston


class TestPartitions:
    def test_import_fails_cleanly_during_partition(self, world):
        network, haifa, boston = world
        ioo_h, ioo_b = IOO(haifa), IOO(boston)
        db = sample_database()
        ioo_h.integrate("employees", db, operations={"headcount": db.headcount})
        ioo_b.link("haifa")
        network.topology.partition({"haifa"}, {"boston"})
        with pytest.raises(PartitionError):
            ioo_b.import_apo("haifa", "employees")
        # no half-installed ambassador
        assert ioo_b.imports == {}
        network.topology.heal()
        amb = ioo_b.import_apo("haifa", "employees")
        assert amb.invoke("headcount") == 8

    def test_split_ambassador_survives_partition(self, world):
        """The autonomy argument: after a functionality split, the
        Ambassador keeps answering even with the origin unreachable."""
        network, haifa, boston = world
        ioo_h, ioo_b = IOO(haifa), IOO(boston)
        db = sample_database()
        apo = ioo_h.integrate(
            "employees", db,
            operations={"headcount": db.headcount, "departments": db.departments},
        )
        ioo_b.link("haifa")
        amb = ioo_b.import_apo("haifa", "employees")
        apo.broadcast_add_data("cached_headcount", db.headcount())
        apo.broadcast_add_method(
            "headcount_local", "return self.get('cached_headcount')"
        )
        network.topology.partition({"haifa"}, {"boston"})
        # forwarded queries fail...
        with pytest.raises(PartitionError):
            amb.invoke("headcount")
        # ...but the migrated functionality keeps working
        assert amb.invoke("headcount_local") == 8

    def test_migration_fails_atomically_into_partition(self, world):
        network, haifa, boston = world
        manager = MobilityManager(haifa)
        MobilityManager(boston)
        traveller = haifa.create_object(display_name="traveller")
        traveller.define_fixed_method("ping", "return 'pong'")
        traveller.seal()
        haifa.register_object(traveller)
        network.topology.partition({"haifa"}, {"boston"})
        with pytest.raises(PartitionError):
            manager.migrate(traveller, "boston")
        # the object is still exactly where it was
        assert haifa.has_object(traveller.guid)
        assert not boston.has_object(traveller.guid)


class TestSiteRestart:
    def make_guests(self, haifa, boston, manager_h):
        guests = []
        for index in range(3):
            guest = haifa.create_object(
                display_name=f"guest{index}", owner=haifa.principal
            )
            guest.define_fixed_data("serial", index)
            guest.define_fixed_data("visits", 0)
            guest.define_fixed_method(
                "install",
                "self.set('visits', self.get('visits') + 1)\n"
                "return self.get('visits')",
            )
            guest.define_fixed_method("serial_of", "return self.get('serial')")
            guest.seal()
            haifa.register_object(guest)
            manager_h.migrate(guest, "boston")
            guests.append(guest.guid)
        return guests

    def test_crash_checkpoint_restart_restore(self, world, tmp_path):
        network, haifa, boston = world
        manager_h = MobilityManager(haifa)
        MobilityManager(boston)
        guests = self.make_guests(haifa, boston, manager_h)

        # host checkpoints its guests, then crashes
        store = ObjectStore(tmp_path / "boston")
        report = checkpoint_site(boston, store)
        assert sorted(report.saved) == sorted(guests)
        assert report.clean
        network.unregister("boston")

        # messages to the crashed site fail at the transport
        with pytest.raises(Exception):
            haifa.request("boston", "ping", {})

        # a replacement boots on the same node and restores its guests
        reborn = Site(network, "boston", "mit.lcs")
        MobilityManager(reborn)
        restore_report = restore_site(reborn, store)
        assert sorted(restore_report.restored) == sorted(guests)
        assert restore_report.clean

        # identity, state and behaviour survived; install ran again
        for index, guid in enumerate(guests):
            obj = reborn.local_object(guid)
            assert obj.invoke("serial_of", caller=haifa.principal) == index
            assert obj.get_data("visits", caller=haifa.principal) == 2
            assert obj.environment["install_context"]["restored"] is True

        # and it is reachable remotely again
        ref = haifa.ref_to(guests[0], site="boston")
        assert ref.invoke("serial_of", caller=haifa.principal) == 0

    def test_native_infrastructure_skipped_not_failed(self, world, tmp_path):
        _network, haifa, _boston = world
        infra = haifa.create_object(display_name="infra")
        infra.define_fixed_method("native_op", lambda self, args, ctx: 1)
        infra.seal()
        haifa.register_object(infra)
        portable = haifa.create_object(display_name="portable")
        portable.define_fixed_method("op", "return 1")
        portable.seal()
        haifa.register_object(portable)
        store = ObjectStore(tmp_path / "haifa")
        report = checkpoint_site(haifa, store)
        assert report.saved == [portable.guid]
        assert report.skipped_native == [infra.guid]
        assert report.clean

    def test_restore_skips_already_registered(self, world, tmp_path):
        _network, haifa, _boston = world
        obj = haifa.create_object(display_name="stay")
        obj.define_fixed_data("x", 1)
        obj.seal()
        haifa.register_object(obj)
        store = ObjectStore(tmp_path / "haifa")
        checkpoint_site(haifa, store)
        report = restore_site(haifa, store)  # object never left
        assert report.restored == []
        assert haifa.local_object(obj.guid) is obj

    def test_corrupt_image_reported_not_fatal(self, world, tmp_path):
        _network, haifa, _boston = world
        good = haifa.create_object(display_name="good")
        good.define_fixed_data("x", 1)
        good.seal()
        haifa.register_object(good)
        bad = haifa.create_object(display_name="bad")
        bad.define_fixed_data("x", 2)
        bad.seal()
        haifa.register_object(bad)
        store = ObjectStore(tmp_path / "haifa")
        checkpoint_site(haifa, store)
        version = store.versions(bad.guid)[-1]
        store._image_path(bad.guid, version).write_bytes(b"garbage")
        haifa.unregister_object(good.guid)
        haifa.unregister_object(bad.guid)
        report = restore_site(haifa, store)
        assert report.restored == [good.guid]
        assert len(report.failed) == 1
        assert report.failed[0][0] == bad.guid


@pytest.mark.chaos
class TestChaosItinerary:
    """The headline chaos scenario: an agent completes a multi-site tour
    under flapping links, message faults, and one site crash-restarting
    from its checkpoint — and ends up exactly where and what a fault-free
    run ends up."""

    def test_faulted_tour_equals_fault_free_tour(self, tmp_path):
        from repro.faults import run_chaos_scenario

        faulted = run_chaos_scenario(seed=5, store_root=tmp_path)
        clean = run_chaos_scenario(
            seed=5, drop=0, dup=0, reorder=0, jitter=0, flap=False, crash=False
        )
        # the weather actually happened...
        assert faulted.faults.get("crash", 0) >= 1
        assert faulted.faults.get("flap", 0) >= 1
        # ...and yet: same itinerary, same observations, one live copy home
        assert faulted.completed and clean.completed
        assert faulted.itinerary == clean.itinerary
        assert faulted.observations == clean.observations
        assert faulted.live_copies == clean.live_copies == 1
        assert faulted.agent_at == clean.agent_at == ("site0",)
        assert faulted.unresolved == 0 and faulted.stray_objects == 0

    def test_crashed_site_rejoins_and_keeps_serving(self, tmp_path):
        from repro.faults import run_chaos_scenario

        report = run_chaos_scenario(seed=5, store_root=tmp_path)
        assert report.ok
        # the crash fired and the restarted incarnation re-entered the
        # protocol: visits at the crash site appear in the observations
        # on both tour passes, before and after the fail-stop
        assert report.faults["crash"] == 1
        crash_site = report.sites[len(report.sites) // 2]
        visits = [stop for stop, _ in report.observations if stop == crash_site]
        assert len(visits) == 2
