"""The grand tour: every subsystem in one evolving five-site world.

A long-running scenario asserting global invariants after each act:
integration, discovery, import, negotiation, mediation, interop
programs (MPL), maintenance, rolling updates, partition, heal,
checkpoint, crash, restart — one continuous history.
"""

import pytest

from repro.apps import Calculator, sample_database
from repro.core import HtmlText, Kind
from repro.core.errors import PartitionError
from repro.hadas import (
    FleetUpdater,
    InterfaceRequirement,
    InterfaceRevision,
    IOO,
    attach_argument_mediator,
    negotiate,
)
from repro.hadas.trader import Trader
from repro.net import LAN, Network, Site, WAN
from repro.persistence import ObjectStore, checkpoint_site, restore_site
from repro.sim import Simulator

SITES = ("hub", "db-east", "db-west", "calc-farm", "edge")


@pytest.fixture
def world(tmp_path):
    network = Network(Simulator(seed=7))
    sites = {name: Site(network, name, f"net.{name}") for name in SITES}
    for name in SITES[1:]:
        network.topology.connect("hub", name, *WAN)
    network.topology.connect("db-east", "db-west", *LAN)
    ioos = {name: IOO(site) for name, site in sites.items()}
    traders = {name: Trader(ioo) for name, ioo in ioos.items()}
    return network, sites, ioos, traders, tmp_path


def test_grand_tour(world):
    network, sites, ioos, traders, tmp_path = world

    # -- act 1: integration -------------------------------------------------
    east_db = sample_database()
    east = ioos["db-east"].integrate("employees", east_db)
    east.expose(
        "salary_of", east_db.salary_of, tags=["hr", "salary"],
        params=[{"name": "name", "kind": "text"}],
    )
    east.expose("headcount", east_db.headcount, tags=["hr", "stats"])
    calc = Calculator()
    farm = ioos["calc-farm"].integrate("calc", calc)
    farm.expose("evaluate", calc.evaluate, tags=["compute"])
    assert sorted(ioos["db-east"].home) == ["employees"]

    # -- act 2: discovery across the vicinity --------------------------------
    for target in ("db-east", "db-west", "calc-farm"):
        ioos["hub"].link(target)
    offers = traders["hub"].discover(tags=["hr"])
    assert {offer.operation for offer in offers} == {"salary_of", "headcount"}

    # -- act 3: import + mediation -------------------------------------------
    amb = ioos["hub"].import_apo("db-east", "employees")
    attach_argument_mediator(
        amb, "salary_of", [Kind.TEXT], updater=amb.owner
    )
    # scraped HTML flows straight in
    assert amb.invoke("salary_of", [HtmlText("<td>moshe</td>")]) == 4500

    # -- act 4: negotiation for the hub's expected verb -----------------------
    report = negotiate(
        amb,
        [InterfaceRequirement("lookup_salary", arity=1, tags=("salary",))],
        host=sites["hub"].principal,
        updater=amb.owner,
    )
    assert report.adapted == {"lookup_salary": "salary_of"}

    # -- act 5: an MPL interop program over two imports ------------------------
    ioos["hub"].import_apo("calc-farm", "calc")
    ioos["hub"].add_program_mpl(
        """
        method pay_plus_bonus(name, bonus_percent) {
          let hr = imports["employees"]
          let calc = imports["calc"]
          let base = hr.lookup_salary(name)
          return calc.evaluate(str(base) + " * (100 + "
                               + str(bonus_percent) + ") / 100")
        }
        """
    )
    assert ioos["hub"].run_program("pay_plus_bonus", ["dana", 10]) == 7920

    # -- act 6: maintenance notice, then lift ----------------------------------
    east.broadcast_maintenance("db-east offline tonight")
    assert amb.invoke("headcount") == "db-east offline tonight"
    east.broadcast_lift_maintenance()
    assert amb.invoke("headcount") == 8

    # -- act 7: rolling update -------------------------------------------------
    updater = FleetUpdater(east)
    rollout = updater.rollout(
        InterfaceRevision(1, add_methods={"version": "return 'r1'"}))
    assert rollout.clean
    assert amb.invoke("version") == "r1"

    # -- act 8: partition and partial degradation --------------------------------
    network.topology.partition({"db-east", "db-west"}, {"hub", "calc-farm", "edge"})
    with pytest.raises(PartitionError):
        amb.invoke("headcount")  # forwarded: needs the origin
    assert amb.invoke("version") == "r1"  # pushed earlier: answers locally
    # updates cannot reach the fleet...
    degraded = updater.rollout(
        InterfaceRevision(2, add_methods={"version2": "return 'r2'"}))
    assert not degraded.clean
    network.topology.heal()
    recovered = updater.rollout(
        InterfaceRevision(2, add_methods={"version2": "return 'r2'"}))
    assert recovered.clean
    assert amb.invoke("version2") == "r2"

    # -- act 9: checkpoint, crash, restart ---------------------------------------
    store = ObjectStore(tmp_path / "hub-store")
    saved = checkpoint_site(sites["hub"], store)
    assert amb.guid in saved.saved
    network.unregister("hub")
    reborn = Site(network, "hub", "net.hub")
    restored = restore_site(reborn, store)
    assert amb.guid in restored.restored

    revived = reborn.local_object(amb.guid)
    # everything the ambassador accumulated survived: the negotiation
    # adapter, both pushed revisions, and the origin link
    assert revived.invoke("version") == "r1"
    assert revived.invoke("version2") == "r2"
    assert revived.invoke("lookup_salary", ["moshe"]) == 4500  # via origin
    assert revived.invoke("headcount") == 8
    # (the native mediator did not survive — host-side code is
    # reconstructed by the host, not persisted)
    from repro.mobility import portability_report

    assert portability_report(revived) == []

    # -- epilogue: the books balance ----------------------------------------------
    assert network.messages_sent > 40
    assert network.bytes_sent > 10_000
    assert east_db.queries_served >= 4
