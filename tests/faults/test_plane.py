"""FaultPlane pipeline: composition, verdicts, accounting, digests."""

from __future__ import annotations

from repro.faults import (
    DropInjector,
    DuplicateInjector,
    FaultPlane,
    JitterInjector,
    MessageInfo,
)
from repro.net import Network
from repro.sim import Simulator

from .conftest import make_recorders


def composed_world(seed):
    network, recorders = make_recorders(seed=seed)
    plane = FaultPlane(network, seed=seed)
    plane.add(DropInjector(rate=0.2))
    plane.add(DuplicateInjector(rate=0.2))
    plane.add(JitterInjector(max_jitter=0.01, rate=0.5))
    for index in range(60):
        network.send("a", "b", "data", index)
    network.run()
    return network, plane, recorders


class TestPipeline:
    def test_counters_match_the_trace(self):
        network, plane, _ = composed_world(seed=21)
        assert network.messages_dropped == plane.counts["drop"]
        assert network.messages_duplicated == plane.counts["duplicate"]
        assert plane.counts["drop"] > 0  # the seed actually exercises faults
        assert plane.counts["duplicate"] > 0

    def test_compound_verdicts_are_stamped_on_messages(self):
        _, plane, recorders = composed_world(seed=21)
        verdicts = {m.verdict for m in recorders["b"].received}
        assert "ok" in verdicts  # unfaulted messages say so
        compound = [v for v in verdicts if "+" in v]
        assert any("jitter" in v for v in verdicts if v != "ok")
        for verdict in compound:
            assert set(verdict.split("+")) <= {"duplicate", "jitter"}

    def test_drop_short_circuits_the_pipeline(self):
        network, recorders = make_recorders()
        plane = FaultPlane(network, seed=1)
        plane.add(DropInjector(rate=1.0))
        trailing = plane.add(DuplicateInjector(rate=1.0))
        network.send("a", "b", "data", "x")
        network.run()
        # the dropped message never reached the duplicate stage
        assert trailing.injected == 0
        assert network.messages_duplicated == 0

    def test_seed_defaults_to_the_simulator(self):
        network = Network(Simulator(99))
        plane = FaultPlane(network)
        assert plane.seed == 99
        assert network.fault_plane is plane

    def test_same_name_injectors_get_distinct_streams(self):
        network, _ = make_recorders()
        plane = FaultPlane(network, seed=7)
        first = plane.add(DropInjector(rate=0.5))
        second = plane.add(DropInjector(rate=0.5))
        draws_first = [first.rng.random() for _ in range(8)]
        draws_second = [second.rng.random() for _ in range(8)]
        assert draws_first != draws_second


class TestDigest:
    def test_identical_worlds_identical_digests(self):
        _, plane_a, rec_a = composed_world(seed=33)
        _, plane_b, rec_b = composed_world(seed=33)
        assert plane_a.digest() == plane_b.digest()
        assert [m.payload for m in rec_a["b"].received] == [
            m.payload for m in rec_b["b"].received
        ]

    def test_different_seeds_different_digests(self):
        _, plane_a, _ = composed_world(seed=33)
        _, plane_b, _ = composed_world(seed=34)
        assert plane_a.digest() != plane_b.digest()

    def test_digest_is_stable_for_an_empty_trace(self):
        network, _ = make_recorders()
        plane = FaultPlane(network, seed=1)
        assert plane.digest() == FaultPlane(
            make_recorders()[0], seed=2
        ).digest()


class TestMessageInfo:
    def test_injectors_see_metadata_not_payloads(self):
        seen: list[MessageInfo] = []

        class Spy(DropInjector):
            def judge(self, info, delays):
                seen.append(info)
                return None, delays

        network, _ = make_recorders()
        FaultPlane(network, seed=1).add(Spy(rate=1.0))
        network.send("a", "b", "data", {"secret": "payload"})
        network.run()
        info = seen[0]
        assert info.kind == "data" and info.src == "a" and info.dst == "b"
        assert info.size > 0 and info.base_delay > 0
        assert not hasattr(info, "payload")
