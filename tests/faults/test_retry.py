"""Timeout + backoff retries, and at-most-once execution under them."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    NetworkError,
    PartitionError,
    RequestTimeoutError,
)
from repro.faults import DropInjector, FaultPlane
from repro.net import RetryPolicy

from ..conftest import build_counter
from .conftest import make_sites

FAST = RetryPolicy(attempts=4, timeout=0.5, backoff=0.05, multiplier=2.0)


def counter_world(seed=0):
    network, sites = make_sites(seed=seed)
    counter = build_counter()
    sites["b"].register_object(counter)
    return network, sites, counter


class TestRetryPolicy:
    def test_backoff_schedule_caps(self):
        policy = RetryPolicy(backoff=0.5, multiplier=2.0, max_backoff=1.6)
        assert policy.backoff_for(0) == 0.5
        assert policy.backoff_for(1) == 1.0
        assert policy.backoff_for(2) == 1.6  # capped
        assert policy.backoff_for(9) == 1.6

    @pytest.mark.parametrize(
        "bad",
        [
            dict(attempts=0),
            dict(timeout=0.0),
            dict(backoff=-1.0),
            dict(multiplier=0.5),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(NetworkError):
            RetryPolicy(**bad)


class TestRetries:
    def test_dropped_requests_are_retried_to_success(self):
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"], limit=2)
        )
        result = sites["a"].remote_invoke(
            "b", counter.guid, "increment", [1], policy=FAST
        )
        assert result == 1
        assert counter.get_data("count", caller=counter.owner) == 1

    def test_dropped_reply_is_replayed_not_reexecuted(self):
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["reply"], limit=1)
        )
        result = sites["a"].remote_invoke(
            "b", counter.guid, "increment", [1], policy=FAST
        )
        assert result == 1
        # the retried request hit the served-reply ledger: the handler ran
        # exactly once and the recorded reply was replayed
        assert counter.get_data("count", caller=counter.owner) == 1
        assert sites["b"].replayed_requests == 1

    def test_exhausted_attempts_raise_timeout(self):
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"])
        )
        with pytest.raises(RequestTimeoutError):
            sites["a"].remote_invoke(
                "b", counter.guid, "increment", [1], policy=FAST
            )
        # bookkeeping fully unwound: nothing awaited, nothing pending
        assert sites["a"]._awaiting == set()
        assert sites["a"]._pending == {}
        assert counter.get_data("count", caller=counter.owner) == 0

    def test_late_reply_after_timeout_is_stale(self):
        network, sites, counter = counter_world()
        # a one-shot policy whose timeout is shorter than the LAN RTT
        rtt = network.topology.path_cost("a", "b", 200) * 2
        impatient = RetryPolicy(attempts=1, timeout=rtt / 10, backoff=0.01)
        with pytest.raises(RequestTimeoutError):
            sites["a"].remote_invoke(
                "b", counter.guid, "increment", [1], policy=impatient
            )
        network.run()  # the reply lands after the caller gave up
        assert sites["a"].stale_replies == 1
        assert sites["a"]._pending == {}
        # ...but the remote side did execute (at-least-once ambiguity)
        assert counter.get_data("count", caller=counter.owner) == 1

    def test_site_default_policy_applies(self):
        network, sites, counter = counter_world()
        sites["a"].retry_policy = FAST
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"], limit=1)
        )
        assert (
            sites["a"].remote_invoke("b", counter.guid, "increment", [1]) == 1
        )


class TestPartitionSemantics:
    def test_legacy_no_policy_path_raises_immediately(self):
        network, sites, counter = counter_world()
        network.topology.set_link_state("a", "b", False)
        with pytest.raises(PartitionError):
            sites["a"].remote_invoke("b", counter.guid, "increment", [1])
        assert sites["a"]._awaiting == set()
        assert sites["a"]._pending == {}

    def test_policy_with_nothing_sent_stays_atomic(self):
        network, sites, counter = counter_world()
        network.topology.set_link_state("a", "b", False)
        # every attempt fails at send time: no bytes hit the wire, so the
        # failure is atomic, not ambiguous
        with pytest.raises(PartitionError):
            sites["a"].remote_invoke(
                "b", counter.guid, "increment", [1], policy=FAST
            )
        assert counter.get_data("count", caller=counter.owner) == 0

    def test_partition_after_send_is_ambiguous(self):
        network, sites, counter = counter_world()
        cut_after_first = {"done": False}
        original_send = network.send

        def flaky_send(*args, **kwargs):
            if cut_after_first["done"]:
                raise PartitionError("'a' cannot reach 'b'")
            cut_after_first["done"] = True
            return original_send(*args, **kwargs)

        network.send = flaky_send
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"])
        )
        with pytest.raises(RequestTimeoutError):
            sites["a"].remote_invoke(
                "b", counter.guid, "increment", [1], policy=FAST
            )

    def test_reply_path_partition_is_contained(self):
        network, sites, counter = counter_world()
        # the request gets through, then the link dies before the reply
        original_receive = sites["b"].receive

        def receive_and_cut(message):
            network.topology.set_link_state("a", "b", False)
            original_receive(message)

        sites["b"].receive = receive_and_cut
        with pytest.raises(RequestTimeoutError):
            sites["a"].remote_invoke(
                "b", counter.guid, "increment", [1], policy=FAST
            )
        assert sites["b"].replies_unsendable >= 1
