"""The canonical chaos scenario and the ``repro chaos`` command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.faults import run_chaos_scenario


@pytest.mark.chaos
class TestScenario:
    def test_default_run_holds_the_invariants(self):
        report = run_chaos_scenario(seed=0)
        assert report.ok
        assert report.live_copies == 1
        assert report.stray_objects == 0
        assert report.unresolved == 0

    def test_every_fault_family_actually_fires(self):
        report = run_chaos_scenario(seed=0)
        assert report.faults.get("crash", 0) >= 1
        assert report.faults.get("flap", 0) >= 1
        assert report.faults.get("drop", 0) + report.faults.get(
            "duplicate", 0
        ) >= 1

    def test_same_seed_bit_for_bit(self):
        first = run_chaos_scenario(seed=7)
        second = run_chaos_scenario(seed=7)
        assert first.to_lines() == second.to_lines()
        assert first.trace_digest == second.trace_digest

    def test_different_seeds_differ(self):
        first = run_chaos_scenario(seed=7)
        second = run_chaos_scenario(seed=8)
        assert first.trace_digest != second.trace_digest
        assert first.itinerary != second.itinerary  # the route is seeded too

    def test_fault_free_run_is_clean(self):
        report = run_chaos_scenario(
            seed=7, drop=0, dup=0, reorder=0, jitter=0, flap=False, crash=False
        )
        assert report.ok and report.completed
        assert report.faults == {}
        assert report.messages["dropped"] == 0
        assert report.messages["duplicated"] == 0

    def test_observations_cover_the_itinerary(self):
        report = run_chaos_scenario(seed=0)
        assert report.observations is not None
        assert [stop for stop, _ in report.observations] == list(
            report.itinerary
        )

    def test_store_root_is_honoured(self, tmp_path):
        report = run_chaos_scenario(seed=0, store_root=tmp_path)
        assert report.ok
        # the crash checkpointed into the caller-supplied store
        assert any(tmp_path.iterdir())


@pytest.mark.chaos
class TestChaosCli:
    def test_cli_output_is_reproducible(self, capsys):
        assert main(["chaos", "--seed", "13"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--seed", "13"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert first.startswith("chaos seed 13: OK")

    def test_cli_flags_shape_the_run(self, capsys):
        assert (
            main(
                [
                    "chaos", "--seed", "3", "--sites", "4", "--passes", "1",
                    "--drop", "0.2", "--no-flap", "--no-crash",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "site3" in out and "site4" not in out
        assert "fault crash" not in out
        assert "fault flap" not in out
