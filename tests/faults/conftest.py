"""Shared scaffolding for the fault-injection suite."""

from __future__ import annotations

from repro.net import LAN, Network, Site
from repro.sim import Simulator


class Recorder:
    """A bare endpoint that logs every delivery, for transport-level tests."""

    def __init__(self, network: Network, site_id: str):
        self.site_id = site_id
        self.received = []
        self.lamports = []
        network.register(self)

    def receive(self, message) -> None:
        self.received.append(message)

    def witness_lamport(self, remote: int) -> None:
        self.lamports.append(remote)


def make_recorders(
    seed: int = 0, names: tuple[str, ...] = ("a", "b")
) -> tuple[Network, dict[str, Recorder]]:
    """A LAN chain of :class:`Recorder` endpoints (sends must originate
    from a live endpoint, so even pure senders need one)."""
    network = Network(Simulator(seed))
    recorders = {name: Recorder(network, name) for name in names}
    for left, right in zip(names, names[1:]):
        network.topology.connect(left, right, *LAN)
    return network, recorders


def make_sites(
    seed: int = 0, names: tuple[str, ...] = ("a", "b")
) -> tuple[Network, dict[str, Site]]:
    """A network of real sites on a LAN chain — the shared site factory
    from :mod:`tests.conftest`, pinned to this suite's chain topology."""
    from tests.conftest import make_site_world

    return make_site_world(seed=seed, names=names, topology="chain")
