"""Per-injector unit tests: effect, accounting, and seed determinism."""

from __future__ import annotations

import pytest

from repro.core.errors import NetworkError
from repro.faults import (
    CrashRestartInjector,
    DropInjector,
    DuplicateInjector,
    FaultPlane,
    JitterInjector,
    LinkFlapInjector,
    MessageInjector,
    ReorderInjector,
)

from .conftest import Recorder, make_recorders


def burst(network, n=10, src="a", dst="b", kind="data"):
    for index in range(n):
        network.send(src, dst, kind, index)
    network.run()


class TestDrop:
    def test_drops_everything_at_rate_one(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(DropInjector(rate=1.0))
        burst(network, 10)
        assert recorders["b"].received == []
        assert network.messages_dropped == 10
        assert network.bytes_dropped > 0
        assert network.messages_sent == 10  # sends still counted

    def test_limit_caps_injected_faults(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(DropInjector(rate=1.0, limit=3))
        burst(network, 10)
        payloads = [m.payload for m in recorders["b"].received]
        assert payloads == [3, 4, 5, 6, 7, 8, 9]
        assert network.messages_dropped == 3

    def test_rate_validation(self):
        with pytest.raises(NetworkError):
            DropInjector(rate=1.5)


class TestDuplicate:
    def test_every_message_arrives_twice(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(DuplicateInjector(rate=1.0))
        burst(network, 5)
        payloads = sorted(m.payload for m in recorders["b"].received)
        assert payloads == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
        assert network.messages_duplicated == 5
        assert all(m.verdict == "duplicate" for m in recorders["b"].received)

    def test_copy_trails_the_original(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(DuplicateInjector(rate=1.0, spread=0.5))
        network.send("a", "b", "data", "only")
        network.run()
        assert len(recorders["b"].received) == 2


class TestReorder:
    def test_held_message_is_overtaken(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=0.0)  # inert: proves pipeline composition is safe
        )
        plane = network.fault_plane
        plane.add(ReorderInjector(rate=1.0, hold=1.0, limit=1))
        network.send("a", "b", "data", "first")
        network.send("a", "b", "data", "second")
        network.run()
        assert [m.payload for m in recorders["b"].received] == ["second", "first"]

    def test_only_kinds_focuses_the_injector(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(
            ReorderInjector(rate=1.0, hold=1.0, only_kinds=["slow"])
        )
        network.send("a", "b", "slow", "held")
        network.send("a", "b", "data", "prompt")
        network.run()
        assert [m.payload for m in recorders["b"].received] == ["prompt", "held"]


class TestJitter:
    def test_delivery_is_late_but_complete(self):
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(JitterInjector(max_jitter=0.5))
        baseline = network.topology.path_cost("a", "b", 1)
        network.send("a", "b", "data", "x")
        network.run()
        assert [m.payload for m in recorders["b"].received] == ["x"]
        assert network.now >= baseline  # jitter only ever adds latency
        assert recorders["b"].received[0].verdict == "jitter"


class TestKindFilters:
    def test_skip_kinds(self):
        injector = DropInjector(rate=1.0, skip_kinds=["reply"])
        network, recorders = make_recorders()
        FaultPlane(network, seed=1).add(injector)
        network.send("a", "b", "reply", "spared")
        network.send("a", "b", "data", "doomed")
        network.run()
        assert [m.payload for m in recorders["b"].received] == ["spared"]

    def test_judge_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MessageInjector().judge(None, [0.0])


class TestFlap:
    def run_flaps(self, seed):
        network, recorders = make_recorders(seed=seed)
        plane = FaultPlane(network, seed=seed)
        plane.add(LinkFlapInjector("a", "b", every=0.5, down_for=0.1, flaps=4))
        network.run()
        return network, plane

    def test_flap_count_and_recovery(self):
        network, plane = self.run_flaps(seed=3)
        assert plane.counts["flap"] == 4
        downs = [entry for entry in plane.trace if entry[1] == "flap-down"]
        ups = [entry for entry in plane.trace if entry[1] == "flap-up"]
        assert len(downs) == len(ups) == 4
        assert network.topology.link_between("a", "b").up  # ends healed

    def test_same_seed_same_schedule(self):
        _, first = self.run_flaps(seed=3)
        _, second = self.run_flaps(seed=3)
        assert first.trace == second.trace
        assert first.digest() == second.digest()

    def test_different_seed_different_schedule(self):
        _, first = self.run_flaps(seed=3)
        _, second = self.run_flaps(seed=4)
        assert first.trace != second.trace


class TestCrashRestart:
    def test_default_crash_detaches_the_site(self):
        network, recorders = make_recorders()
        plane = FaultPlane(network, seed=5)
        reborn = {}

        def on_restart(net, site_id):
            reborn[site_id] = Recorder(net, site_id)

        plane.add(
            CrashRestartInjector("b", at=0.5, down_for=0.5, on_restart=on_restart)
        )
        network.simulator.schedule(0.6, lambda: network.is_live("b"))
        network.run()
        assert plane.counts["crash"] == 1
        assert [entry[1] for entry in plane.trace] == ["crash", "restart"]
        assert network.is_live("b")
        assert network.endpoint("b") is reborn["b"]

    def test_sends_to_crashed_site_fail(self):
        network, recorders = make_recorders()
        plane = FaultPlane(network, seed=5)
        plane.add(CrashRestartInjector("b", at=0.5, down_for=10.0))
        failures = []

        def try_send():
            try:
                network.send("a", "b", "data", "x")
            except NetworkError as exc:
                failures.append(str(exc))

        network.simulator.schedule(1.0, try_send)
        network.run()
        assert failures and "unknown site" in failures[0]

    def test_in_flight_delivery_to_dead_site_is_dropped(self):
        network, recorders = make_recorders()
        plane = FaultPlane(network, seed=5)
        plane.add(JitterInjector(max_jitter=2.0))  # stretch the flight time
        plane.add(CrashRestartInjector("b", at=0.0005, down_for=10.0))
        network.send("a", "b", "data", "doomed")
        network.run()
        assert recorders["b"].received == []
        assert network.messages_undeliverable == 1

    def test_quiescent_crash_waits_for_handlers(self):
        network, recorders = make_recorders()
        recorders["b"].handling_depth = 1  # site mid-handler at crash time
        plane = FaultPlane(network, seed=5)
        plane.add(
            CrashRestartInjector("b", at=0.1, down_for=0.1, grace=0.05)
        )
        release = network.simulator.schedule(
            0.3, lambda: setattr(recorders["b"], "handling_depth", 0)
        )
        network.run()
        crash_time = [e[0] for e in plane.trace if e[1] == "crash"][0]
        assert crash_time >= 0.3  # deferred past the busy window


class TestCrossSeedDeterminism:
    def run_world(self, seed):
        network, recorders = make_recorders(seed=seed)
        plane = FaultPlane(network, seed=seed)
        plane.add(DropInjector(rate=0.3))
        plane.add(DuplicateInjector(rate=0.3))
        burst(network, 40)
        return plane, [m.payload for m in recorders["b"].received]

    def test_identical_seeds_identical_traces(self):
        plane_a, got_a = self.run_world(11)
        plane_b, got_b = self.run_world(11)
        assert plane_a.trace == plane_b.trace
        assert got_a == got_b

    def test_distinct_seeds_distinct_traces(self):
        plane_a, _ = self.run_world(11)
        plane_b, _ = self.run_world(12)
        assert plane_a.trace != plane_b.trace
