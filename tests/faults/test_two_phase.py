"""Exactly-once migration under message faults: the two-phase handoff."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PartitionError,
    RemoteInvocationError,
    TransferUnresolvedError,
)
from repro.faults import DropInjector, DuplicateInjector, FaultPlane, ReorderInjector
from repro.mobility import MobilityManager
from repro.mobility.package import pack
from repro.net import RetryPolicy

from .conftest import make_sites

FAST = RetryPolicy(attempts=3, timeout=0.5, backoff=0.05, multiplier=2.0)


def make_traveller(site):
    obj = site.create_object(display_name="traveller", owner=site.principal)
    obj.define_fixed_data("log", [])
    obj.define_fixed_method(
        "install",
        "context = self.env.get('install_context', {})\n"
        "log = self.get('log')\n"
        "log.append(context.get('site'))\n"
        "self.set('log', log)\n"
        "return context.get('site')",
    )
    obj.define_fixed_method("log_of", "return self.get('log')")
    obj.seal()
    site.register_object(obj)
    return obj


@pytest.fixture
def world():
    network, sites = make_sites(seed=0, names=("a", "b", "c"))
    managers = {
        name: MobilityManager(site, retry_policy=FAST)
        for name, site in sites.items()
    }
    return network, sites, managers


def live_copies(sites, guid):
    return [name for name, site in sorted(sites.items()) if site.has_object(guid)]


class TestFaultedMigration:
    def test_dropped_prepare_is_retried(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["transfer.prepare"], limit=1)
        )
        traveller = make_traveller(sites["a"])
        ref = managers["a"].migrate(traveller, "b")
        assert live_copies(sites, traveller.guid) == ["b"]
        assert managers["b"].arrivals == 1
        assert ref.invoke("log_of", caller=traveller.owner) == ["b"]

    def test_duplicated_prepare_installs_once(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DuplicateInjector(rate=1.0, only_kinds=["transfer.prepare"])
        )
        traveller = make_traveller(sites["a"])
        managers["a"].migrate(traveller, "b")
        network.run()  # let the duplicate delivery land too
        assert live_copies(sites, traveller.guid) == ["b"]
        assert managers["b"].arrivals == 1
        # the duplicate was absorbed by the served-request ledger
        assert sites["b"].replayed_requests == 1
        # install ran once: exactly one arrival entry in the object's log
        obj = sites["b"].local_object(traveller.guid)
        assert obj.invoke("log_of", [], caller=traveller.owner) == ["b"]

    def test_lost_ack_is_replayed(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["reply"], limit=1)
        )
        traveller = make_traveller(sites["a"])
        managers["a"].migrate(traveller, "b")
        assert live_copies(sites, traveller.guid) == ["b"]
        assert managers["b"].arrivals == 1
        assert managers["a"].departures == 1


class TestUnresolvedTransfers:
    def test_all_prepares_lost_leaves_the_original(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["transfer.prepare"])
        )
        traveller = make_traveller(sites["a"])
        with pytest.raises(TransferUnresolvedError) as excinfo:
            managers["a"].migrate(traveller, "b")
        assert live_copies(sites, traveller.guid) == ["a"]
        assert excinfo.value.guid == traveller.guid
        assert excinfo.value.transfer_id in managers["a"].unresolved

    def test_reconcile_confirms_the_abort(self, world):
        network, sites, managers = world
        plane = FaultPlane(network, seed=1)
        injector = plane.add(
            DropInjector(rate=1.0, only_kinds=["transfer.prepare"])
        )
        traveller = make_traveller(sites["a"])
        with pytest.raises(TransferUnresolvedError):
            managers["a"].migrate(traveller, "b")
        injector.rate = 0.0  # the weather clears
        outcomes = managers["a"].reconcile()
        assert list(outcomes.values()) == ["aborted"]
        assert managers["a"].unresolved == {}
        assert live_copies(sites, traveller.guid) == ["a"]

    def test_reconcile_completes_a_settled_move(self, world):
        network, sites, managers = world
        plane = FaultPlane(network, seed=1)
        # the PREPARE lands, every ACK dies: settled remotely, unresolved
        # locally — transiently two registered copies, by design
        injector = plane.add(DropInjector(rate=1.0, only_kinds=["reply"]))
        traveller = make_traveller(sites["a"])
        with pytest.raises(TransferUnresolvedError):
            managers["a"].migrate(traveller, "b")
        assert live_copies(sites, traveller.guid) == ["a", "b"]
        injector.rate = 0.0
        outcomes = managers["a"].reconcile()
        assert list(outcomes.values()) == ["settled"]
        assert live_copies(sites, traveller.guid) == ["b"]
        assert managers["a"].departures == 1

    def test_reconcile_keeps_unreachable_entries(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["transfer.prepare"])
        )
        traveller = make_traveller(sites["a"])
        with pytest.raises(TransferUnresolvedError):
            managers["a"].migrate(traveller, "b")
        network.topology.set_link_state("a", "b", False)
        outcomes = managers["a"].reconcile()
        assert list(outcomes.values()) == ["unreachable"]
        assert len(managers["a"].unresolved) == 1  # kept for the next pass

    def test_late_prepare_after_abort_is_vetoed(self, world):
        network, sites, managers = world
        plane = FaultPlane(network, seed=1)
        # hold the only PREPARE far beyond the sender's patience
        plane.add(
            ReorderInjector(
                rate=1.0, hold=30.0, only_kinds=["transfer.prepare"], limit=1
            )
        )
        impatient = RetryPolicy(attempts=1, timeout=0.5, backoff=0.05)
        managers["a"].retry_policy = impatient
        traveller = make_traveller(sites["a"])
        with pytest.raises(TransferUnresolvedError):
            managers["a"].migrate(traveller, "b")
        outcomes = managers["a"].reconcile()  # query beats the crawling PREPARE
        assert list(outcomes.values()) == ["aborted"]
        network.run()  # now the held PREPARE finally arrives...
        # ...and is refused: the veto prevents a resurrected second copy
        assert live_copies(sites, traveller.guid) == ["a"]

    def test_partition_before_send_is_atomic(self, world):
        network, sites, managers = world
        network.topology.set_link_state("a", "b", False)
        network.topology.set_link_state("b", "c", False)
        traveller = make_traveller(sites["a"])
        with pytest.raises(PartitionError):
            managers["a"].migrate(traveller, "b")
        # nothing went out, so nothing is unresolved
        assert managers["a"].unresolved == {}
        assert live_copies(sites, traveller.guid) == ["a"]


class TestReceiverLedger:
    def test_prepare_for_an_object_already_here_settles_without_reinstall(
        self, world
    ):
        network, sites, managers = world
        traveller = make_traveller(sites["b"])  # "restored from checkpoint"
        report = sites["a"].request(
            "b",
            "transfer.prepare",
            {
                "transfer_id": "xfer:test:1",
                "package": pack(traveller),
                "install_args": [],
            },
        )
        assert report["guid"] == traveller.guid
        assert managers["b"].duplicates_suppressed == 1
        assert managers["b"].arrivals == 0  # no second install
        assert live_copies(sites, traveller.guid) == ["b"]

    def test_query_for_unknown_transfer_aborts_it(self, world):
        network, sites, managers = world
        status = sites["a"].request(
            "b", "transfer.query", {"transfer_id": "xfer:ghost:9"}
        )
        assert status == {"state": "aborted"}
        # and the veto sticks: a later PREPARE under that id is refused
        traveller = make_traveller(sites["a"])
        with pytest.raises(RemoteInvocationError, match="aborted"):
            sites["a"].request(
                "b",
                "transfer.prepare",
                {
                    "transfer_id": "xfer:ghost:9",
                    "package": pack(traveller),
                    "install_args": [],
                },
            )


class TestForward:
    def test_forward_rides_the_two_phase_machinery(self, world):
        network, sites, managers = world
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["transfer.prepare"], limit=1)
        )
        traveller = make_traveller(sites["a"])
        managers["a"].migrate(traveller, "b")
        ref = managers["a"].forward("b", traveller.guid, "c")
        assert live_copies(sites, traveller.guid) == ["c"]
        assert ref.site == "c"
