"""TraceContext: the wire identity of a distributed trace."""

from __future__ import annotations

import pytest

from repro.net.marshal import (
    TRACE_FIELD,
    attach_trace,
    extract_trace,
    marshal,
    unmarshal,
)
from repro.telemetry import TraceContext

pytestmark = pytest.mark.telemetry


class TestWireForm:
    def test_round_trip(self):
        ctx = TraceContext("t01", "s07", {"workload": "fig1"})
        again = TraceContext.from_wire(ctx.to_wire())
        assert again == ctx

    def test_survives_the_marshal(self):
        ctx = TraceContext("t01", "s07", {"workload": "fig1"})
        decoded = unmarshal(marshal(ctx.to_wire()))
        assert TraceContext.from_wire(decoded) == ctx

    def test_baggage_is_omitted_when_empty(self):
        assert "baggage" not in TraceContext("t01", "s01").to_wire()

    @pytest.mark.parametrize(
        "raw",
        [
            None,
            "t01/s01",
            42,
            [],
            {},
            {"trace_id": "t01"},
            {"span_id": "s01"},
            {"trace_id": "", "span_id": "s01"},
            {"trace_id": "t01", "span_id": 9},
            {"trace_id": 9, "span_id": "s01"},
        ],
    )
    def test_malformed_wire_decodes_to_none(self, raw):
        # a hostile peer can at worst send an unusable context, never a crash
        assert TraceContext.from_wire(raw) is None

    def test_malformed_baggage_is_dropped_not_fatal(self):
        ctx = TraceContext.from_wire(
            {"trace_id": "t01", "span_id": "s01", "baggage": "oops"}
        )
        assert ctx is not None
        assert ctx.baggage == {}

    def test_child_keeps_trace_and_baggage(self):
        ctx = TraceContext("t01", "s01", {"k": "v"})
        child = ctx.child("s02")
        assert child.trace_id == "t01"
        assert child.span_id == "s02"
        assert child.baggage == {"k": "v"}


class TestEnvelopeHelpers:
    def test_attach_and_extract(self):
        payload = {"method": "add", "args": [1]}
        stamped = attach_trace(payload, {"trace_id": "t01", "span_id": "s01"})
        assert stamped is not payload  # the original is never mutated
        assert TRACE_FIELD in stamped
        assert extract_trace(stamped) == {"trace_id": "t01", "span_id": "s01"}
        assert TRACE_FIELD not in payload

    def test_non_mapping_payloads_pass_through(self):
        assert attach_trace([1, 2], {"trace_id": "t", "span_id": "s"}) == [1, 2]
        assert extract_trace([1, 2]) is None
        assert extract_trace({"method": "add"}) is None
