"""Chaos: the trace stays coherent while the network misbehaves.

Two fronts. Duplicated/reordered/dropped RMI must still produce a
single, schema-valid trace per request with every span ended and
parented. An aborted two-phase migration — refused by admission, or
unresolved and later vetoed by reconciliation — must close its spans
with honest statuses instead of leaving orphans behind.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PolicyViolationError,
    RemoteInvocationError,
    TransferUnresolvedError,
)
from repro.faults import (
    DropInjector,
    DuplicateInjector,
    FaultPlane,
    ReorderInjector,
)
from repro.mobility import MobilityManager
from repro.telemetry import Telemetry, enabled, span_lines, validate_span_lines

from .conftest import FAST, make_sites

pytestmark = [pytest.mark.telemetry, pytest.mark.chaos]


def make_counter(site):
    counter = site.create_object(display_name="chaos-counter")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "add",
        "n = self.get('count') + (args[0] if args else 1)\n"
        "self.set('count', n)\n"
        "return n",
    )
    counter.seal()
    site.register_object(counter)
    return counter


def make_traveller(site):
    obj = site.create_object(display_name="traveller", owner=site.principal)
    obj.seal()
    site.register_object(obj)
    return obj


def assert_trace_is_clean(tel):
    """No open spans, no orphans, and a schema-valid export."""
    assert tel.open_spans == 0
    assert all(span.ended for span in tel.recorder)
    known = {span.span_id for span in tel.recorder}
    for span in tel.recorder:
        assert span.parent_id is None or span.parent_id in known
    assert validate_span_lines("\n".join(span_lines(tel.recorder))) == []


class TestRmiChaos:
    def test_dropped_and_duplicated_invokes_keep_one_clean_trace(self):
        network, sites = make_sites(seed=3, names=("a", "b"))
        plane = FaultPlane(network, seed=3, scenario="chaos-rmi")
        plane.add(DropInjector(rate=1.0, limit=1, only_kinds={"invoke"}))
        plane.add(
            DuplicateInjector(rate=1.0, spread=0.02, limit=1,
                              only_kinds={"invoke"})
        )
        with enabled(Telemetry()) as tel:
            counter = make_counter(sites["a"])
            owner = counter.owner
            results = [
                sites["b"].remote_invoke(
                    "a", counter.guid, "add", [1], caller=owner
                )
                for _ in range(3)
            ]
            network.run()  # land the duplicate and any late replies
        assert results == [1, 2, 3]
        assert_trace_is_clean(tel)
        # each logical request is one client trace; the server spans
        # joined those traces across the wire instead of minting their own
        client_traces = {
            s.trace_id for s in tel.recorder if s.name == "rmi.invoke"
        }
        server_traces = {
            s.trace_id for s in tel.recorder if s.name == "serve.invoke"
        }
        assert len(client_traces) == 3
        assert server_traces <= client_traces
        assert tel.metrics.counter_value("rmi.retries") >= 1
        assert tel.metrics.counter_value("rmi.dedup_hits") >= 1

    def test_reordered_invokes_still_close_every_span(self):
        network, sites = make_sites(seed=4, names=("a", "b"))
        FaultPlane(network, seed=4, scenario="chaos-reorder").add(
            ReorderInjector(rate=1.0, hold=0.1, limit=2,
                            only_kinds={"invoke"})
        )
        with enabled(Telemetry()) as tel:
            counter = make_counter(sites["a"])
            owner = counter.owner
            for expected in (1, 2, 3):
                assert (
                    sites["b"].remote_invoke(
                        "a", counter.guid, "add", [1], caller=owner
                    )
                    == expected
                )
            network.run()
        assert_trace_is_clean(tel)

    def test_injections_are_attributed_in_order(self):
        network, sites = make_sites(seed=5, names=("a", "b"))
        plane = FaultPlane(network, seed=5, scenario="chaos-attr")
        plane.add(DropInjector(rate=1.0, limit=2, only_kinds={"invoke"}))
        with enabled(Telemetry()) as tel:
            counter = make_counter(sites["a"])
            sites["b"].remote_invoke(
                "a", counter.guid, "add", [1], caller=counter.owner
            )
        assert [r.seq for r in plane.injections] == [1, 2]
        assert {r.scenario for r in plane.injections} == {"chaos-attr"}
        assert {r.label for r in plane.injections} == {"drop"}
        assert tel.metrics.counter_value("faults.injected") == 2

    def test_the_scenario_name_defaults_to_the_seed(self):
        network, _ = make_sites(seed=7, names=("a", "b"))
        assert FaultPlane(network, seed=7).scenario == "seed:7"


class TestAbortedMigration:
    def test_unresolved_handoff_then_reconcile_abort_leaves_no_orphans(self):
        network, sites = make_sites(seed=0, names=("a", "b"))
        managers = {
            name: MobilityManager(site, retry_policy=FAST)
            for name, site in sites.items()
        }
        plane = FaultPlane(network, seed=0, scenario="chaos-abort")
        injector = plane.add(
            DropInjector(rate=1.0, only_kinds={"transfer.prepare"})
        )
        with enabled(Telemetry()) as tel:
            traveller = make_traveller(sites["a"])
            with pytest.raises(TransferUnresolvedError):
                managers["a"].migrate(traveller, "b")
            handoff = next(
                s for s in tel.recorder if s.name == "transfer.handoff"
            )
            assert handoff.status == "unresolved"
            phases = [e.name for e in handoff.events if e.name.isupper()]
            assert phases == ["PREPARE", "UNRESOLVED"]
            injector.rate = 0.0  # the weather clears
            outcomes = managers["a"].reconcile()
        assert list(outcomes.values()) == ["aborted"]
        assert sites["a"].has_object(traveller.guid)  # never left
        reconcile = next(
            s for s in tel.recorder if s.name == "transfer.reconcile"
        )
        verdicts = [
            e.attrs["outcome"]
            for e in reconcile.events
            if e.name == "reconcile.outcome"
        ]
        assert verdicts == ["aborted"]
        assert tel.metrics.counter_value("transfers.unresolved") == 1
        assert tel.metrics.counter_value("transfers.reconciled") == 1
        assert tel.metrics.counter_value("migrations") == 0
        assert_trace_is_clean(tel)

    def test_admission_refusal_aborts_the_handoff_span(self):
        network, sites = make_sites(seed=0, names=("a", "b"))

        def no_guests(package, src):
            raise PolicyViolationError(f"{src!r} may not send guests")

        sender = MobilityManager(sites["a"], retry_policy=FAST)
        MobilityManager(sites["b"], policy=no_guests, retry_policy=FAST)
        with enabled(Telemetry()) as tel:
            traveller = make_traveller(sites["a"])
            with pytest.raises(RemoteInvocationError):
                sender.migrate(traveller, "b")
        assert sites["a"].has_object(traveller.guid)  # refusal is atomic
        handoff = next(
            s for s in tel.recorder if s.name == "transfer.handoff"
        )
        assert handoff.status == "aborted"
        phases = [e.name for e in handoff.events if e.name.isupper()]
        assert phases == ["PREPARE", "ABORT"]
        # the refusal itself is an event on the serving span at the door
        serve = next(
            s for s in tel.recorder if s.name == "serve.transfer.prepare"
        )
        assert any(e.name == "admission.refused" for e in serve.events)
        assert tel.metrics.counter_value("admission.refusals") == 1
        assert tel.metrics.counter_value("transfers.refused") == 1
        assert tel.metrics.counter_value("installs") == 0
        assert_trace_is_clean(tel)
