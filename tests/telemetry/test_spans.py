"""The span runtime: lifecycle, nesting, recorder, exporters, schema."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Telemetry,
    TraceContext,
    active,
    disable,
    enable,
    enabled,
    render_tree,
    span_lines,
    validate_span_lines,
    validate_span_mapping,
    write_spans_jsonl,
)
from repro.telemetry import state

pytestmark = pytest.mark.telemetry


def fake_clock():
    """A deterministic nanosecond clock (one tick per reading)."""
    ticks = iter(range(1, 10_000))
    return lambda: next(ticks)


class TestLifecycle:
    def test_root_span_mints_a_new_trace(self):
        tel = Telemetry(clock=fake_clock())
        span = tel.begin_span("root")
        assert span.parent_id is None
        assert span.trace_id == "t00000001"
        tel.end_span(span)
        assert span.ended
        assert tel.open_spans == 0
        assert tel.recorder.trace_ids() == ["t00000001"]

    def test_nesting_parents_under_the_current_span(self):
        tel = Telemetry(clock=fake_clock())
        outer = tel.begin_span("outer")
        inner = tel.begin_span("inner")
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        tel.end_span(inner)
        tel.end_span(outer)

    def test_remote_context_becomes_the_parent(self):
        tel = Telemetry(clock=fake_clock())
        wire = TraceContext("tremote", "sremote")
        span = tel.begin_span("serve", parent=wire)
        assert span.trace_id == "tremote"
        assert span.parent_id == "sremote"
        tel.end_span(span)

    def test_activate_deactivate_remote_context(self):
        tel = Telemetry(clock=fake_clock())
        ctx = TraceContext("tr", "sr")
        tel.activate(ctx)
        child = tel.begin_span("child")
        assert child.trace_id == "tr" and child.parent_id == "sr"
        tel.end_span(child)
        tel.deactivate(ctx)
        assert tel.current_context() is None

    def test_end_is_idempotent_first_close_wins(self):
        tel = Telemetry(clock=fake_clock())
        span = tel.begin_span("once")
        span.end("error")
        span.end("ok")
        assert span.status == "error"

    def test_context_manager_marks_errors(self):
        tel = Telemetry(clock=fake_clock())
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        assert tel.recorder.spans[-1].status == "error"
        assert tel.open_spans == 0

    def test_deterministic_ids(self):
        first = Telemetry(clock=fake_clock())
        second = Telemetry(clock=fake_clock())
        for tel in (first, second):
            tel.end_span(tel.begin_span("a"))
            tel.end_span(tel.begin_span("b"))
        assert [s.span_id for s in first.recorder] == [
            s.span_id for s in second.recorder
        ]

    def test_recorder_evicts_oldest_beyond_cap(self):
        tel = Telemetry(clock=fake_clock(), span_cap=3)
        for index in range(5):
            tel.end_span(tel.begin_span(f"s{index}"))
        assert len(tel.recorder) == 3
        assert tel.recorder.dropped == 2
        assert [s.name for s in tel.recorder] == ["s2", "s3", "s4"]


class TestGlobalSwitch:
    def test_enable_disable_round_trip(self):
        assert active() is None
        tel = enable()
        assert state.ACTIVE is tel
        assert enable() is tel  # idempotent
        assert disable() is tel
        assert state.ACTIVE is None
        assert disable() is None

    def test_enabled_restores_previous_state(self):
        with enabled() as tel:
            assert state.ACTIVE is tel
        assert state.ACTIVE is None

    def test_capture_stays_readable_after_disable(self):
        with enabled() as tel:
            tel.end_span(tel.begin_span("kept"))
        assert [s.name for s in tel.recorder] == ["kept"]


class TestExporters:
    def _capture(self):
        tel = Telemetry(clock=fake_clock())
        with tel.span("parent", {"k": "v"}) as parent:
            parent.event("phase", step=1)
            with tel.span("child"):
                pass
        return tel

    def test_span_lines_validate_against_the_schema(self):
        tel = self._capture()
        errors = validate_span_lines("\n".join(span_lines(tel.recorder)))
        assert errors == []

    def test_schema_rejects_corruption(self):
        tel = self._capture()
        mapping = tel.recorder.spans[0].to_mapping()
        mapping["trace_id"] = ""
        mapping["start_ns"] = "soon"
        del mapping["status"]
        errors = validate_span_mapping(mapping)
        assert len(errors) == 3

    def test_jsonl_file_export(self, tmp_path):
        tel = self._capture()
        out = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(out, tel.recorder)
        assert count == 2
        assert validate_span_lines(out.read_text(encoding="utf-8")) == []

    def test_tree_nests_children_and_shows_events(self):
        tel = self._capture()
        lines = render_tree(tel.recorder)
        text = "\n".join(lines)
        assert lines[0].startswith("trace ")
        assert "parent" in text and "child" in text and "* phase" in text
        parent_line = next(l for l in lines if "parent" in l)
        child_line = next(l for l in lines if "child" in l)
        assert len(child_line) - len(child_line.lstrip()) > len(
            parent_line
        ) - len(parent_line.lstrip())

    def test_tree_flags_orphans_instead_of_hiding_them(self):
        tel = Telemetry(clock=fake_clock())
        span = tel.begin_span("stray", parent=TraceContext("tx", "missing"))
        tel.end_span(span)
        text = "\n".join(render_tree(tel.recorder))
        assert "stray" in text and "[orphan]" in text
