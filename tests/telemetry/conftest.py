"""Shared scaffolding for the telemetry suite."""

from __future__ import annotations

import pytest

from repro.net import LAN, Network, RetryPolicy, Site
from repro.sim import Simulator
from repro.telemetry import state

#: quick enough for faulted tests, patient enough to ride one drop
FAST = RetryPolicy(attempts=3, timeout=0.5, backoff=0.05, multiplier=2.0)


@pytest.fixture(autouse=True)
def isolated_telemetry():
    """Every test starts and ends with the plane off — no capture leaks
    between tests, and no test depends on another having enabled it."""
    previous = state.ACTIVE
    state.ACTIVE = None
    yield
    state.ACTIVE = previous


def make_sites(
    seed: int = 0, names: tuple[str, ...] = ("a", "b", "c")
) -> tuple[Network, dict[str, Site]]:
    network = Network(Simulator(seed))
    sites = {name: Site(network, name, f"dom.{name}") for name in names}
    for name in names:
        sites[name].retry_policy = FAST
    for left, right in zip(names, names[1:]):
        network.topology.connect(left, right, *LAN)
    return network, sites
