"""The audit log rides the telemetry event stream (single emit path)."""

from __future__ import annotations

import pytest

from repro.core import owner_only
from repro.core.errors import AccessDeniedError
from repro.security import AuditKind, AuditLog, audited_invoke
from repro.telemetry import Telemetry, enabled

from ..conftest import build_counter

pytestmark = pytest.mark.telemetry


class TestBackingStream:
    def test_records_become_stream_events(self):
        log = AuditLog()
        log.record(AuditKind.ARRIVAL, "site-a", "site-b", detail="guest")
        assert len(log.stream) == 1
        event = log.stream.events(prefix="audit.arrival")[0]
        assert event.attrs["subject"] == "site-a"
        assert event.attrs["actor"] == "site-b"
        assert event.attrs["detail"] == "guest"

    def test_queries_reconstruct_audit_events(self):
        log = AuditLog(clock=lambda: 1.5)
        log.record(AuditKind.DENIAL, "obj", "mallory", detail="no")
        log.record(AuditKind.INVOCATION, "obj", "alice", detail="peek")
        denials = log.denials()
        assert len(denials) == 1
        assert denials[0].kind is AuditKind.DENIAL
        assert denials[0].actor == "mallory"
        assert denials[0].time == 1.5
        assert [e.kind for e in log.events()] == [
            AuditKind.DENIAL, AuditKind.INVOCATION,
        ]
        assert log.by_actor("alice")[0].detail == "peek"
        assert log.counts() == {"denial": 1, "invocation": 1}
        assert len(log) == 2
        assert len(list(iter(log))) == 2

    def test_sinks_still_fire(self):
        log = AuditLog()
        seen = []
        log.add_sink(seen.append)
        log.record(AuditKind.REJECTION, "s", "peer")
        assert len(seen) == 1 and seen[0].kind is AuditKind.REJECTION


class TestTelemetryMirror:
    def test_records_mirror_into_the_active_plane(self):
        with enabled(Telemetry()) as tel:
            log = AuditLog()
            log.record(AuditKind.DEPARTURE, "obj", "site-a")
            mirrored = tel.events.events(prefix="audit.departure")
            assert len(mirrored) == 1
            assert mirrored[0].attrs["subject"] == "obj"
            assert mirrored[0].attrs["log"].startswith("audit:")
            assert tel.metrics.counter_value("audit.records") == 1

    def test_two_logs_stay_distinguishable_in_the_shared_stream(self):
        with enabled(Telemetry()) as tel:
            first, second = AuditLog(), AuditLog()
            first.record(AuditKind.ARRIVAL, "x", "a")
            second.record(AuditKind.ARRIVAL, "y", "b")
            tags = {
                e.attrs["log"] for e in tel.events.events(prefix="audit.")
            }
            assert len(tags) == 2

    def test_disabled_plane_changes_nothing(self):
        log = AuditLog()
        log.record(AuditKind.ARRIVAL, "x", "a")
        assert len(log) == 1  # private stream works without the plane


def _with_secret(owner):
    from repro.core import MROMObject

    obj = MROMObject(display_name="guarded", owner=owner)
    obj.define_fixed_method("secret", "return 42", acl=owner_only(owner))
    obj.seal()
    return obj


class TestAuditedInvoke:
    def test_denial_is_recorded_through_the_stream(self, alice, mallory):
        counter = build_counter(owner=alice)
        log = AuditLog()
        audited_invoke(counter, log, "increment", [1], caller=alice)
        # an owner-only item: mallory's touch is a denial on the record
        with pytest.raises(AccessDeniedError):
            audited_invoke(_with_secret(alice), log, "secret", caller=mallory)
        assert log.counts()["invocation"] == 1
        assert len(log.denials()) == 1
        assert log.denials()[0].actor == mallory.guid
