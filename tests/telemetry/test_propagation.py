"""One trace id across a remote invocation and a migration hop.

These tests run :func:`repro.telemetry.scenario.run_traced_scenario` —
the same workload the ``repro trace`` CLI exports — and pin down the
acceptance shape: a single trace spanning client RMI, server-side
serving, the two-phase handoff (PREPARE/COMMIT) and the receiver's
install, with injected faults attributed to the scenario by name and
sequence number.
"""

from __future__ import annotations

import pytest

from repro.telemetry import span_lines, state, validate_span_lines
from repro.telemetry.scenario import run_traced_scenario

pytestmark = pytest.mark.telemetry


@pytest.fixture(scope="module")
def report():
    return run_traced_scenario(seed=0)


def spans_named(report, name):
    return [s for s in report.telemetry.recorder if s.name == name]


def the_span(report, name):
    matches = spans_named(report, name)
    assert len(matches) == 1, f"expected exactly one {name!r} span"
    return matches[0]


class TestWorkload:
    def test_the_workload_itself_is_correct(self, report):
        assert report.remote_result == 41
        assert report.migrated_to == "gamma"
        assert report.final_count == 41

    def test_the_faults_actually_fired(self, report):
        assert report.faults == {"drop": 1, "duplicate": 1}

    def test_the_global_switch_is_restored(self, report):
        # enabled() is scoped: the scenario never leaks an active plane
        assert state.ACTIVE is None


class TestSingleTrace:
    def test_every_span_shares_the_root_trace_id(self, report):
        recorder = report.telemetry.recorder
        assert len(recorder) > 0
        assert {s.trace_id for s in recorder} == {report.trace_id}

    def test_the_trace_covers_rmi_and_migration(self, report):
        names = {s.name for s in report.telemetry.recorder}
        assert {
            "scenario",
            "rmi.invoke",
            "serve.invoke",
            "transfer.handoff",
            "serve.transfer.prepare",
            "transfer.install",
        } <= names

    def test_no_span_is_left_open_and_none_is_orphaned(self, report):
        recorder = report.telemetry.recorder
        assert report.telemetry.open_spans == 0
        assert all(s.ended for s in recorder)
        known = {s.span_id for s in recorder}
        for span in recorder:
            assert span.parent_id is None or span.parent_id in known

    def test_the_export_validates_against_the_schema(self, report):
        lines = "\n".join(span_lines(report.telemetry.recorder))
        assert validate_span_lines(lines) == []


class TestStitching:
    def test_server_span_parents_to_the_client_rmi_span(self, report):
        client = the_span(report, "rmi.invoke")
        server = the_span(report, "serve.invoke")
        assert server.parent_id == client.span_id

    def test_install_parents_to_the_handoff_journey_stamp(self, report):
        handoff = the_span(report, "transfer.handoff")
        install = the_span(report, "transfer.install")
        assert install.parent_id == handoff.span_id

    def test_handoff_records_prepare_then_commit(self, report):
        handoff = the_span(report, "transfer.handoff")
        phases = [e.name for e in handoff.events if e.name.isupper()]
        assert phases == ["PREPARE", "COMMIT"]
        assert handoff.status == "ok"
        assert handoff.attrs["mode"] == "move"
        assert handoff.attrs["dst"] == "gamma"

    def test_the_retry_rides_the_same_client_span(self, report):
        client = the_span(report, "rmi.invoke")
        events = [e.name for e in client.events]
        assert "rmi.timeout" in events  # the dropped first attempt
        assert "rmi.retry" in events  # the second attempt that landed


class TestFaultAttribution:
    def test_fault_events_carry_scenario_name_and_sequence(self, report):
        faults = [
            event
            for span in report.telemetry.recorder
            for event in span.events
            if event.name == "fault"
        ]
        assert len(faults) == 2
        assert {e.attrs["scenario"] for e in faults} == {"trace-0"}
        assert sorted(e.attrs["seq"] for e in faults) == [1, 2]
        assert sorted(e.attrs["label"] for e in faults) == [
            "drop", "duplicate",
        ]

    def test_the_plane_keeps_matching_structured_records(self, report):
        records = report.plane.injections
        assert [r.seq for r in records] == [1, 2]
        assert all(r.scenario == "trace-0" for r in records)


class TestMetrics:
    def test_the_acceptance_counters(self, report):
        metrics = report.telemetry.metrics
        assert metrics.counter_value("invocations") >= 1
        assert metrics.counter_value("rmi.retries") >= 1
        assert metrics.counter_value("rmi.dedup_hits") >= 1
        assert metrics.counter_value("faults.injected") == 2
        assert metrics.counter_value("migrations") == 1
        assert metrics.counter_value("installs") == 1


class TestDeterminism:
    def test_same_seed_same_trace(self, report):
        again = run_traced_scenario(seed=0)
        assert again.summary() == report.summary()
        assert [s.span_id for s in again.telemetry.recorder] == [
            s.span_id for s in report.telemetry.recorder
        ]
