"""MetricsRegistry: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram

pytestmark = pytest.mark.telemetry


class TestCounters:
    def test_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("invocations").inc()
        registry.counter("invocations").inc(2)
        assert registry.counter_value("invocations") == 3

    def test_reading_an_absent_counter_does_not_create_it(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never") == 0
        assert "never" not in list(registry.names())

    def test_counters_never_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistograms:
    def test_bucketing_and_stats(self):
        histogram = Histogram("latency", boundaries=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]  # one in +Inf
        assert histogram.count == 4
        assert histogram.min == 0.0005
        assert histogram.max == 0.5
        assert histogram.mean == pytest.approx(0.5555 / 4)

    def test_boundaries_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("bad", boundaries=(0.1, 0.01))

    def test_default_boundaries_are_fixed_across_instances(self):
        first = Histogram("a").snapshot()["boundaries"]
        second = Histogram("b").snapshot()["boundaries"]
        assert first == second == list(DEFAULT_BUCKETS)


class TestSnapshot:
    def test_snapshot_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(4)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(0.002)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert snapshot["counters"]["alpha"] == 4
        assert snapshot["gauges"]["depth"] == 2
        assert snapshot["histograms"]["lat"]["count"] == 1
