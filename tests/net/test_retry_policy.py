"""RetryPolicy validation, including the max_backoff < backoff fix.

Before the fix, ``RetryPolicy(backoff=2.0, max_backoff=0.5)`` was
accepted silently and every sleep collapsed to the cap — the configured
schedule never happened. Construction now rejects an inverted cap.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NetworkError
from repro.net import RetryPolicy


class TestRetryPolicyValidation:
    def test_max_backoff_below_backoff_is_rejected(self):
        with pytest.raises(NetworkError, match="max_backoff"):
            RetryPolicy(backoff=2.0, max_backoff=0.5)

    def test_equal_cap_is_allowed(self):
        policy = RetryPolicy(backoff=0.5, max_backoff=0.5)
        assert policy.backoff_for(0) == 0.5
        assert policy.backoff_for(5) == 0.5

    def test_zero_backoff_with_zero_cap(self):
        # backoff=0 means "retry immediately"; a zero cap is consistent
        policy = RetryPolicy(backoff=0.0, max_backoff=0.0)
        assert policy.backoff_for(3) == 0.0

    def test_existing_validations_still_fire(self):
        with pytest.raises(NetworkError):
            RetryPolicy(attempts=0)
        with pytest.raises(NetworkError):
            RetryPolicy(timeout=0)
        with pytest.raises(NetworkError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(NetworkError):
            RetryPolicy(multiplier=0.5)

    def test_schedule_is_capped_exponential(self):
        policy = RetryPolicy(backoff=0.25, multiplier=2.0, max_backoff=1.0)
        assert [policy.backoff_for(n) for n in range(5)] == [
            0.25, 0.5, 1.0, 1.0, 1.0,
        ]
