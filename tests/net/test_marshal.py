"""The wire format: round trips, strictness, hostile inputs."""

import math

import pytest

from repro.core import HtmlText, Kind, kind_of
from repro.core.errors import MarshalError
from repro.net import MAGIC, Reference, marshal, marshalled_size, unmarshal


def round_trip(value):
    return unmarshal(marshal(value))


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 127, 128, -12345678901234567890,
         2**70, 0.0, -2.5, 1e308, "", "shalom", "עברית ∑", b"", b"\x00\xff"],
    )
    def test_round_trip(self, value):
        assert round_trip(value) == value

    def test_bool_stays_bool(self):
        assert round_trip(True) is True
        assert round_trip(0) == 0 and not isinstance(round_trip(0), bool)

    def test_float_identity(self):
        assert round_trip(0.1) == 0.1
        assert math.isnan(round_trip(float("nan")))
        assert round_trip(float("inf")) == float("inf")

    def test_html_tag_survives(self):
        value = HtmlText("<b>42</b>")
        back = round_trip(value)
        assert isinstance(back, HtmlText)
        assert kind_of(back) is Kind.HTML

    def test_plain_text_does_not_become_html(self):
        assert kind_of(round_trip("plain")) is Kind.TEXT


class TestCollections:
    def test_nested_structures(self):
        value = {
            "rows": [{"name": "moshe", "salary": 4500}, {"name": "dana"}],
            "meta": {"count": 2, "tags": ["a", "b"], "blob": b"\x01"},
            7: [None, True, [[]]],
        }
        assert round_trip(value) == value

    def test_tuples_become_lists(self):
        assert round_trip((1, 2, (3,))) == [1, 2, [3]]

    def test_deep_nesting_bounded(self):
        value = []
        for _ in range(100):
            value = [value]
        with pytest.raises(MarshalError):
            marshal(value)

    def test_empty_collections(self):
        assert round_trip([]) == []
        assert round_trip({}) == {}


class TestReferences:
    def test_reference_round_trip(self):
        ref = Reference("mrom://haifa/1.1", "haifa")
        assert round_trip(ref) == ref

    def test_reference_without_site(self):
        ref = Reference("mrom://haifa/1.1")
        assert round_trip(ref) == ref

    def test_object_with_guid_marshals_by_identity(self):
        class Thing:
            guid = "mrom://haifa/9.9"
            site = "haifa"

        back = round_trip(Thing())
        assert back == Reference("mrom://haifa/9.9", "haifa")


class TestRejections:
    def test_unmarshalable_type(self):
        with pytest.raises(MarshalError):
            marshal(object())

    def test_set_is_not_a_wire_value(self):
        with pytest.raises(MarshalError):
            marshal({1, 2})


class TestStrictDecoding:
    def test_bad_magic(self):
        with pytest.raises(MarshalError):
            unmarshal(b"XXXX" + marshal(1)[4:])

    def test_truncated(self):
        wire = marshal("hello world")
        with pytest.raises(MarshalError):
            unmarshal(wire[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(MarshalError):
            unmarshal(marshal(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(MarshalError):
            unmarshal(MAGIC + b"Z")

    def test_forged_huge_collection_length(self):
        # claims 10^9 list elements with no payload: must fail fast,
        # not allocate
        forged = bytearray(MAGIC + b"L")
        value = 1_000_000_000
        while True:
            byte = value & 0x7F
            value >>= 7
            forged.append(byte | 0x80 if value else byte)
            if not value:
                break
        with pytest.raises(MarshalError):
            unmarshal(bytes(forged))

    def test_invalid_utf8_payload(self):
        wire = bytearray(MAGIC + b"S")
        wire.append(2)
        wire += b"\xff\xfe"
        with pytest.raises(MarshalError):
            unmarshal(bytes(wire))

    def test_unhashable_mapping_key(self):
        # a mapping whose key is a list decodes to an unhashable key
        inner_key = marshal([1])[len(MAGIC):]
        inner_val = marshal(2)[len(MAGIC):]
        wire = MAGIC + b"M" + b"\x01" + inner_key + inner_val
        with pytest.raises(MarshalError):
            unmarshal(wire)


class TestSize:
    def test_size_matches_marshal(self):
        value = {"a": [1, 2, 3], "b": "text"}
        assert marshalled_size(value) == len(marshal(value))

    def test_varint_compactness(self):
        assert marshalled_size(1) < marshalled_size(2**40)
