"""The wire format: round trips, strictness, hostile inputs."""

import importlib
import math

import pytest

from repro.core import HtmlText, Kind, kind_of
from repro.core.errors import MarshalError
from repro.net import MAGIC, Reference, marshal, marshalled_size, unmarshal


def round_trip(value):
    return unmarshal(marshal(value))


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 127, 128, -12345678901234567890,
         2**70, 0.0, -2.5, 1e308, "", "shalom", "עברית ∑", b"", b"\x00\xff"],
    )
    def test_round_trip(self, value):
        assert round_trip(value) == value

    def test_bool_stays_bool(self):
        assert round_trip(True) is True
        assert round_trip(0) == 0 and not isinstance(round_trip(0), bool)

    def test_float_identity(self):
        assert round_trip(0.1) == 0.1
        assert math.isnan(round_trip(float("nan")))
        assert round_trip(float("inf")) == float("inf")

    def test_html_tag_survives(self):
        value = HtmlText("<b>42</b>")
        back = round_trip(value)
        assert isinstance(back, HtmlText)
        assert kind_of(back) is Kind.HTML

    def test_plain_text_does_not_become_html(self):
        assert kind_of(round_trip("plain")) is Kind.TEXT


class TestCollections:
    def test_nested_structures(self):
        value = {
            "rows": [{"name": "moshe", "salary": 4500}, {"name": "dana"}],
            "meta": {"count": 2, "tags": ["a", "b"], "blob": b"\x01"},
            7: [None, True, [[]]],
        }
        assert round_trip(value) == value

    def test_tuples_become_lists(self):
        assert round_trip((1, 2, (3,))) == [1, 2, [3]]

    def test_deep_nesting_bounded(self):
        value = []
        for _ in range(100):
            value = [value]
        with pytest.raises(MarshalError):
            marshal(value)

    def test_empty_collections(self):
        assert round_trip([]) == []
        assert round_trip({}) == {}


class TestReferences:
    def test_reference_round_trip(self):
        ref = Reference("mrom://haifa/1.1", "haifa")
        assert round_trip(ref) == ref

    def test_reference_without_site(self):
        ref = Reference("mrom://haifa/1.1")
        assert round_trip(ref) == ref

    def test_object_with_guid_marshals_by_identity(self):
        class Thing:
            guid = "mrom://haifa/9.9"
            site = "haifa"

        back = round_trip(Thing())
        assert back == Reference("mrom://haifa/9.9", "haifa")


class TestRejections:
    def test_unmarshalable_type(self):
        with pytest.raises(MarshalError):
            marshal(object())

    def test_set_is_not_a_wire_value(self):
        with pytest.raises(MarshalError):
            marshal({1, 2})


class TestStrictDecoding:
    def test_bad_magic(self):
        with pytest.raises(MarshalError):
            unmarshal(b"XXXX" + marshal(1)[4:])

    def test_truncated(self):
        wire = marshal("hello world")
        with pytest.raises(MarshalError):
            unmarshal(wire[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(MarshalError):
            unmarshal(marshal(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(MarshalError):
            unmarshal(MAGIC + b"Z")

    def test_forged_huge_collection_length(self):
        # claims 10^9 list elements with no payload: must fail fast,
        # not allocate
        forged = bytearray(MAGIC + b"L")
        value = 1_000_000_000
        while True:
            byte = value & 0x7F
            value >>= 7
            forged.append(byte | 0x80 if value else byte)
            if not value:
                break
        with pytest.raises(MarshalError):
            unmarshal(bytes(forged))

    def test_invalid_utf8_payload(self):
        wire = bytearray(MAGIC + b"S")
        wire.append(2)
        wire += b"\xff\xfe"
        with pytest.raises(MarshalError):
            unmarshal(bytes(wire))

    def test_unhashable_mapping_key(self):
        # a mapping whose key is a list decodes to an unhashable key
        inner_key = marshal([1])[len(MAGIC):]
        inner_val = marshal(2)[len(MAGIC):]
        wire = MAGIC + b"M" + b"\x01" + inner_key + inner_val
        with pytest.raises(MarshalError):
            unmarshal(wire)


class TestSize:
    def test_size_matches_marshal(self):
        value = {"a": [1, 2, 3], "b": "text"}
        assert marshalled_size(value) == len(marshal(value))

    def test_varint_compactness(self):
        assert marshalled_size(1) < marshalled_size(2**40)


# ---------------------------------------------------------------------------
# zero-copy frames, the bounded buffer pool, lazy decoding
# ---------------------------------------------------------------------------

SHAPES = [
    None,
    True,
    -12345,
    2.5,
    "shalom",
    b"\x00\xff" * 40,
    [1, [2, [3, "x"]], {"k": b"v"}],
    {"a": [1, 2, 3], "b": {"c": None}, "d": "עברית"},
]


class TestMarshalFrame:
    @pytest.mark.parametrize("value", SHAPES)
    def test_frame_bytes_identical_to_eager_marshal(self, value):
        from repro.net.marshal import marshal_frame

        with marshal_frame(value) as frame:
            assert frame.tobytes() == marshal(value)
            assert len(frame) == len(marshal(value))
            # the view itself decodes without a copy
            assert unmarshal(frame.view) == unmarshal(marshal(value))

    def test_release_is_idempotent_and_recycles(self):
        from repro.net.marshal import (
            _pool_snapshot,
            _reset_fastpath_state,
            marshal_frame,
        )

        _reset_fastpath_state()
        frame = marshal_frame({"k": list(range(50))})
        frame.release()
        frame.release()  # second release must be a no-op
        count, _weight = _pool_snapshot()
        assert count == 1, "released buffer returns to the pool"
        # and the recycled buffer produces identical bytes
        assert marshal({"k": 1}) == marshal({"k": 1})

    def test_encode_failure_does_not_leak_the_buffer(self):
        from repro.net.marshal import (
            _pool_snapshot,
            _reset_fastpath_state,
            marshal_frame,
        )

        _reset_fastpath_state()
        with pytest.raises(MarshalError):
            marshal_frame({"k": object()})
        count, _weight = _pool_snapshot()
        assert count == 1, "the buffer is returned even when encoding fails"


class TestBufferPoolBounds:
    def setup_method(self):
        # repro.net re-exports the marshal *function*, which shadows the
        # submodule as an attribute — import the module by full name
        marshal_mod = importlib.import_module("repro.net.marshal")
        marshal_mod._reset_fastpath_state()
        self.mod = marshal_mod

    def test_pool_count_is_capped(self):
        frames = [self.mod.marshal_frame([i]) for i in range(20)]
        for frame in frames:
            frame.release()
        count, weight = self.mod._pool_snapshot()
        assert count <= self.mod._BUFFER_POOL_CAP
        assert weight <= self.mod._BUFFER_POOL_BYTES

    def test_total_retained_weight_is_capped(self):
        # each buffer is individually retainable (< _BUFFER_RETAIN) but
        # together they exceed the total-weight bound
        size = self.mod._BUFFER_RETAIN - 1024
        for _ in range(6):
            self.mod._release_buffer(bytearray(size))
        count, weight = self.mod._pool_snapshot()
        assert weight <= self.mod._BUFFER_POOL_BYTES
        assert count < 6, "some buffers must have been evicted"

    def test_oversized_buffers_are_never_pooled(self):
        self.mod._release_buffer(bytearray(self.mod._BUFFER_RETAIN + 1))
        assert self.mod._pool_snapshot() == (0, 0)

    def test_eviction_is_largest_first(self):
        sizes = [100 * (i + 1) for i in range(self.mod._BUFFER_POOL_CAP)]
        for size in sizes:
            self.mod._release_buffer(bytearray(size))
        # one more small buffer pushes the count past the cap: the
        # *largest* resident must go, not the newcomer
        self.mod._release_buffer(bytearray(50))
        weights = sorted(w for w, _ in self.mod._BUFFER_POOL)
        assert 50 in weights
        assert max(sizes) not in weights
        assert len(weights) == self.mod._BUFFER_POOL_CAP

    def test_oversized_frame_does_not_grow_the_pool(self):
        big = {"blob": b"x" * (self.mod._BUFFER_RETAIN + 100)}
        with self.mod.marshal_frame(big) as frame:
            assert unmarshal(frame.view) == big
        assert self.mod._pool_snapshot() == (0, 0)


class TestLazyDecoding:
    @pytest.mark.parametrize("value", SHAPES)
    def test_lazy_materializes_to_the_eager_value(self, value):
        from repro.net.marshal import materialize_deep, unmarshal_lazy

        wire = marshal(value)
        assert materialize_deep(unmarshal_lazy(wire)) == unmarshal(wire)

    def test_mapping_values_stay_undecoded_until_touched(self):
        from repro.net.marshal import LazyMapping, LazyValue, unmarshal_lazy

        wire = marshal({"hot": 1, "cold": [1, 2, 3]})
        view = unmarshal_lazy(wire)
        assert isinstance(view, LazyMapping)
        assert set(view) == {"hot", "cold"}, "keys decode eagerly"
        cell = view.lazy("cold")
        assert isinstance(cell, LazyValue)
        assert cell.materialize() == [1, 2, 3]
        assert view["hot"] == 1

    def test_lazy_list_indexing_and_slicing(self):
        from repro.net.marshal import LazyList, unmarshal_lazy

        wire = marshal([10, "twenty", [30]])
        view = unmarshal_lazy(wire)
        assert isinstance(view, LazyList)
        assert len(view) == 3
        assert view[1] == "twenty"
        assert list(view[0:2]) == [10, "twenty"]

    def test_lazy_validates_framing_up_front(self):
        from repro.net.marshal import unmarshal_lazy

        wire = marshal({"k": [1, 2]})
        with pytest.raises(MarshalError):
            unmarshal_lazy(wire + b"\x00")  # trailing garbage
        with pytest.raises(MarshalError):
            unmarshal_lazy(wire[:-1])  # truncated
        with pytest.raises(MarshalError):
            unmarshal_lazy(b"XXXX" + wire[4:])  # bad magic

    def test_lazy_snapshots_mutable_input(self):
        from repro.net.marshal import unmarshal_lazy

        wire = bytearray(marshal({"k": "value"}))
        view = unmarshal_lazy(wire)
        wire[:] = b"\x00" * len(wire)  # corrupt the original afterwards
        assert view["k"] == "value"
