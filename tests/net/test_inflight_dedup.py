"""At-most-once must also cover the service window.

The served ledger replays completed requests; but with
``service_delay`` > 0 a duplicated request can arrive while the
original is still between admission and reply. Those duplicates must
be swallowed — never re-execute the handler — or a duplicated
increment lands twice while the client acknowledges it once, breaking
every closed-form ``counter_total == invoke_ok`` invariant downstream.
"""

from __future__ import annotations

from repro.faults import DuplicateInjector, FaultPlane
from repro.net import RetryPolicy

from tests.conftest import build_counter, make_site_world

#: request ids (the dedup key) are only minted for retry-managed calls
RETRY = RetryPolicy(attempts=4, timeout=1.0, backoff=0.05, multiplier=2.0)


def test_duplicate_inside_the_service_window_executes_once():
    network, sites = make_site_world(seed=0, names=("client", "server"))
    client, server = sites["client"], sites["server"]
    # every service takes longer than any duplicate's trailing gap, so
    # each duplicate is guaranteed to land mid-service
    server.service_delay = 0.2
    counter = build_counter()
    server.register_object(counter)
    plane = FaultPlane(network, seed=7, scenario="inflight-dup")
    plane.add(DuplicateInjector(rate=1.0, spread=0.05))

    results = [
        client.remote_invoke("server", counter.guid, "increment",
                             policy=RETRY)
        for _ in range(10)
    ]

    assert results == list(range(1, 11))
    assert counter.get_data("count", caller=counter.owner) == 10
    assert server.inflight_duplicates >= 1
    # duplicates arriving after completion keep hitting the ledger path
    assert server.inflight_duplicates + server.replayed_requests >= 1


def test_duplicate_after_completion_still_replays_the_ledger():
    network, sites = make_site_world(seed=1, names=("client", "server"))
    client, server = sites["client"], sites["server"]
    # instantaneous service: the duplicate always trails the execution,
    # so the served ledger (not the in-flight set) must absorb it
    counter = build_counter()
    server.register_object(counter)
    plane = FaultPlane(network, seed=11, scenario="late-dup")
    plane.add(DuplicateInjector(rate=1.0, spread=0.05))

    for expected in range(1, 6):
        assert client.remote_invoke(
            "server", counter.guid, "increment", policy=RETRY
        ) == expected
    network.run()

    assert counter.get_data("count", caller=counter.owner) == 5
    assert server.replayed_requests >= 1
    assert server.inflight_duplicates == 0
