"""Batched RMI under the fault plane.

A batch frame is one transport message carrying many logical requests,
each with its own ``request_id`` in the site's served-reply ledger. The
chaos contract, whatever the wire does to the frame:

* every logical request executes **at most once** (side effects count);
* retried/duplicated frames are answered from recorded replies;
* a later frame re-carrying an already-served logical request gets the
  recorded envelope, not a re-execution;
* telemetry spans all close (no leaks through the retry machinery).
"""

from __future__ import annotations

import pytest

from repro.faults import DropInjector, DuplicateInjector, FaultPlane, ReorderInjector
from repro.net import RetryPolicy
from repro.telemetry import Telemetry, enabled

from ..faults.conftest import make_sites

pytestmark = [pytest.mark.chaos, pytest.mark.fastpath]

FAST = RetryPolicy(attempts=4, timeout=0.5, backoff=0.05, multiplier=2.0)


def make_counter(site):
    from repro.core import allow_all

    obj = site.create_object(display_name="counter")
    obj.define_fixed_data("total", 0)
    obj.define_fixed_method(
        "bump",
        "n = self.get('total') + 1\nself.set('total', n)\nreturn n",
        acl=allow_all(),
    )
    obj.seal()
    site.register_object(obj)
    return obj


def flush_batch(client, obj, calls: int, policy=FAST):
    batch = client.batch("b", policy=policy)
    futures = [
        batch.invoke(obj.guid, "bump", [], caller=client.principal)
        for _ in range(calls)
    ]
    batch.flush()
    return [future.result() for future in futures]


class TestBatchChaos:
    def test_dropped_frame_is_retried_and_executes_once(self):
        network, sites = make_sites(seed=3, names=("a", "b"))
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["batch"], limit=1)
        )
        obj = make_counter(sites["b"])
        results = flush_batch(sites["a"], obj, 6)
        assert results == [1, 2, 3, 4, 5, 6]
        assert obj.get_data("total", caller=obj.principal) == 6

    def test_duplicated_frame_replays_not_reexecutes(self):
        network, sites = make_sites(seed=4, names=("a", "b"))
        FaultPlane(network, seed=2).add(
            DuplicateInjector(rate=1.0, only_kinds=["batch"], limit=1)
        )
        obj = make_counter(sites["b"])
        results = flush_batch(sites["a"], obj, 5)
        network.run()  # let the duplicate land and be replayed
        assert results == [1, 2, 3, 4, 5]
        assert obj.get_data("total", caller=obj.principal) == 5
        assert sites["b"].replayed_requests >= 1

    def test_dropped_reply_is_replayed_from_ledger(self):
        network, sites = make_sites(seed=5, names=("a", "b"))
        FaultPlane(network, seed=3).add(
            DropInjector(rate=1.0, only_kinds=["reply"], limit=1)
        )
        obj = make_counter(sites["b"])
        results = flush_batch(sites["a"], obj, 4)
        assert results == [1, 2, 3, 4]
        # the retry was answered from the served ledger: executed once
        assert obj.get_data("total", caller=obj.principal) == 4
        assert sites["b"].replayed_requests >= 1

    def test_reordered_frames_still_resolve(self):
        network, sites = make_sites(seed=6, names=("a", "b"))
        FaultPlane(network, seed=4).add(
            ReorderInjector(rate=1.0, only_kinds=["batch"], limit=1)
        )
        obj = make_counter(sites["b"])
        first = flush_batch(sites["a"], obj, 2)
        second = flush_batch(sites["a"], obj, 2)
        network.run()
        assert sorted(first + second) == [1, 2, 3, 4]
        assert obj.get_data("total", caller=obj.principal) == 4

    def test_inner_request_ids_dedup_across_frames(self):
        """A later frame carrying an already-served logical request gets
        the recorded reply — the inner ledger, not just frame dedup."""
        network, sites = make_sites(seed=7, names=("a", "b"))
        a, b = sites["a"], sites["b"]
        obj = make_counter(b)
        entries = [
            {
                "kind": "invoke",
                "request_id": a.mint_request_id(),
                "payload": {
                    "target": obj.guid,
                    "method": "bump",
                    "args": [],
                    "caller": {"guid": a.principal.guid, "domain": a.domain,
                               "name": "a"},
                },
            }
            for _ in range(3)
        ]
        first = a.request("b", "batch", {"requests": entries}, policy=FAST)
        # an application-level re-send: new frame, same logical requests
        second = a.request("b", "batch", {"requests": entries}, policy=FAST)
        assert [env["result"] for env in first["replies"]] == [1, 2, 3]
        assert [env["result"] for env in second["replies"]] == [1, 2, 3]
        assert obj.get_data("total", caller=obj.principal) == 3
        assert b.replayed_requests >= 3

    def test_no_open_spans_and_traces_stitch_after_chaos(self):
        network, sites = make_sites(seed=8, names=("a", "b"))
        plane = FaultPlane(network, seed=5)
        plane.add(DropInjector(rate=1.0, only_kinds=["batch"], limit=1))
        plane.add(DuplicateInjector(rate=1.0, only_kinds=["reply"], limit=1))
        obj = make_counter(sites["b"])
        with enabled(Telemetry()) as tel:
            results = flush_batch(sites["a"], obj, 8)
            network.run()
            assert results == list(range(1, 9))
            assert tel.open_spans == 0
            spans = list(tel.recorder)
            # one client span, one serve.batch per executed frame, one
            # nested serve.invoke per logical request — all one trace
            names = [span.name for span in spans]
            assert "rmi.batch" in names
            assert "serve.batch" in names
            assert names.count("serve.invoke") == 8
            assert len({span.trace_id for span in spans}) == 1
            assert tel.metrics.counter_value("rmi.batch.calls") == 8
        assert obj.get_data("total", caller=obj.principal) == 8
