"""The simulated internetwork: routing, cost model, partitions."""

import pytest

from repro.core.errors import NetworkError, PartitionError
from repro.net import LAN, MODEM, Topology, WAN


@pytest.fixture
def triangle():
    """a -- b -- c plus a slow direct a -- c link."""
    topo = Topology()
    for node in "abc":
        topo.add_node(node)
    topo.connect("a", "b", latency=0.010, bandwidth=1_000_000)
    topo.connect("b", "c", latency=0.010, bandwidth=1_000_000)
    topo.connect("a", "c", latency=0.100, bandwidth=1_000_000)
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(NetworkError):
            topo.add_node("a")

    def test_link_needs_known_nodes(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(NetworkError):
            topo.connect("a", "ghost")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(NetworkError):
            topo.connect("a", "a")

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.connect("a", "b")

    def test_invalid_parameters(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(NetworkError):
            topo.connect("a", "b", latency=-1)
        with pytest.raises(NetworkError):
            topo.connect("a", "b", bandwidth=0)


class TestRouting:
    def test_local_delivery_is_free(self, triangle):
        assert triangle.path_cost("a", "a", 10**9) == 0.0

    def test_picks_lower_latency_path(self, triangle):
        # a->b->c totals 20ms, direct a->c is 100ms
        cost = triangle.path_cost("a", "c", 0)
        assert cost == pytest.approx(0.020)

    def test_cost_includes_transmission_time(self, triangle):
        size = 1_000_000
        cost = triangle.path_cost("a", "b", size)
        assert cost == pytest.approx(0.010 + size / 1_000_000)

    def test_bottleneck_bandwidth(self):
        topo = Topology()
        for node in "abc":
            topo.add_node(node)
        topo.connect("a", "b", latency=0.0, bandwidth=1_000_000)
        topo.connect("b", "c", latency=0.0, bandwidth=1_000)  # narrow
        assert topo.path_cost("a", "c", 1_000) == pytest.approx(1.0)

    def test_unknown_node(self, triangle):
        with pytest.raises(NetworkError):
            triangle.path_cost("a", "ghost", 1)

    def test_presets_have_expected_ordering(self):
        # LAN fastest, MODEM slowest for a 10 KB transfer
        costs = []
        for latency, bandwidth in (LAN, WAN, MODEM):
            costs.append(latency + 10_000 / bandwidth)
        assert costs == sorted(costs)


class TestPartitions:
    def test_down_link_forces_detour(self, triangle):
        triangle.set_link_state("a", "b", up=False)
        assert triangle.path_cost("a", "c", 0) == pytest.approx(0.100)
        assert triangle.path_cost("a", "b", 0) == pytest.approx(0.110)

    def test_full_partition_raises(self, triangle):
        cut = triangle.partition({"a"}, {"b", "c"})
        assert cut == 2
        with pytest.raises(PartitionError):
            triangle.path_cost("a", "c", 0)
        assert not triangle.reachable("a", "b")
        assert triangle.reachable("b", "c")

    def test_heal_restores_routes(self, triangle):
        triangle.partition({"a"}, {"b", "c"})
        triangle.heal()
        assert triangle.reachable("a", "c")
        assert triangle.path_cost("a", "c", 0) == pytest.approx(0.020)

    def test_topology_change_recomputes_routes(self, triangle):
        before = triangle.path_cost("a", "c", 0)
        triangle.set_link_state("b", "c", up=False)
        after = triangle.path_cost("a", "c", 0)
        assert before == pytest.approx(0.020)
        assert after == pytest.approx(0.100)


class TestNodeIdentifiers:
    @pytest.mark.parametrize("bad", ["", "a|b", "a/b", "a b", "héllo"])
    def test_wire_hostile_identifiers_rejected(self, bad):
        topo = Topology()
        with pytest.raises(NetworkError):
            topo.add_node(bad)

    def test_reasonable_identifiers_accepted(self):
        topo = Topology()
        for node in ("haifa", "db-east", "net.node_1"):
            topo.add_node(node)
        assert topo.nodes() == ("db-east", "haifa", "net.node_1")
