"""Transport internals: accounting, by-value delivery, lifecycle."""

import pytest

from repro.core.errors import NetworkError
from repro.net import LAN, Network, Site
from repro.net.transport import Message
from repro.sim import Simulator


@pytest.fixture
def wired():
    network = Network(Simulator())
    a = Site(network, "a", "dom.a")
    b = Site(network, "b", "dom.b")
    network.topology.connect("a", "b", *LAN)
    return network, a, b


class TestAccounting:
    def test_messages_and_bytes_counted(self, wired):
        network, a, _b = wired
        before_messages = network.messages_sent
        before_bytes = network.bytes_sent
        a.request("b", "ping", {})
        # one request + one reply
        assert network.messages_sent == before_messages + 2
        assert network.bytes_sent > before_bytes

    def test_bigger_payloads_cost_more_bytes_and_time(self, wired):
        network, a, _b = wired
        a.request("b", "ping", {})
        small_time = network.now
        small_bytes = network.bytes_sent
        network_big = Network(Simulator())
        a2 = Site(network_big, "a", "dom.a")
        Site(network_big, "b", "dom.b")
        network_big.topology.connect("a", "b", *LAN)
        a2.request("b", "ping", {"padding": "x" * 50_000})
        assert network_big.bytes_sent > small_bytes
        assert network_big.now > small_time

    def test_send_to_unknown_site(self, wired):
        network, _a, _b = wired
        with pytest.raises(NetworkError):
            network.send("a", "ghost", "ping", {})


class TestByValueDelivery:
    def test_payload_identity_never_crosses(self, wired):
        network, _a, b = wired
        captured = {}

        def capture(message: Message):
            captured["payload"] = message.payload
            return True

        b.add_handler("capture", capture)
        original = {"rows": [1, 2, 3]}
        network.send("a", "b", "capture", original)
        network.run()
        assert captured["payload"] == original
        assert captured["payload"] is not original
        assert captured["payload"]["rows"] is not original["rows"]

    def test_message_metadata(self, wired):
        network, _a, b = wired
        seen = {}

        def capture(message: Message):
            seen["message"] = message
            return True

        b.add_handler("capture", capture)
        msg_id = network.send("a", "b", "capture", {"x": 1}, lamport=7)
        network.run()
        message = seen["message"]
        assert message.kind == "capture"
        assert (message.src, message.dst) == ("a", "b")
        assert message.msg_id == msg_id
        assert message.lamport == 7
        assert message.size > 0


class TestLifecycle:
    def test_unregister_then_replace(self, wired):
        network, a, b = wired
        network.unregister("b")
        with pytest.raises(NetworkError):
            a.request("b", "ping", {})
        replacement = Site(network, "b", "dom.b")
        assert a.request("b", "ping", {})["site"] == "b"
        assert replacement.site_id == "b"

    def test_unregister_unknown(self, wired):
        network, *_ = wired
        with pytest.raises(NetworkError):
            network.unregister("ghost")

    def test_duplicate_handler_rejected(self, wired):
        _network, a, _b = wired
        with pytest.raises(NetworkError):
            a.add_handler("ping", lambda message: None)
