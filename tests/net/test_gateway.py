"""The real-TCP gateway into a simulated site."""

import subprocess
import sys
import textwrap

import pytest

from repro.core import Principal, owner_only
from repro.core.errors import (
    AccessDeniedError,
    MethodNotFoundError,
    NamingError,
    NetworkError,
    OverloadError,
)
from repro.net import Network, Site, WAN
from repro.net.gateway import TcpGateway, TcpGatewayClient
from repro.sim import Simulator


@pytest.fixture
def gated_world():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)

    counter = haifa.create_object(display_name="counter")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "increment",
        "self.set('count', self.get('count') + (args[0] if args else 1))\n"
        "return self.get('count')",
    )
    counter.seal()
    haifa.register_object(counter, name="apps/counter")

    gateway = TcpGateway(haifa)
    yield gateway, haifa, boston, counter
    gateway.close()


class TestGateway:
    def test_ping(self, gated_world):
        gateway, *_ = gated_world
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            assert client.ping()["site"] == "haifa"

    def test_resolve_then_invoke(self, gated_world):
        gateway, _haifa, _boston, counter = gated_world
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            guid = client.resolve("apps/counter")
            assert guid == counter.guid
            assert client.invoke(guid, "increment", [5]) == 5
            assert client.invoke(guid, "increment") == 6
        assert counter.get_data("count") == 6

    def test_get_data_and_describe(self, gated_world):
        gateway, _haifa, _boston, counter = gated_world
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            assert client.get_data(counter.guid, "count") == 0
            description = client.describe(counter.guid)
            names = [item["name"] for item in description["items"]]
            assert "increment" in names
            assert "addDataItem" not in names  # external callers are strangers

    def test_acls_apply_to_external_callers(self, gated_world):
        gateway, haifa, *_ = gated_world
        owner = Principal("mrom://haifa/77.7", "technion.ee", "insider")
        guarded = haifa.create_object(display_name="guarded")
        guarded.define_fixed_method("secret", "return 42", acl=owner_only(owner))
        guarded.seal()
        haifa.register_object(guarded)
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(AccessDeniedError):
                client.invoke(guarded.guid, "secret")
            # a client claiming the owner's principal passes (authn is
            # out of scope, per the protocol spec)
            result = client.invoke(
                guarded.guid, "secret",
                caller={"guid": owner.guid, "domain": owner.domain},
            )
            assert result == 42

    def test_errors_cross_the_bridge_typed(self, gated_world):
        """Regression: every remote failure used to collapse into a bare
        NetworkError, so external callers could not tell denial from
        absence. The wire `error` name now maps back to the matching
        MROMError subclass."""
        gateway, _haifa, _boston, counter = gated_world
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(MethodNotFoundError, match="no_such_method"):
                client.invoke(counter.guid, "no_such_method")
            with pytest.raises(NetworkError, match="not at haifa"):
                client.invoke("mrom://haifa/99.99", "anything")
            with pytest.raises(NamingError, match="cannot resolve"):
                client.resolve("no/such/name")
            # denial vs absence are now distinct catchable types
            try:
                client.invoke(counter.guid, "no_such_method")
            except AccessDeniedError:  # pragma: no cover - the bug
                pytest.fail("absence must not surface as denial")
            except MethodNotFoundError:
                pass

    def test_gateway_request_can_pump_the_simulation(self, gated_world):
        gateway, haifa, boston, _counter = gated_world
        remote_echo = boston.create_object(display_name="echo")
        remote_echo.define_fixed_method("echo", "return args[0]")
        remote_echo.seal()
        boston.register_object(remote_echo, name="echo")
        # a haifa-side relay whose body crosses the simulated WAN
        relay = haifa.create_object(display_name="relay")
        relay.define_fixed_data("peer", haifa.ref_to(remote_echo.guid, site="boston"))
        relay.define_fixed_method(
            "relay", "return self.get('peer').invoke('echo', [args[0]])"
        )
        relay.seal()
        haifa.register_object(relay)
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            assert client.invoke(relay.guid, "relay", ["across two worlds"]) == (
                "across two worlds"
            )

    def test_concurrent_clients_serialized_safely(self, gated_world):
        import threading

        gateway, _haifa, _boston, counter = gated_world
        errors = []

        def hammer():
            try:
                with TcpGatewayClient(gateway.host, gateway.port) as client:
                    for _ in range(25):
                        client.invoke(counter.guid, "increment")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counter.get_data("count") == 100

    def test_concurrent_clients_under_backpressure_limits(self, gated_world):
        """Several clients hammering one gateway simultaneously: the
        kernel lock serializes them, so even an admission window of 1
        never sheds, no reply is lost or cross-wired, and
        ``requests_served`` accounts for every request exactly once."""
        import threading

        gateway, haifa, _boston, counter = gated_world
        haifa.inflight_limit = 1  # the lock keeps inflight at <= 1
        clients, per_client = 6, 20
        served_before = gateway.requests_served
        errors: list = []
        replies: dict[int, list] = {}

        def hammer(worker: int) -> None:
            mine: list = []
            replies[worker] = mine
            try:
                with TcpGatewayClient(gateway.host, gateway.port) as client:
                    for _ in range(per_client):
                        mine.append(client.invoke(counter.guid, "increment"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert haifa.shed_requests == 0  # serialization held the window
        assert haifa.inflight == 0  # every admission was released
        total = clients * per_client
        assert counter.get_data("count") == total
        assert gateway.requests_served - served_before == total
        # no interleaved replies: each client saw strictly increasing
        # counter values, and together they saw every value exactly once
        seen: list[int] = []
        for mine in replies.values():
            assert mine == sorted(mine)
            seen.extend(mine)
        assert sorted(seen) == list(range(1, total + 1))

    def test_gateway_sheds_typed_overload_when_window_closed(self, gated_world):
        gateway, haifa, _boston, counter = gated_world
        haifa.inflight_limit = 0  # admit nothing: every request sheds
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(OverloadError, match="admission window full"):
                client.invoke(counter.guid, "increment")
        assert haifa.shed_requests == 1
        assert counter.get_data("count") == 0
        haifa.inflight_limit = None
        with TcpGatewayClient(gateway.host, gateway.port) as client:
            assert client.invoke(counter.guid, "increment") == 1

    def test_truly_external_process(self, gated_world):
        """The acid test: a separate Python interpreter talks to the
        simulation over real TCP using only the client class."""
        gateway, _haifa, _boston, counter = gated_world
        script = textwrap.dedent(
            f"""
            from repro.net.gateway import TcpGatewayClient
            with TcpGatewayClient({gateway.host!r}, {gateway.port}) as client:
                guid = client.resolve("apps/counter")
                print(client.invoke(guid, "increment", [7]))
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=30,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip() == "7"
        assert counter.get_data("count") == 7
