"""Sites, transport and remote invocation (the RMI analog)."""

import pytest

from repro.core import Principal, owner_only
from repro.core.errors import (
    NetworkError,
    PartitionError,
    RemoteInvocationError,
)
from repro.net import Network, RemoteRef, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def pair():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    return network, haifa, boston


def make_service(site, name="svc"):
    obj = site.create_object(display_name=name)
    obj.define_fixed_data("hits", 0)
    obj.define_fixed_method(
        "echo", "self.set('hits', self.get('hits') + 1)\nreturn args[0]"
    )
    obj.define_fixed_method("hits", "return self.get('hits')")
    obj.seal()
    site.register_object(obj, name=f"apps/{name}")
    return obj


class TestRegistry:
    def test_created_objects_carry_site_identity(self, pair):
        _net, haifa, _boston = pair
        obj = make_service(haifa)
        assert obj.guid.startswith("mrom://haifa/")
        assert obj.principal.domain == "technion.ee"
        assert obj.environment["site"] == "haifa"

    def test_double_registration_rejected(self, pair):
        _net, haifa, _boston = pair
        obj = make_service(haifa)
        with pytest.raises(NetworkError):
            haifa.register_object(obj)

    def test_unregister(self, pair):
        _net, haifa, _boston = pair
        obj = make_service(haifa)
        haifa.unregister_object(obj.guid)
        assert not haifa.has_object(obj.guid)
        with pytest.raises(NetworkError):
            haifa.local_object(obj.guid)

    def test_duplicate_site_id_rejected(self, pair):
        net, _haifa, _boston = pair
        with pytest.raises(NetworkError):
            Site(net, "haifa")


class TestRemoteInvocation:
    def test_resolve_then_invoke(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        assert ref.invoke("echo", ["hello"]) == "hello"

    def test_state_lives_at_the_origin(self, pair):
        _net, haifa, boston = pair
        obj = make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        for _ in range(3):
            ref.invoke("echo", ["x"])
        assert obj.get_data("hits") == 3
        assert ref.invoke("hits") == 3

    def test_remote_error_propagates_with_type(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke("no_such_method")
        assert excinfo.value.remote_type == "MethodNotFoundError"

    def test_caller_principal_travels(self, pair):
        _net, haifa, boston = pair
        owner = Principal("mrom://boston/7.7", "mit.lcs", "researcher")
        obj = haifa.create_object(display_name="guarded")
        obj.define_fixed_method("secret", "return 42", acl=owner_only(owner))
        obj.seal()
        haifa.register_object(obj, name="apps/guarded")
        ref = boston.remote_resolve("haifa", "apps/guarded")
        assert ref.invoke("secret", caller=owner) == 42
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke("secret")  # anonymous-ish: boston site principal
        assert excinfo.value.remote_type == "AccessDeniedError"

    def test_remote_get_data(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        assert ref.get_data("hits") == 0

    def test_remote_describe_is_visibility_filtered(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        names = [item["name"] for item in ref.describe()["items"]]
        assert "echo" in names
        assert "addDataItem" not in names  # owner-only meta stays hidden

    def test_rtt_reflects_topology(self, pair):
        net, _haifa, boston = pair
        rtt = boston.ping("haifa")
        assert rtt >= 2 * WAN[0]

    def test_arguments_pass_by_value(self, pair):
        _net, haifa, boston = pair
        obj = haifa.create_object(display_name="keeper")
        obj.define_fixed_data("kept", None)
        obj.define_fixed_method("keep", "self.set('kept', args[0])\nreturn True")
        obj.seal()
        haifa.register_object(obj, name="apps/keeper")
        ref = boston.remote_resolve("haifa", "apps/keeper")
        payload = {"numbers": [1, 2, 3]}
        ref.invoke("keep", [payload])
        payload["numbers"].append(4)  # caller-side mutation after the call
        assert obj.get_data("kept") == {"numbers": [1, 2, 3]}

    def test_object_references_travel_by_identity(self, pair):
        _net, haifa, boston = pair
        service = make_service(haifa)
        directory = haifa.create_object(display_name="directory")
        directory.define_fixed_data("entries", {})
        directory.define_fixed_method(
            "publish", "self.get('entries')[args[0]] = args[1]\nreturn True"
        )
        directory.define_fixed_method("find", "return self.get('entries')[args[0]]")
        directory.seal()
        haifa.register_object(directory, name="apps/directory")
        directory.invoke("publish", ["svc", haifa.ref_to(service)])
        remote_directory = boston.remote_resolve("haifa", "apps/directory")
        found = remote_directory.invoke("find", ["svc"])
        assert isinstance(found, RemoteRef)
        assert found.guid == service.guid
        assert found.invoke("echo", ["via returned ref"]) == "via returned ref"


class TestPartitionBehaviour:
    def test_send_into_partition_fails_fast(self, pair):
        net, _haifa, boston = pair
        make_service(_haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        net.topology.partition({"haifa"}, {"boston"})
        with pytest.raises(PartitionError):
            ref.invoke("echo", ["lost"])

    def test_heal_restores_service(self, pair):
        net, haifa, boston = pair
        make_service(haifa)
        ref = boston.remote_resolve("haifa", "apps/svc")
        net.topology.partition({"haifa"}, {"boston"})
        with pytest.raises(PartitionError):
            ref.invoke("echo", ["lost"])
        net.topology.heal()
        assert ref.invoke("echo", ["back"]) == "back"


class TestFederatedNaming:
    def test_mount_remote_names(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        boston.mount_remote_names("haifa", "haifa")
        guid = boston.names.resolve("haifa/apps/svc")
        assert guid.startswith("mrom://haifa/")

    def test_lamport_clocks_advance_with_traffic(self, pair):
        _net, haifa, boston = pair
        make_service(haifa)
        before = boston.guids.lamport
        boston.ping("haifa")
        assert boston.guids.lamport > before
