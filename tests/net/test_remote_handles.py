"""Remote meta-operations: handles tokenized over the wire."""

import pytest

from repro.core import Principal, StaleHandleError, owner_only
from repro.core.errors import RemoteInvocationError
from repro.net import Network, Site, WAN
from repro.sim import Simulator


@pytest.fixture
def pair():
    network = Network(Simulator())
    haifa = Site(network, "haifa", "technion.ee")
    boston = Site(network, "boston", "mit.lcs")
    network.topology.connect("haifa", "boston", *WAN)
    return network, haifa, boston


@pytest.fixture
def owned(pair):
    """A mutable object at haifa whose owner operates from boston."""
    _network, haifa, boston = pair
    owner = Principal("mrom://boston/50.1", "mit.lcs", "owner")
    obj = haifa.create_object(
        display_name="serviced", owner=owner, extensible_meta=True,
        meta_acl=owner_only(owner),
    )
    obj.seal()
    obj.self_view().add_method("op", "return 'v1'")
    obj.self_view().add_data("config", {"mode": "fast"})
    haifa.register_object(obj, name="svc")
    ref = boston.remote_resolve("haifa", "svc")
    return obj, ref, owner


class TestRemoteSetMethod:
    def test_get_then_set_across_the_wire(self, owned):
        obj, ref, owner = owned
        description, handle = ref.invoke("getMethod", ["op"], caller=owner)
        assert description["name"] == "op"
        assert isinstance(handle, dict)  # a token, not a live capability
        ref.invoke("setMethod", [handle, {"body": "return 'v2'"}], caller=owner)
        assert obj.invoke("op", caller=owner) == "v2"

    def test_components_visible_to_owner(self, owned):
        _obj, ref, owner = owned
        description, _handle = ref.invoke("getMethod", ["op"], caller=owner)
        assert description["components"]["body"]["source"] == "return 'v1'"

    def test_token_goes_stale_after_replacement(self, owned):
        obj, ref, owner = owned
        _description, token = ref.invoke("getMethod", ["op"], caller=owner)
        # delete and re-add under the same name: new item instance
        ref.invoke("deleteMethod", ["op"], caller=owner)
        ref.invoke("addMethod", ["op", "return 'reborn'"], caller=owner)
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke("setMethod", [token, {"body": "return 'x'"}], caller=owner)
        assert excinfo.value.remote_type == "StaleHandleError"
        assert obj.invoke("op", caller=owner) == "reborn"

    def test_forged_token_rejected(self, owned):
        _obj, ref, owner = owned
        forged = {"__item_handle__": True, "name": "op", "category": "method",
                  "nonce": "0" * 12}
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke("setMethod", [forged, {"body": "return 'x'"}], caller=owner)
        assert excinfo.value.remote_type == "StaleHandleError"

    def test_hostile_body_rejected_at_install(self, owned):
        obj, ref, owner = owned
        _description, handle = ref.invoke("getMethod", ["op"], caller=owner)
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke(
                "setMethod", [handle, {"body": "import os"}], caller=owner
            )
        assert excinfo.value.remote_type == "SandboxViolation"
        # the method is untouched
        assert obj.invoke("op", caller=owner) == "v1"


class TestRemoteSetDataItem:
    def test_rename_across_the_wire(self, owned):
        obj, ref, owner = owned
        _description, handle = ref.invoke("getDataItem", ["config"], caller=owner)
        ref.invoke("setDataItem", [handle, {"name": "settings"}], caller=owner)
        assert obj.containers.has_data("settings")
        assert not obj.containers.has_data("config")

    def test_stale_data_token(self, owned):
        _obj, ref, owner = owned
        _description, token = ref.invoke("getDataItem", ["config"], caller=owner)
        ref.invoke("deleteDataItem", ["config"], caller=owner)
        ref.invoke("addDataItem", ["config", {}], caller=owner)
        with pytest.raises(RemoteInvocationError) as excinfo:
            ref.invoke("setDataItem", [token, {"name": "x"}], caller=owner)
        assert excinfo.value.remote_type == "StaleHandleError"

    def test_local_handles_still_work(self, owned):
        obj, _ref, owner = owned
        description, handle = obj.invoke("getDataItem", ["config"], caller=owner)
        assert not isinstance(handle, dict)
        obj.invoke("setDataItem", [handle, {"metadata": {"t": 1}}], caller=owner)
        updated, _h = obj.invoke("getDataItem", ["config"], caller=owner)
        assert updated["metadata"]["t"] == 1
