"""Non-blocking RMI: futures, event-loop retries, and admission control.

The synchronous request path pumps the simulator until its own reply
lands — correct, but it serializes the caller. `Site.request_async`
instead returns a :class:`BatchFuture` immediately and registers an
:class:`AsyncCall` state machine whose timeouts and retries are
scheduled simulator events, so hundreds of requests can be in flight
through one deterministic pump. These tests cover the future lifecycle,
retry behaviour under injected faults, typed error propagation, and the
per-site admission window (backpressure) the serving side now enforces.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (
    MethodNotFoundError,
    NetworkError,
    OverloadError,
    RequestTimeoutError,
)
from repro.faults import DropInjector, FaultPlane
from repro.net import LAN, Network, RetryPolicy, Site
from repro.sim import Simulator

from ..conftest import build_counter

FAST = RetryPolicy(attempts=4, timeout=0.5, backoff=0.05, multiplier=2.0)


def counter_world(seed=0, sites=("a", "b")):
    network = Network(Simulator(seed))
    world = {name: Site(network, name) for name in sites}
    for left, right in zip(sites, sites[1:]):
        network.topology.connect(left, right, *LAN)
    counter = build_counter()
    world["b"].register_object(counter)
    return network, world, counter


class TestAsyncFutures:
    def test_future_pends_until_pumped_then_resolves(self):
        network, sites, counter = counter_world()
        future = sites["a"].remote_invoke_async("b", counter.guid, "increment", [5])
        assert not future.done  # nothing moved yet: no implicit pump
        with pytest.raises(NetworkError, match="not resolved yet"):
            future.result()
        assert sites["a"].wait(future) == 5
        assert future.done
        assert future.result() == 5  # results are stable once settled

    def test_many_in_flight_resolve_through_one_pump(self):
        network, sites, counter = counter_world()
        futures = [
            sites["a"].remote_invoke_async("b", counter.guid, "increment", [1])
            for _ in range(50)
        ]
        assert not any(future.done for future in futures)
        results = sites["a"].wait_all(futures)
        assert sorted(results) == list(range(1, 51))
        assert counter.get_data("count", caller=counter.owner) == 50

    def test_when_done_callbacks_chain_new_work(self):
        """The load drivers build closed loops this way: each completion
        schedules the next request from inside the event loop."""
        network, sites, counter = counter_world()
        seen: list = []

        def chain(future):
            seen.append(future.result())
            if len(seen) < 5:
                sites["a"].remote_invoke_async(
                    "b", counter.guid, "increment", [1]
                ).when_done(chain)

        sites["a"].remote_invoke_async("b", counter.guid, "increment", [1]).when_done(
            chain
        )
        network.run()
        assert seen == [1, 2, 3, 4, 5]

    def test_when_done_on_settled_future_fires_immediately(self):
        network, sites, counter = counter_world()
        future = sites["a"].remote_invoke_async("b", counter.guid, "peek")
        sites["a"].wait(future)
        fired: list = []
        future.when_done(fired.append)
        assert fired == [future]

    def test_async_and_sync_calls_interleave(self):
        """A sync call's pump settles async futures that are in flight —
        the reply path is shared."""
        network, sites, counter = counter_world()
        future = sites["a"].remote_invoke_async("b", counter.guid, "increment", [3])
        assert sites["a"].remote_invoke("b", counter.guid, "increment", [10]) in (
            3 + 10,
            10,
        )
        assert future.done  # the sync pump carried the async reply home
        assert counter.get_data("count", caller=counter.owner) == 13

    def test_get_data_and_describe_async(self):
        network, sites, counter = counter_world()
        counter.invoke("increment", [9], caller=counter.owner)
        data = sites["a"].remote_get_data_async("b", counter.guid, "count")
        description = sites["a"].remote_describe_async("b", counter.guid)
        assert sites["a"].wait(data) == 9
        names = [item["name"] for item in sites["a"].wait(description)["items"]]
        assert "increment" in names

    def test_remote_ref_async_verbs(self):
        network, sites, counter = counter_world()
        ref = sites["a"].ref_to(counter.guid, site="b")
        assert sites["a"].wait(ref.invoke_async("increment", [2])) == 2
        assert sites["a"].wait(ref.get_data_async("count")) == 2
        description = sites["a"].wait(ref.describe_async())
        assert any(item["name"] == "peek" for item in description["items"])

    def test_wait_on_drained_simulation_raises(self):
        """A policy-free request whose message is dropped can never
        settle; :meth:`Site.wait` surfaces that instead of spinning."""
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"], limit=1)
        )
        orphan = sites["a"].remote_invoke_async("b", counter.guid, "increment")
        with pytest.raises(NetworkError, match="drained"):
            sites["a"].wait(orphan)
        with pytest.raises(NetworkError, match="unresolved"):
            sites["a"].wait_all([orphan])


class TestAsyncRetries:
    def test_dropped_request_retried_by_scheduled_events(self):
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"], limit=2)
        )
        future = sites["a"].remote_invoke_async(
            "b", counter.guid, "increment", [1], policy=FAST
        )
        assert sites["a"].wait(future) == 1
        assert counter.get_data("count", caller=counter.owner) == 1

    def test_exhausted_attempts_fail_the_future_typed(self):
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["invoke"])
        )
        future = sites["a"].remote_invoke_async(
            "b", counter.guid, "increment", [1], policy=FAST
        )
        network.run()
        assert future.done
        with pytest.raises(RequestTimeoutError):
            future.result()
        assert counter.get_data("count", caller=counter.owner) == 0

    def test_retries_never_double_execute(self):
        """Dropped replies force retries; the served ledger replays."""
        network, sites, counter = counter_world()
        FaultPlane(network, seed=1).add(
            DropInjector(rate=1.0, only_kinds=["reply"], limit=1)
        )
        future = sites["a"].remote_invoke_async(
            "b", counter.guid, "increment", [1], policy=FAST
        )
        assert sites["a"].wait(future) == 1
        assert counter.get_data("count", caller=counter.owner) == 1
        assert sites["b"].replayed_requests == 1

    def test_async_runs_are_deterministic(self):
        def run(seed):
            network, sites, counter = counter_world(seed=seed)
            FaultPlane(network, seed=seed).add(
                DropInjector(rate=0.3, only_kinds=["invoke"])
            )
            futures = [
                sites["a"].remote_invoke_async(
                    "b", counter.guid, "increment", [1], policy=FAST
                )
                for _ in range(20)
            ]
            network.run()
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(("ok", future.result()))
                except Exception as exc:
                    outcomes.append(("err", type(exc).__name__))
            return outcomes, network.now

        assert run(42) == run(42)


class TestTypedAsyncErrors:
    def test_remote_failure_settles_future_with_matching_type(self):
        network, sites, counter = counter_world()
        future = sites["a"].remote_invoke_async("b", counter.guid, "no_such")
        network.run()
        with pytest.raises(MethodNotFoundError, match="no_such"):
            future.result()

    def test_wait_all_raises_first_stored_failure(self):
        network, sites, counter = counter_world()
        futures = [
            sites["a"].remote_invoke_async("b", counter.guid, "increment", [1]),
            sites["a"].remote_invoke_async("b", counter.guid, "missing"),
        ]
        with pytest.raises(MethodNotFoundError):
            sites["a"].wait_all(futures)
        assert all(future.done for future in futures)


class TestAdmissionControl:
    def test_window_sheds_typed_overload_under_concurrency(self):
        network, sites, counter = counter_world()
        sites["b"].inflight_limit = 1
        sites["b"].service_delay = 0.01  # requests overlap in the window
        futures = [
            sites["a"].remote_invoke_async("b", counter.guid, "increment", [1])
            for _ in range(4)
        ]
        network.run()
        outcomes = []
        for future in futures:
            try:
                future.result()
                outcomes.append("ok")
            except OverloadError:
                outcomes.append("shed")
        assert outcomes.count("shed") == sites["b"].shed_requests > 0
        # every non-shed request completed: nothing was lost
        assert counter.get_data("count", caller=counter.owner) == outcomes.count(
            "ok"
        )
        assert sites["b"].inflight == 0  # window fully drained

    def test_shed_requests_get_fresh_admission_on_retry(self):
        """A shed refusal must not be pinned in the served ledger: once
        the window drains, a retry of the same logical request is
        admitted and executes."""
        network, sites, counter = counter_world()
        sites["b"].inflight_limit = 1
        sites["b"].service_delay = 0.05
        blocker = sites["a"].remote_invoke_async(
            "b", counter.guid, "increment", [1]
        )
        victim = sites["a"].remote_invoke_async(
            "b", counter.guid, "increment", [1],
            policy=RetryPolicy(attempts=3, timeout=0.02, backoff=0.2),
        )
        network.run()
        assert blocker.result() in (1, 2)
        assert victim.result() in (1, 2)
        assert counter.get_data("count", caller=counter.owner) == 2
        assert sites["b"].shed_requests >= 1

    def test_unlimited_window_never_sheds(self):
        network, sites, counter = counter_world()
        sites["b"].service_delay = 0.01
        futures = [
            sites["a"].remote_invoke_async("b", counter.guid, "increment", [1])
            for _ in range(30)
        ]
        sites["a"].wait_all(futures)
        assert sites["b"].shed_requests == 0
        assert counter.get_data("count", caller=counter.owner) == 30

    def test_sync_path_shares_the_window(self):
        """Blocking requests honour the same admission budget."""
        network, sites, counter = counter_world()
        sites["b"].inflight_limit = 0
        with pytest.raises(OverloadError, match="admission window full"):
            sites["a"].remote_invoke("b", counter.guid, "increment", [1])
        assert sites["b"].shed_requests >= 1
        sites["b"].inflight_limit = None
        assert sites["a"].remote_invoke("b", counter.guid, "increment", [1]) == 1
