"""Property tests for the consistent-hash ring (docs/CLUSTER.md §ring).

The ring's whole value is two statistical properties — balance (each
site's share of K keys concentrates around K/N) and minimal disruption
(membership changes relocate ~K/N keys, never a global reshuffle) —
plus one exact property: determinism across processes. Each is driven
over 200+ randomized seeds/topologies; the tolerances were measured
empirically (worst observed: 1.60x / 0.55x share, 1.51x relocation)
and gated with real headroom so a hashing regression trips them.
"""

import random

import pytest

from repro.core.errors import NamingError
from repro.naming import HashRing

pytestmark = pytest.mark.cluster

#: gating tolerances — generous vs. the measured worst case, tight
#: enough that a broken vnode projection or non-seeded hash fails
MAX_SHARE = 2.0   # x the fair share K/N, per site
MIN_SHARE = 0.35  # x the fair share K/N, per site
MAX_MOVED = 2.0   # x the expected relocation K/(N+1) (add) or K/N (remove)

SEEDS = range(210)
KEYS = [f"apps/k{index}" for index in range(600)]


def _ring_for(seed: int) -> tuple[HashRing, int]:
    rng = random.Random(seed)
    n_sites = rng.randint(3, 10)
    ring = HashRing(
        [f"s{index}" for index in range(n_sites)], vnodes=64, seed=seed
    )
    return ring, n_sites


# -- balance ---------------------------------------------------------------


def test_ring_balance_within_tolerance_across_seeds():
    for seed in SEEDS:
        ring, n_sites = _ring_for(seed)
        spread = ring.spread(KEYS)
        assert sum(spread.values()) == len(KEYS)
        fair = len(KEYS) / n_sites
        for site_id, share in spread.items():
            assert share <= MAX_SHARE * fair, (
                f"seed {seed}: {site_id} owns {share} keys "
                f"(fair {fair:.0f}, ceiling {MAX_SHARE}x)"
            )
            assert share >= MIN_SHARE * fair, (
                f"seed {seed}: {site_id} owns only {share} keys "
                f"(fair {fair:.0f}, floor {MIN_SHARE}x)"
            )


def test_more_vnodes_tighten_the_spread():
    # the smoothing claim, on one seed: variance shrinks as vnodes grow
    def imbalance(vnodes: int) -> float:
        ring = HashRing([f"s{i}" for i in range(8)], vnodes=vnodes, seed=7)
        spread = ring.spread(KEYS)
        fair = len(KEYS) / 8
        return max(abs(count - fair) for count in spread.values()) / fair

    assert imbalance(256) < imbalance(4)


# -- minimal disruption ----------------------------------------------------


def test_adding_a_site_relocates_only_toward_it_across_seeds():
    for seed in SEEDS:
        ring, n_sites = _ring_for(seed)
        before = {key: ring.owner(key) for key in KEYS}
        ring.add_site("joined")
        moved = [key for key in KEYS if ring.owner(key) != before[key]]
        # every relocated key lands on the new site — nothing reshuffles
        # between the incumbents
        for key in moved:
            assert ring.owner(key) == "joined", (
                f"seed {seed}: {key} moved between incumbents "
                f"({before[key]} -> {ring.owner(key)})"
            )
        expected = len(KEYS) / (n_sites + 1)
        assert len(moved) <= MAX_MOVED * expected, (
            f"seed {seed}: {len(moved)} keys relocated "
            f"(expected ~{expected:.0f}, ceiling {MAX_MOVED}x)"
        )


def test_removing_a_site_relocates_only_its_own_keys_across_seeds():
    for seed in SEEDS:
        ring, n_sites = _ring_for(seed)
        victim = f"s{random.Random(seed ^ 0x5EED).randrange(n_sites)}"
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove_site(victim)
        for key in KEYS:
            if before[key] == victim:
                assert ring.owner(key) != victim
            else:
                # survivors keep every key they already owned
                assert ring.owner(key) == before[key], (
                    f"seed {seed}: {key} moved off surviving "
                    f"{before[key]} when {victim} left"
                )
        orphaned = sum(1 for key in KEYS if before[key] == victim)
        assert orphaned <= MAX_MOVED * (len(KEYS) / n_sites)


def test_add_then_remove_round_trips_ownership():
    ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64, seed=3)
    before = {key: ring.owner(key) for key in KEYS}
    ring.add_site("transient")
    ring.remove_site("transient")
    assert {key: ring.owner(key) for key in KEYS} == before


# -- determinism -----------------------------------------------------------


def test_ring_is_a_pure_function_of_membership_and_seed():
    sites = [f"s{index}" for index in range(6)]
    forward = HashRing(sites, vnodes=64, seed=11)
    shuffled = list(sites)
    random.Random(99).shuffle(shuffled)
    backward = HashRing(shuffled, vnodes=64, seed=11)
    # insertion order must not matter: two processes building the ring
    # from differently-ordered configuration agree on every owner
    assert all(forward.owner(key) == backward.owner(key) for key in KEYS)
    assert forward.sites == backward.sites


def test_seed_and_vnodes_change_the_ring():
    sites = ["s0", "s1", "s2", "s3", "s4"]
    base = HashRing(sites, vnodes=64, seed=0)
    reseeded = HashRing(sites, vnodes=64, seed=1)
    assert any(base.owner(key) != reseeded.owner(key) for key in KEYS)


def test_single_site_owns_everything():
    ring = HashRing(["only"], vnodes=8, seed=0)
    assert ring.spread(KEYS) == {"only": len(KEYS)}


# -- the error surface -----------------------------------------------------


def test_ring_error_cases():
    with pytest.raises(NamingError):
        HashRing(vnodes=0)
    with pytest.raises(NamingError):
        HashRing([""])
    ring = HashRing(["s0"])
    with pytest.raises(NamingError):
        ring.add_site("s0")
    with pytest.raises(NamingError):
        ring.remove_site("ghost")
    empty = HashRing()
    with pytest.raises(NamingError):
        empty.owner("apps/k0")
    assert len(empty) == 0 and "s0" in ring and "s9" not in ring
    assert ring.to_mapping() == {"vnodes": 128, "seed": 0, "sites": ["s0"]}
