"""Hierarchical, federated naming."""

import pytest

from repro.core.errors import NamingError
from repro.naming import NameService, join_path, split_path


class TestPaths:
    def test_split_normalises(self):
        assert split_path("/apps/db/") == ["apps", "db"]

    def test_empty_rejected(self):
        with pytest.raises(NamingError):
            split_path("///")

    def test_relative_segments_rejected(self):
        with pytest.raises(NamingError):
            split_path("apps/../etc")

    def test_join_inverts_split(self):
        assert join_path(split_path("/a/b/c")) == "a/b/c"


class TestLocalBindings:
    def test_bind_and_resolve(self):
        names = NameService()
        names.bind("apps/db", "g1")
        assert names.resolve("apps/db") == "g1"
        assert names.resolve("/apps/db/") == "g1"  # normalization

    def test_rebind_requires_replace(self):
        names = NameService()
        names.bind("x", "g1")
        with pytest.raises(NamingError):
            names.bind("x", "g2")
        names.bind("x", "g2", replace=True)
        assert names.resolve("x") == "g2"

    def test_unbind(self):
        names = NameService()
        names.bind("x", "g1")
        assert names.unbind("x") == "g1"
        with pytest.raises(NamingError):
            names.resolve("x")

    def test_unbind_missing(self):
        with pytest.raises(NamingError):
            NameService().unbind("ghost")

    def test_contains_and_try_resolve(self):
        names = NameService()
        names.bind("x", "g1")
        assert "x" in names
        assert names.try_resolve("ghost") is None


class TestFederation:
    def make_pair(self):
        haifa = NameService("haifa")
        boston = NameService("boston")
        haifa.bind("apps/db", "haifa-db")
        boston.mount("haifa", haifa)
        return haifa, boston

    def test_resolution_through_mount(self):
        _haifa, boston = self.make_pair()
        assert boston.resolve("haifa/apps/db") == "haifa-db"

    def test_local_binding_wins_over_mount(self):
        haifa, boston = self.make_pair()
        boston.bind("haifa/apps/db", "shadow")
        assert boston.resolve("haifa/apps/db") == "shadow"
        # the authoritative service is unaffected
        assert haifa.resolve("apps/db") == "haifa-db"

    def test_longest_prefix_mount_wins(self):
        root = NameService("root")
        shallow = NameService("shallow")
        deep = NameService("deep")
        shallow.bind("db", "shallow-db")
        deep.bind("db", "deep-db")
        root.mount("apps", shallow)
        root.mount("apps/special", deep)
        assert root.resolve("apps/db") == "shallow-db"
        assert root.resolve("apps/special/db") == "deep-db"

    def test_chained_mounts(self):
        a, b, c = NameService("a"), NameService("b"), NameService("c")
        c.bind("leaf", "deep-guid")
        b.mount("c", c)
        a.mount("b", b)
        assert a.resolve("b/c/leaf") == "deep-guid"

    def test_self_mount_rejected(self):
        names = NameService()
        with pytest.raises(NamingError):
            names.mount("loop", names)

    def test_duplicate_mount_rejected(self):
        haifa, boston = self.make_pair()
        with pytest.raises(NamingError):
            boston.mount("haifa", haifa)

    def test_unmount(self):
        _haifa, boston = self.make_pair()
        boston.unmount("haifa")
        with pytest.raises(NamingError):
            boston.resolve("haifa/apps/db")

    def test_list_bindings_spans_mounts(self):
        _haifa, boston = self.make_pair()
        boston.bind("local/thing", "g-local")
        listed = dict(boston.list_bindings())
        assert listed == {"local/thing": "g-local", "haifa/apps/db": "haifa-db"}

    def test_list_bindings_with_prefix(self):
        names = NameService()
        names.bind("apps/db", "g1")
        names.bind("apps/calc", "g2")
        names.bind("other", "g3")
        listed = dict(names.list_bindings("apps"))
        assert listed == {"apps/db": "g1", "apps/calc": "g2"}
