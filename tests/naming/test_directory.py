"""The partitioned directory: shards, leases, typed staleness, moves.

Unit-level coverage for what the cluster scenarios exercise in bulk:
generation-monotonic shard updates, client lease caching, the typed
``StaleLeaseError`` surviving both wire rebuild paths (async
``error_for_name`` and the sync reply decoder), the migration commit
updating the directory inside the transfer's resolution hook, shard
crash/republish, and the TCP gateway serving ``dir.*`` / ``cluster.*``
to an external process.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (
    MROMError,
    NamingError,
    RemoteInvocationError,
    StaleLeaseError,
    error_for_name,
)
from repro.naming import ClusterManager, DirectoryClient, HashRing, Lease

from tests.conftest import make_site_world

pytestmark = pytest.mark.cluster


def cluster_world(seed: int = 0, sites: int = 3, client_ids: tuple = ("c0",)):
    """Serving sites + managers on a shared ring, plus client sites."""
    names = tuple(f"s{i}" for i in range(sites)) + tuple(client_ids)
    network, all_sites = make_site_world(
        seed=seed, names=names, domain="cluster.{name}"
    )
    server_ids = [f"s{i}" for i in range(sites)]
    ring = HashRing(server_ids, vnodes=64, seed=seed)
    managers = {
        site_id: ClusterManager(all_sites[site_id], ring)
        for site_id in server_ids
    }
    clients = {
        cid: DirectoryClient(all_sites[cid], ring) for cid in client_ids
    }
    return network, all_sites, ring, managers, clients


def publish_counter(manager, name: str):
    site = manager.site
    counter = site.create_object(display_name=f"counter:{name}")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "increment",
        "step = args[0] if args else 1\n"
        "self.set('count', self.get('count') + step)\n"
        "return self.get('count')",
    )
    counter.define_fixed_method("peek", "return self.get('count')")
    counter.seal()
    manager.publish(counter, name)
    return counter


# -- the typed error -------------------------------------------------------


class TestStaleLeaseError:
    def test_carries_and_parses_its_generation(self):
        error = StaleLeaseError(name="apps/k0", generation=4)
        assert error.generation == 4
        assert "generation=4" in str(error)

    def test_survives_the_wire_rebuild(self):
        # the async path rebuilds errors by name from (type, message);
        # the generation must come back out of the message text
        error = StaleLeaseError(name="apps/k0", generation=7)
        rebuilt = error_for_name(type(error).__name__, str(error))
        assert isinstance(rebuilt, StaleLeaseError)
        assert rebuilt.generation == 7

    def test_is_a_naming_error(self):
        assert isinstance(StaleLeaseError(), NamingError)


# -- the shard -------------------------------------------------------------


class TestDirectoryShard:
    def test_resolve_hit_miss_and_counters(self):
        _network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        publish_counter(managers[ring.owner(name)], name)
        client = clients["c0"]
        lease = client.lease_for(name)
        assert isinstance(lease, Lease)
        assert lease.site == ring.owner(name) and lease.generation == 1
        shard = managers[ring.owner(name)].shard
        assert shard.hits == 1 and shard.misses == 0
        with pytest.raises(MROMError):
            client.lease_for("apps/ghost", refresh=True)
        ghost_shard = managers[ring.owner("apps/ghost")].shard
        assert ghost_shard.misses == 1

    def test_updates_never_regress_generations(self):
        _network, _sites, ring, managers, _clients = cluster_world()
        shard = managers["s0"].shard
        fresh = {"name": "n", "guid": "g", "site": "s1", "generation": 3}
        assert shard.apply_update(fresh)["applied"] is True
        replay = {"name": "n", "guid": "g", "site": "s0", "generation": 2}
        verdict = shard.apply_update(replay)
        assert verdict == {"applied": False, "generation": 3}
        assert shard.entries["n"]["site"] == "s1"
        assert shard.stale_updates == 1
        # equal generation re-applies idempotently (a retried update)
        assert shard.apply_update(fresh)["applied"] is True

    def test_malformed_updates_are_refused(self):
        _network, _sites, _ring, managers, _clients = cluster_world()
        shard = managers["s0"].shard
        with pytest.raises(NamingError):
            shard.apply_update({"name": "n", "guid": "", "site": "s1",
                                "generation": 1})
        with pytest.raises(NamingError):
            shard.apply_update({"name": "n", "guid": "g", "site": "s1",
                                "generation": 0})

    def test_forget_then_republish_rebuilds_the_soft_state(self):
        network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        publish_counter(managers[ring.owner(name)], name)
        shard = managers[ring.owner(name)].shard
        shard.forget()
        client = clients["c0"]
        with pytest.raises(MROMError):
            client.lease_for(name, refresh=True)
        restored = sum(m.republish() for m in managers.values())
        network.run()
        assert restored == 1
        assert client.lease_for(name, refresh=True).site == ring.owner(name)


# -- the client ------------------------------------------------------------


class TestDirectoryClient:
    def test_lease_cache_hits_and_invalidate(self):
        _network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        publish_counter(managers[ring.owner(name)], name)
        client = clients["c0"]
        first = client.lease_for(name)
        again = client.lease_for(name)
        assert first == again
        assert client.cache_hits == 1 and client.cache_misses == 1
        client.invalidate(name)
        client.lease_for(name)
        assert client.cache_misses == 2

    def test_admit_keeps_the_newer_generation(self):
        _network, _sites, ring, _managers, clients = cluster_world()
        client = clients["c0"]
        client._admit("n", {"guid": "g", "site": "s1", "generation": 5})
        stale = client._admit("n", {"guid": "g", "site": "s0", "generation": 2})
        # a late resolve from before the move must not clobber the cache
        assert stale.site == "s1" and stale.generation == 5

    def test_invoke_and_migrate_redirects_converge(self):
        network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        client = clients["c0"]
        assert client.invoke(name, "increment", [1]) == 1
        dst = next(s for s in managers if s != home)
        managers[home].migrate(name, dst)
        network.run()
        # the cached lease now points at the old home at generation 1:
        # the next invoke gets a typed refusal, re-resolves, lands at dst
        assert client.invoke(name, "increment", [1]) == 2
        assert client.stale == 1
        assert managers[home].stale_served == 1
        assert client.leases[name].site == dst
        assert client.leases[name].generation == 2

    def test_sync_stale_arrives_typed_through_decode_reply(self):
        network, sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        dst = next(s for s in managers if s != home)
        managers[home].migrate(name, dst)
        network.run()
        # a raw request under the dead generation — no client redirect
        # machinery — must still surface as the typed error, not as an
        # opaque RemoteInvocationError
        with pytest.raises(StaleLeaseError) as caught:
            sites["c0"].request(
                home, "cluster.invoke",
                {"name": name, "generation": 1, "method": "peek",
                 "args": [], "caller": {}},
            )
        assert not isinstance(caught.value, RemoteInvocationError)

    def test_redirect_budget_exhausts_with_the_typed_error(self):
        _network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        # wedge the placement in "moving": every invoke refuses as stale
        managers[home].placements[name]["state"] = "moving"
        client = clients["c0"]
        client.max_redirects = 2
        with pytest.raises(StaleLeaseError):
            client.invoke(name, "peek")
        assert client.stale == 3  # initial try + 2 redirects

    def test_async_invoke_follows_the_same_redirects(self):
        network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        client = clients["c0"]
        client.lease_for(name)  # warm the cache with generation 1
        dst = next(s for s in managers if s != home)
        managers[home].migrate(name, dst)
        network.run()
        future = client.invoke_async(name, "increment", [5])
        network.run()
        assert future.done and future.result() == 5
        assert client.leases[name].site == dst

    def test_refresh_async_settles_with_the_lease(self):
        network, _sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        publish_counter(managers[ring.owner(name)], name)
        future = clients["c0"].refresh_async(name)
        network.run()
        lease = future.result()
        assert isinstance(lease, Lease) and lease.generation == 1
        assert clients["c0"].refreshes == 1


# -- the manager -----------------------------------------------------------


class TestClusterManager:
    def test_publish_is_single_shot_per_name(self):
        _network, _sites, ring, managers, _clients = cluster_world()
        name = "apps/k0"
        manager = managers[ring.owner(name)]
        publish_counter(manager, name)
        with pytest.raises(NamingError):
            publish_counter(manager, name)

    def test_migration_commit_updates_directory_in_the_hook(self):
        network, _sites, ring, managers, _clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        counter = publish_counter(managers[home], name)
        dst = next(s for s in managers if s != home)
        managers[home].migrate(name, dst)
        network.run()
        assert name not in managers[home].placements
        assert managers[dst].placements[name] == {
            "guid": counter.guid, "generation": 2, "state": "active",
        }
        shard = managers[ring.owner(name)].shard
        assert shard.entries[name]["site"] == dst
        assert shard.entries[name]["generation"] == 2
        assert all(m.quiescent for m in managers.values())

    def test_migrating_a_missing_name_is_a_naming_error(self):
        _network, _sites, _ring, managers, _clients = cluster_world()
        with pytest.raises(NamingError):
            managers["s0"].migrate("apps/ghost", "s1")

    def test_adopt_is_idempotent_by_generation(self):
        network, sites, ring, managers, _clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        counter = publish_counter(managers[home], name)
        dst = next(s for s in managers if s != home)
        managers[home].migrate(name, dst)
        network.run()
        # a duplicated adopt from the already-absorbed move
        verdict = sites[home].request(
            dst, "cluster.adopt",
            {"name": name, "guid": counter.guid, "generation": 2},
        )
        assert verdict == {"adopted": False, "generation": 2}

    def test_depart_arrive_round_trip_bumps_the_generation(self):
        network, sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        clients["c0"].invoke(name, "increment", [3])
        dst = next(s for s in managers if s != home)
        # the coordinator-mediated move the multi-process driver uses
        shipment = sites["c0"].request(home, "cluster.depart", {"name": name})
        assert shipment["generation"] == 2
        landed = sites["c0"].request(
            dst, "cluster.arrive",
            {"name": name, "package": shipment["package"],
             "generation": shipment["generation"], "src": home},
        )
        assert landed["generation"] == 2
        sites["c0"].request(
            ring.owner(name), "dir.update",
            {"name": name, "guid": landed["guid"], "site": dst,
             "generation": 2},
        )
        # state survived the hop; the stale client converges onto dst
        assert clients["c0"].invoke(name, "peek") == 3
        assert clients["c0"].leases[name].site == dst

    def test_stats_reports_placements_and_counts(self):
        network, sites, ring, managers, clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        clients["c0"].invoke(name, "increment", [2])
        stats = sites["c0"].request(home, "cluster.stats", {})
        assert stats["counts"] == {name: 2}
        assert stats["placements"][name]["generation"] == 1
        assert stats["site"] == home


# -- the gateway path ------------------------------------------------------


class TestGatewayClusterSurface:
    def test_dir_and_cluster_kinds_round_trip_over_tcp(self):
        from repro.net.gateway import TcpGateway, TcpGatewayClient

        _network, sites, ring, managers, _clients = cluster_world()
        name = "apps/k0"
        home = ring.owner(name)
        publish_counter(managers[home], name)
        with TcpGateway(sites[home]) as gateway:
            with TcpGatewayClient(gateway.host, gateway.port) as tcp:
                lease = tcp.call("dir.resolve", {"name": name})
                assert lease["site"] == home and lease["generation"] == 1
                result = tcp.call(
                    "cluster.invoke",
                    {"name": name, "generation": 1, "method": "increment",
                     "args": [4], "caller": {}},
                )
                assert result == 4
                # a stale generation is typed even across real TCP
                with pytest.raises(StaleLeaseError):
                    tcp.call(
                        "cluster.invoke",
                        {"name": name, "generation": 9, "method": "peek",
                         "args": [], "caller": {}},
                    )

    def test_unknown_kind_is_still_refused(self):
        from repro.core.errors import NetworkError
        from repro.net.gateway import TcpGateway, TcpGatewayClient

        _network, sites, _ring, _managers, _clients = cluster_world()
        with TcpGateway(sites["s0"]) as gateway:
            with TcpGatewayClient(gateway.host, gateway.port) as tcp:
                with pytest.raises(NetworkError):
                    tcp.call("cluster.bogus", {})
