"""Decentralized identity: guid minting, parsing, Lamport merging."""

import pytest

from repro.core.errors import NamingError
from repro.naming import Guid, GuidFactory, is_guid_text, parse_guid


class TestGuid:
    def test_text_round_trip(self):
        guid = Guid("haifa", 12, 3)
        assert parse_guid(guid.text()) == guid

    def test_text_form(self):
        assert Guid("haifa", 12, 3).text() == "mrom://haifa/12.3"

    def test_ordering_is_total_and_stable(self):
        guids = [Guid("b", 1, 1), Guid("a", 2, 1), Guid("a", 1, 2), Guid("a", 1, 1)]
        ordered = sorted(guids)
        assert ordered == [
            Guid("a", 1, 1),
            Guid("a", 1, 2),
            Guid("a", 2, 1),
            Guid("b", 1, 1),
        ]

    @pytest.mark.parametrize(
        "text",
        ["mrom://", "mrom://site", "mrom://site/1", "http://site/1.2",
         "mrom://site/1.2.3", "mrom://sp ace/1.2"],
    )
    def test_malformed_rejected(self, text):
        assert not is_guid_text(text)
        with pytest.raises(NamingError):
            parse_guid(text)


class TestFactory:
    def test_fresh_never_repeats(self):
        mint = GuidFactory("haifa")
        minted = {mint.fresh() for _ in range(1000)}
        assert len(minted) == 1000

    def test_two_sites_never_collide(self):
        haifa = GuidFactory("haifa")
        boston = GuidFactory("boston")
        ours = {haifa.fresh() for _ in range(100)}
        theirs = {boston.fresh() for _ in range(100)}
        assert not ours & theirs

    def test_lamport_monotone(self):
        mint = GuidFactory("haifa")
        stamps = [mint.fresh().lamport for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_witness_merges_remote_clock(self):
        mint = GuidFactory("haifa")
        mint.fresh()
        mint.witness(100)
        assert mint.lamport == 101
        assert mint.fresh().lamport > 101

    def test_witness_of_old_clock_still_advances(self):
        mint = GuidFactory("haifa")
        for _ in range(5):
            mint.fresh()
        before = mint.lamport
        mint.witness(1)
        assert mint.lamport == before + 1

    def test_invalid_site_rejected(self):
        with pytest.raises(NamingError):
            GuidFactory("")
        with pytest.raises(NamingError):
            GuidFactory("bad/site")

    def test_fresh_text_parses(self):
        mint = GuidFactory("haifa")
        assert parse_guid(mint.fresh_text()).site == "haifa"
