"""The Section-2 comparators behave as the paper describes them."""

import pytest

from repro.baselines import (
    Component,
    CorbaError,
    DcomError,
    IID_IUNKNOWN,
    InterfaceDef,
    InterfaceRepository,
    JavaReflectError,
    JClass,
    JField,
    JMethod,
    OperationDef,
    ORB,
    Servant,
    StaticCounter,
)
from repro.core import HtmlText, Kind


class TestStatic:
    def test_counter(self):
        counter = StaticCounter()
        assert counter.increment(3) == 3
        assert counter.peek() == 3


class TestCorbaDII:
    @pytest.fixture
    def orb(self):
        repository = InterfaceRepository()
        salary = InterfaceDef("Payroll")
        salary.add_operation(
            OperationDef("raise_salary", (Kind.TEXT, Kind.INTEGER), Kind.INTEGER)
        )
        repository.register(salary)
        orb = ORB(repository)
        book = {"moshe": 4500}

        def raise_salary(name, amount):
            book[name] += amount
            return book[name]

        orb.bind("Payroll", Servant("hr", {"raise_salary": raise_salary}))
        return orb

    def test_dii_flow(self, orb):
        # lookup -> build request -> add coerced args -> invoke
        request = orb.create_request("Payroll", "raise_salary")
        request.add_argument("moshe").add_argument(HtmlText("<b>500</b>"))
        assert request.invoke() == 5000

    def test_arguments_coerced_to_declared_kinds(self, orb):
        request = orb.create_request("Payroll", "raise_salary")
        request.add_argument("moshe")
        request.add_argument("250")  # text -> integer
        assert request.invoke() == 4750

    def test_arity_enforced(self, orb):
        request = orb.create_request("Payroll", "raise_salary")
        with pytest.raises(CorbaError):
            request.invoke()
        request.add_argument("moshe").add_argument(1)
        with pytest.raises(CorbaError):
            request.add_argument(2)

    def test_unknown_interface_and_operation(self, orb):
        with pytest.raises(CorbaError):
            orb.create_request("Nothing", "x")
        with pytest.raises(CorbaError):
            orb.create_request("Payroll", "no_such_op")

    def test_repository_dynamically_changeable(self, orb):
        # "the ability to dynamically change the repository allows dynamic
        # changes in the meaning of a certain interface"
        replacement = InterfaceDef("Payroll")
        replacement.add_operation(OperationDef("raise_salary", (Kind.TEXT,), Kind.TEXT))
        orb.repository.register(replacement, replace=True)
        request_meta = orb.repository.lookup("Payroll").operation("raise_salary")
        assert request_meta.parameter_kinds == (Kind.TEXT,)

    def test_many_servants_per_interface(self, orb):
        orb.bind("Payroll", Servant("hr2", {"raise_salary": lambda n, a: -1}))
        assert len(orb.servants_for("Payroll")) == 2

    def test_servant_must_support_interface(self, orb):
        with pytest.raises(CorbaError):
            orb.bind("Payroll", Servant("empty", {}))


class TestDCOM:
    @pytest.fixture
    def component(self):
        component = Component("calc")
        state = {"total": 0}
        component.register_interface(
            "IID_Adder",
            {
                "add": lambda x: state.__setitem__("total", state["total"] + x)
                or state["total"],
                "total": lambda: state["total"],
            },
        )
        return component

    def test_query_interface_and_call(self, component):
        unknown = component.unknown()
        adder = unknown.query_interface("IID_Adder")
        assert adder.call("add", 5) == 5
        assert adder.call("total") == 5

    def test_e_nointerface(self, component):
        with pytest.raises(DcomError, match="E_NOINTERFACE"):
            component.unknown().query_interface("IID_Missing")

    def test_interface_addable_at_runtime(self, component):
        component.register_interface("IID_Late", {"hello": lambda: "hi"})
        pointer = component.unknown().query_interface("IID_Late")
        assert pointer.call("hello") == "hi"

    def test_the_documented_inconsistency(self, component):
        # "an object that supports a certain interface in a particular
        # time can be changed and appear later without support for that
        # interface, introducing inconsistency"
        adder = component.unknown().query_interface("IID_Adder")
        component.revoke_interface("IID_Adder")
        with pytest.raises(DcomError):
            adder.call("add", 1)
        with pytest.raises(DcomError, match="E_NOINTERFACE"):
            component.unknown().query_interface("IID_Adder")

    def test_implementations_frozen_at_registration(self, component):
        table = {"op": lambda: "original"}
        component.register_interface("IID_Frozen", table)
        table["op"] = lambda: "mutated"  # caller-side edit after the fact
        pointer = component.unknown().query_interface("IID_Frozen")
        assert pointer.call("op") == "original"

    def test_reference_counting(self, component):
        first = component.unknown()
        second = first.query_interface("IID_Adder")
        assert second.release() == 1
        assert first.release() == 0
        assert component.destroyed

    def test_released_pointer_unusable(self, component):
        pointer = component.unknown()
        pointer.release()
        with pytest.raises(DcomError):
            pointer.query_interface(IID_IUNKNOWN)

    def test_functions_listing(self, component):
        adder = component.unknown().query_interface("IID_Adder")
        assert adder.functions() == ("add", "total")


class TestJavaReflection:
    @pytest.fixture
    def counter_class(self):
        return JClass(
            "Counter",
            methods={
                "increment": JMethod(
                    "increment", ("int",), "int",
                    lambda obj, step: obj.get_class()
                    .get_field("count")
                    .set(obj, obj.get_class().get_field("count").get(obj) + step)
                    or obj.get_class().get_field("count").get(obj),
                ),
            },
            fields={"count": JField("count", "int")},
        )

    def test_introspection_surface(self, counter_class):
        instance = counter_class.new_instance(count=0)
        methods = instance.get_class().get_methods()
        assert [m.signature() for m in methods] == ["int increment(int)"]
        fields = instance.get_class().get_fields()
        assert [(f.name, f.type_name) for f in fields] == [("count", "int")]

    def test_reflective_invocation(self, counter_class):
        instance = counter_class.new_instance(count=10)
        assert instance.invoke("increment", 5) == 15

    def test_no_mutation_api_exists(self, counter_class):
        # the paper's point: querying yes, changing no
        mutators = [
            name
            for name in dir(counter_class)
            if name.startswith(("add", "set", "delete", "remove"))
        ]
        assert mutators == []

    def test_arity_checked(self, counter_class):
        instance = counter_class.new_instance()
        with pytest.raises(JavaReflectError):
            instance.invoke("increment")

    def test_missing_members(self, counter_class):
        with pytest.raises(JavaReflectError):
            counter_class.get_method("ghost")
        with pytest.raises(JavaReflectError):
            counter_class.get_field("ghost")
        with pytest.raises(JavaReflectError):
            counter_class.new_instance(ghost=1)

    def test_inheritance_merges_members(self, counter_class):
        child = JClass(
            "Resettable",
            methods={
                "reset": JMethod(
                    "reset", (), "void",
                    lambda obj: obj.get_class().get_field("count").set(obj, 0),
                )
            },
            superclass=counter_class,
        )
        instance = child.new_instance(count=5)
        instance.invoke("reset")
        assert child.get_field("count").get(instance) == 0
        assert counter_class.is_assignable_from(child)
        assert not child.is_assignable_from(counter_class)
