"""The command-line interface."""

import pytest

from repro.cli import main
from repro.core import MROMObject, Principal
from repro.mobility import pack_bytes
from repro.persistence import ObjectStore, persist


@pytest.fixture
def mpl_script(tmp_path):
    script = tmp_path / "demo.mpl"
    script.write_text(
        """
        object greeter {
          fixed data greeting = "shalom"
          fixed method greet(name) { return greeting + ", " + name }
        }
        let g = new greeter
        print g.greet("olam")
        """,
        encoding="utf-8",
    )
    return script


@pytest.fixture
def packed_file(tmp_path):
    obj = MROMObject(display_name="artifact", guid="mrom://cli/1.1")
    obj.define_fixed_data("x", 1)
    obj.define_fixed_method("get_x", "return self.get('x')", pre="return True")
    obj.seal()
    target = tmp_path / "artifact.mrom"
    target.write_bytes(pack_bytes(obj))
    return target


class TestRun:
    def test_run_prints_output(self, mpl_script, capsys):
        assert main(["run", str(mpl_script)]) == 0
        assert capsys.readouterr().out.strip() == "shalom, olam"

    def test_show_value(self, tmp_path, capsys):
        script = tmp_path / "v.mpl"
        script.write_text("1 + 41", encoding="utf-8")
        assert main(["run", "--show-value", str(script)]) == 0
        assert "=> 42" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/x.mpl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        script = tmp_path / "bad.mpl"
        script.write_text("let = nonsense", encoding="utf-8")
        assert main(["run", str(script)]) == 1
        assert "MPLSyntaxError" in capsys.readouterr().err


class TestCheck:
    def test_check_reports_counts(self, mpl_script, capsys):
        assert main(["check", str(mpl_script)]) == 0
        out = capsys.readouterr().out
        assert "1 object(s)" in out and "1 method(s)" in out

    def test_check_catches_compile_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.mpl"
        script.write_text(
            "object o { fixed method f() { return unknown_name } }",
            encoding="utf-8",
        )
        assert main(["check", str(script)]) == 1


class TestInspect:
    def test_inspect_describes_package(self, packed_file, capsys):
        assert main(["inspect", str(packed_file)]) == 0
        out = capsys.readouterr().out
        assert "mrom://cli/1.1" in out
        assert "artifact" in out
        assert "get_x [p]" in out  # the pre-procedure marker

    def test_inspect_garbage_fails_cleanly(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.mrom"
        garbage.write_bytes(b"not a package")
        assert main(["inspect", str(garbage)]) == 1
        assert "error" in capsys.readouterr().err


class TestStore:
    @pytest.fixture
    def store_root(self, tmp_path):
        store = ObjectStore(tmp_path / "store")
        owner = Principal("mrom://cli/9.9", "dom", "owner")
        obj = MROMObject(guid="mrom://cli/2.2", display_name="kept", owner=owner)
        obj.define_fixed_data("x", 5)
        obj.seal()
        persist(obj, store)
        return tmp_path / "store", obj.guid

    def test_list(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "list"]) == 0
        assert guid in capsys.readouterr().out

    def test_list_empty(self, tmp_path, capsys):
        assert main(["store", "--root", str(tmp_path / "empty"), "list"]) == 0
        assert "(empty store)" in capsys.readouterr().out

    def test_show(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "show", guid]) == 0
        out = capsys.readouterr().out
        assert "kept" in out and "x" in out

    def test_verify_clean(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "verify"]) == 0
        assert f"ok      {guid}" in capsys.readouterr().out

    def test_verify_detects_corruption(self, store_root, capsys):
        root, guid = store_root
        store = ObjectStore(root)
        version = store.versions(guid)[-1]
        store._image_path(guid, version).write_bytes(b"junk")
        assert main(["store", "--root", str(root), "verify"]) == 1
        assert "CORRUPT" in capsys.readouterr().out


@pytest.mark.load
class TestLoad:
    def test_load_reports_percentiles(self, capsys):
        assert main(["load", "--requests", "300", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "p50=" in out and "p99=" in out
        assert "unresolved=0" in out
        assert "no lost updates" in out

    def test_load_json_report(self, capsys):
        import json

        assert main(["load", "--requests", "200", "--clients", "2",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["unresolved"] == 0
        assert report["consistent"] is True
        assert {"p50", "p95", "p99"} <= set(report["latency"])

    def test_load_window_sheds(self, capsys):
        assert main([
            "load", "--requests", "400", "--mode", "open", "--rate", "2000",
            "--window", "1", "--service-delay", "0.002",
            "--mix", "invoke=1",
        ]) == 0
        assert "sheds" in capsys.readouterr().out

    def test_load_bad_mix_is_a_usage_error(self, capsys):
        with pytest.raises(ValueError, match="unknown op"):
            main(["load", "--requests", "10", "--mix", "teleport=1"])


@pytest.mark.analysis
class TestAnalyze:
    HAZARD = (
        "object o {\n"
        "  data n = 0\n"
        "  method bump() {\n"
        "    n = n + 1\n"
        "  }\n"
        "}\n"
    )

    def test_findings_reported_with_lint_exit_codes(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text(self.HAZARD)
        assert main(["analyze", str(script)]) == 0  # warnings pass by default
        assert "race.lost-update" in capsys.readouterr().out
        assert main(["analyze", str(script), "--strict"]) == 1

    def test_clean_tree_is_clean(self, tmp_path, capsys):
        script = tmp_path / "ok.mpl"
        script.write_text(
            "object o {\n  data n = 0\n  method reset() {\n    n = 0\n  }\n}\n"
        )
        assert main(["analyze", str(script), "--strict"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_pass_selection(self, tmp_path, capsys):
        script = tmp_path / "h.mpl"
        script.write_text(self.HAZARD)
        assert main(["analyze", str(script), "--deadlocks", "--strict"]) == 0
        capsys.readouterr()
        assert main(["analyze", str(script), "--races", "--strict"]) == 1

    def test_json_report(self, tmp_path, capsys):
        import json

        script = tmp_path / "h.mpl"
        script.write_text(self.HAZARD)
        main(["analyze", str(script), "--json"])
        report = json.loads(capsys.readouterr().out)
        rules = [d["rule"] for d in report["diagnostics"]]
        assert rules == ["race.lost-update"]
        assert report["summary"]["warnings"] == 1

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["analyze", "/nonexistent/tree"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_paths_is_a_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.load
    def test_sanitize_smoke_matches_every_witness(self, capsys):
        assert main([
            "analyze", "--sanitize-smoke", "--requests", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "observed 0 race(s)" not in out  # non-vacuous
