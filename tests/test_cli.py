"""The command-line interface."""

import pytest

from repro.cli import main
from repro.core import MROMObject, Principal
from repro.mobility import pack_bytes
from repro.persistence import ObjectStore, persist


@pytest.fixture
def mpl_script(tmp_path):
    script = tmp_path / "demo.mpl"
    script.write_text(
        """
        object greeter {
          fixed data greeting = "shalom"
          fixed method greet(name) { return greeting + ", " + name }
        }
        let g = new greeter
        print g.greet("olam")
        """,
        encoding="utf-8",
    )
    return script


@pytest.fixture
def packed_file(tmp_path):
    obj = MROMObject(display_name="artifact", guid="mrom://cli/1.1")
    obj.define_fixed_data("x", 1)
    obj.define_fixed_method("get_x", "return self.get('x')", pre="return True")
    obj.seal()
    target = tmp_path / "artifact.mrom"
    target.write_bytes(pack_bytes(obj))
    return target


class TestRun:
    def test_run_prints_output(self, mpl_script, capsys):
        assert main(["run", str(mpl_script)]) == 0
        assert capsys.readouterr().out.strip() == "shalom, olam"

    def test_show_value(self, tmp_path, capsys):
        script = tmp_path / "v.mpl"
        script.write_text("1 + 41", encoding="utf-8")
        assert main(["run", "--show-value", str(script)]) == 0
        assert "=> 42" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/x.mpl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        script = tmp_path / "bad.mpl"
        script.write_text("let = nonsense", encoding="utf-8")
        assert main(["run", str(script)]) == 1
        assert "MPLSyntaxError" in capsys.readouterr().err


class TestCheck:
    def test_check_reports_counts(self, mpl_script, capsys):
        assert main(["check", str(mpl_script)]) == 0
        out = capsys.readouterr().out
        assert "1 object(s)" in out and "1 method(s)" in out

    def test_check_catches_compile_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.mpl"
        script.write_text(
            "object o { fixed method f() { return unknown_name } }",
            encoding="utf-8",
        )
        assert main(["check", str(script)]) == 1


class TestInspect:
    def test_inspect_describes_package(self, packed_file, capsys):
        assert main(["inspect", str(packed_file)]) == 0
        out = capsys.readouterr().out
        assert "mrom://cli/1.1" in out
        assert "artifact" in out
        assert "get_x [p]" in out  # the pre-procedure marker

    def test_inspect_garbage_fails_cleanly(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.mrom"
        garbage.write_bytes(b"not a package")
        assert main(["inspect", str(garbage)]) == 1
        assert "error" in capsys.readouterr().err


class TestStore:
    @pytest.fixture
    def store_root(self, tmp_path):
        store = ObjectStore(tmp_path / "store")
        owner = Principal("mrom://cli/9.9", "dom", "owner")
        obj = MROMObject(guid="mrom://cli/2.2", display_name="kept", owner=owner)
        obj.define_fixed_data("x", 5)
        obj.seal()
        persist(obj, store)
        return tmp_path / "store", obj.guid

    def test_list(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "list"]) == 0
        assert guid in capsys.readouterr().out

    def test_list_empty(self, tmp_path, capsys):
        assert main(["store", "--root", str(tmp_path / "empty"), "list"]) == 0
        assert "(empty store)" in capsys.readouterr().out

    def test_show(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "show", guid]) == 0
        out = capsys.readouterr().out
        assert "kept" in out and "x" in out

    def test_verify_clean(self, store_root, capsys):
        root, guid = store_root
        assert main(["store", "--root", str(root), "verify"]) == 0
        assert f"ok      {guid}" in capsys.readouterr().out

    def test_verify_detects_corruption(self, store_root, capsys):
        root, guid = store_root
        store = ObjectStore(root)
        version = store.versions(guid)[-1]
        store._image_path(guid, version).write_bytes(b"junk")
        assert main(["store", "--root", str(root), "verify"]) == 1
        assert "CORRUPT" in capsys.readouterr().out


@pytest.mark.load
class TestLoad:
    def test_load_reports_percentiles(self, capsys):
        assert main(["load", "--requests", "300", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "p50=" in out and "p99=" in out
        assert "unresolved=0" in out
        assert "no lost updates" in out

    def test_load_json_report(self, capsys):
        import json

        assert main(["load", "--requests", "200", "--clients", "2",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["unresolved"] == 0
        assert report["consistent"] is True
        assert {"p50", "p95", "p99"} <= set(report["latency"])

    def test_load_window_sheds(self, capsys):
        assert main([
            "load", "--requests", "400", "--mode", "open", "--rate", "2000",
            "--window", "1", "--service-delay", "0.002",
            "--mix", "invoke=1",
        ]) == 0
        assert "sheds" in capsys.readouterr().out

    def test_load_bad_mix_is_a_usage_error(self, capsys):
        with pytest.raises(ValueError, match="unknown op"):
            main(["load", "--requests", "10", "--mix", "teleport=1"])
