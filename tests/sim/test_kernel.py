"""The discrete-event kernel: ordering, determinism, control."""

import pytest

from repro.sim import Simulator


class TestOrdering:
    def test_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda label=label: fired.append(label))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]


class TestControl:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_until(2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        sim.cancel(event)
        sim.run()
        assert fired == ["kept"]

    def test_run_until_skips_cancelled_head_before_deadline_check(self):
        # regression: a cancelled event at the head used to pass the
        # `head.time <= time` peek, and step() would then fire the next
        # *live* event even when its time lay past the deadline
        sim = Simulator()
        fired = []
        doomed = sim.schedule(1.0, lambda: fired.append("doomed"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.cancel(doomed)
        assert sim.run_until(2.0) == 0
        assert fired == []
        assert sim.now == 2.0
        sim.run()
        assert fired == ["late"]
        assert sim.now == 5.0

    def test_run_until_fires_live_events_behind_cancelled_head(self):
        sim = Simulator()
        fired = []
        doomed = sim.schedule(0.5, lambda: fired.append("doomed"))
        sim.schedule(1.0, lambda: fired.append("kept"))
        sim.cancel(doomed)
        assert sim.run_until(2.0) == 1
        assert fired == ["kept"]

    def test_pending_survives_double_cancel(self):
        # regression: cancelling the same event twice used to count it
        # twice in the lazy-removal set, making `pending` undercount
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending == 1

    def test_pending_survives_cancel_after_fire(self):
        # regression: cancelling an event that already fired used to
        # poison `pending` forever (the seq was never popped again)
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(event)
        assert sim.pending == 0
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_run_while_converges(self):
        sim = Simulator()
        box = {"done": False}
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: box.update(done=True))
        sim.schedule(3.0, lambda: None)
        sim.run_while(lambda: not box["done"])
        assert box["done"]
        assert sim.pending == 1  # the 3.0 event was not consumed

    def test_run_while_guards_against_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run_while(lambda: True, max_events=100)

    def test_max_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6


class TestDeterminism:
    def test_identical_seeds_identical_streams(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_full_run_reproducible(self):
        def run_once():
            sim = Simulator(seed=7)
            trace = []

            def noisy(label):
                trace.append((label, round(sim.now, 9)))
                if sim.rng.random() > 0.5:
                    sim.schedule(sim.rng.random(), lambda: trace.append(("x", sim.now)))

            for i in range(10):
                sim.schedule(sim.rng.random() * 3, lambda i=i: noisy(i))
            sim.run()
            return trace

        assert run_once() == run_once()
