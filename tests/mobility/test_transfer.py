"""Migration over the simulated network, admission policies, tours."""

import pytest

from repro.core import Principal
from repro.core.errors import (
    NotPortableError,
    PolicyViolationError,
    RemoteInvocationError,
)
from repro.mobility import (
    AgentTour,
    Itinerary,
    MobilityManager,
    make_collector_agent,
)
from repro.net import LAN, Network, Site, WAN
from repro.security import HostPolicy
from repro.sim import Simulator


@pytest.fixture
def world():
    network = Network(Simulator())
    sites = {name: Site(network, name, f"dom.{name}") for name in
             ("home", "alpha", "beta")}
    network.topology.connect("home", "alpha", *WAN)
    network.topology.connect("alpha", "beta", *LAN)
    network.topology.connect("home", "beta", *WAN)
    managers = {name: MobilityManager(site) for name, site in sites.items()}
    return network, sites, managers


def make_traveller(site):
    obj = site.create_object(display_name="traveller", owner=site.principal)
    obj.define_fixed_data("log", [])
    obj.define_fixed_method(
        "install",
        "context = self.env.get('install_context', {})\n"
        "log = self.get('log')\n"
        "log.append(context.get('site'))\n"
        "self.set('log', log)\n"
        "return context.get('site')",
    )
    obj.define_fixed_method("log_of", "return self.get('log')")
    obj.seal()
    site.register_object(obj)
    return obj


class TestMigrate:
    def test_migrate_moves_the_object(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        ref = managers["home"].migrate(traveller, "alpha")
        assert not sites["home"].has_object(traveller.guid)
        assert sites["alpha"].has_object(traveller.guid)
        assert ref.invoke("log_of", caller=traveller.owner) == ["alpha"]

    def test_install_invoked_with_context(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        managers["home"].migrate(traveller, "alpha")
        settled = sites["alpha"].local_object(traveller.guid)
        context = settled.environment["install_context"]
        assert context["site"] == "alpha"
        assert context["arrived_at"] >= WAN[0]
        # the install-time fastpath_reset() hit a cold cache: under the
        # unified accounting, dropping nothing is not an invalidation
        assert settled.fastpath is not None
        assert settled.fastpath.invalidations == 0
        assert settled.fastpath.compiled_entries == 0

    def test_deploy_copy_keeps_original(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        managers["home"].deploy_copy(traveller, "alpha")
        managers["home"].deploy_copy(traveller, "beta")
        assert sites["home"].has_object(traveller.guid)
        assert sites["alpha"].has_object(traveller.guid)
        assert sites["beta"].has_object(traveller.guid)

    def test_non_portable_object_stays(self, world):
        _net, sites, managers = world
        pinned = sites["home"].create_object(display_name="pinned")
        pinned.define_fixed_method("native", lambda self, args, ctx: 1)
        pinned.seal()
        sites["home"].register_object(pinned)
        with pytest.raises(NotPortableError):
            managers["home"].migrate(pinned, "alpha")
        assert sites["home"].has_object(pinned.guid)

    def test_statistics(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        managers["home"].migrate(traveller, "alpha")
        assert managers["home"].departures == 1
        assert managers["alpha"].arrivals == 1


class TestAdmissionPolicy:
    def make_picky_world(self, policy):
        network = Network(Simulator())
        home = Site(network, "home", "dom.home")
        picky = Site(network, "picky", "dom.picky")
        network.topology.connect("home", "picky", *LAN)
        return (
            network,
            home,
            picky,
            MobilityManager(home),
            MobilityManager(picky, policy=policy),
        )

    def test_rejection_keeps_object_at_origin(self, world):
        policy = HostPolicy(allowed_domains=("trusted",))
        _net, home, _picky, home_manager, picky_manager = self.make_picky_world(policy)
        traveller = make_traveller(home)
        with pytest.raises(RemoteInvocationError) as excinfo:
            home_manager.migrate(traveller, "picky")
        assert excinfo.value.remote_type == "PolicyViolationError"
        assert home.has_object(traveller.guid)
        assert picky_manager.rejections == 1

    def test_structure_bound(self, world):
        policy = HostPolicy(max_items=2)
        _net, home, _picky, home_manager, _pm = self.make_picky_world(policy)
        traveller = make_traveller(home)  # 3 items: log + install + log_of
        with pytest.raises(RemoteInvocationError):
            home_manager.migrate(traveller, "picky")

    def test_admission_when_policy_satisfied(self, world):
        policy = HostPolicy(allowed_domains=("dom",), max_items=10)
        _net, home, picky, home_manager, _pm = self.make_picky_world(policy)
        traveller = make_traveller(home)
        home_manager.migrate(traveller, "picky")
        assert picky.has_object(traveller.guid)


class TestForward:
    def test_forward_moves_between_remote_sites(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        ref = managers["home"].migrate(traveller, "alpha")
        ref2 = managers["home"].forward("alpha", ref.guid, "beta")
        assert not sites["alpha"].has_object(traveller.guid)
        assert sites["beta"].has_object(traveller.guid)
        assert ref2.invoke("log_of", caller=traveller.owner) == ["alpha", "beta"]

    def test_only_owner_may_forward(self, world):
        _net, sites, managers = world
        traveller = make_traveller(sites["home"])
        managers["home"].migrate(traveller, "alpha")
        stranger = Principal("mrom://stranger/1.1", "evil", "stranger")
        with pytest.raises(RemoteInvocationError) as excinfo:
            managers["beta"].forward(
                "alpha", traveller.guid, "beta", caller=stranger
            )
        assert excinfo.value.remote_type == "PolicyViolationError"


class TestAgentTour:
    def test_tour_visits_all_stops_in_order(self, world):
        _net, sites, managers = world
        agent = make_collector_agent(sites["home"])
        records = AgentTour(managers["home"]).run(
            agent, Itinerary.through("alpha", "beta")
        )
        assert [r.site for r in records] == ["alpha", "beta"]
        home_copy = sites["home"].local_object(agent.guid)
        assert home_copy.invoke("report", caller=agent.owner) == [
            ["alpha", "alpha"],
            ["beta", "beta"],
        ]

    def test_custom_probe(self, world):
        _net, sites, managers = world
        agent = make_collector_agent(
            sites["home"], probe_source="return len(site)"
        )
        records = AgentTour(managers["home"]).run(
            agent, Itinerary.through("alpha"), return_home=False
        )
        assert records[0].visit_result == 5
        assert sites["alpha"].has_object(agent.guid)

    def test_time_advances_with_each_hop(self, world):
        _net, sites, managers = world
        agent = make_collector_agent(sites["home"])
        records = AgentTour(managers["home"]).run(
            agent, Itinerary.through("alpha", "beta")
        )
        assert records[0].arrived_at < records[1].arrived_at

    def test_empty_itinerary_rejected(self):
        from repro.core.errors import MobilityError

        with pytest.raises(MobilityError):
            Itinerary(())


class TestAutonomousTour:
    """The agent decides its own route; the origin executes the hops."""

    def make_goal_agent(self, site, plan):
        """An agent with an internal plan it consumes one hop at a time."""
        agent = site.create_object(
            display_name="goal-agent", owner=site.principal
        )
        agent.define_fixed_data("plan", list(plan))
        agent.define_fixed_data("trail", [])
        agent.define_fixed_method(
            "visit",
            "trail = self.get('trail')\ntrail.append(args[0])\n"
            "self.set('trail', trail)\nreturn args[0]",
        )
        agent.define_fixed_method(
            "next_stop",
            "plan = self.get('plan')\n"
            "if len(plan) == 0:\n"
            "    return None\n"
            "head = plan[0]\n"
            "self.set('plan', plan[1:])\n"
            "return head",
        )
        agent.define_fixed_method("trail_of", "return self.get('trail')")
        agent.seal()
        site.register_object(agent)
        return agent

    def test_agent_follows_its_own_plan(self, world):
        from repro.mobility import AutonomousTour

        _net, sites, managers = world
        agent = self.make_goal_agent(sites["home"], plan=["beta"])
        records = AutonomousTour(managers["home"]).run(agent, "alpha")
        assert [r.site for r in records] == ["alpha", "beta"]
        back = sites["home"].local_object(agent.guid)
        assert back.invoke("trail_of", caller=agent.owner) == ["alpha", "beta"]

    def test_leash_bounds_a_runaway_agent(self, world):
        from repro.mobility import AutonomousTour

        _net, sites, managers = world
        runaway = sites["home"].create_object(
            display_name="runaway", owner=sites["home"].principal
        )
        runaway.define_fixed_data("at", "")
        runaway.define_fixed_method(
            "visit", "self.set('at', args[0])\nreturn args[0]"
        )
        runaway.define_fixed_method(
            # forever bounce between alpha and beta
            "next_stop",
            "return 'beta' if self.get('at') == 'alpha' else 'alpha'",
        )
        runaway.seal()
        sites["home"].register_object(runaway)
        tour = AutonomousTour(managers["home"], max_hops=5)
        records = tour.run(runaway, "alpha")
        assert len(records) == 5
        # dragged home despite never deciding to stop
        assert sites["home"].has_object(runaway.guid)

    def test_staying_put_ends_the_tour(self, world):
        from repro.mobility import AutonomousTour

        _net, sites, managers = world
        homebody = self.make_goal_agent(sites["home"], plan=["alpha"])
        records = AutonomousTour(managers["home"]).run(homebody, "alpha")
        # first decision says "alpha" (already there): tour ends
        assert [r.site for r in records] == ["alpha"]
        assert sites["home"].has_object(homebody.guid)
