"""Packing and unpacking: objects as data."""

import pytest

from repro.core import (
    Kind,
    MROMObject,
    NotPortableError,
    Principal,
    allow_all,
    owner_only,
)
from repro.core.errors import MobilityError
from repro.mobility import (
    pack,
    pack_bytes,
    portability_report,
    unpack,
    unpack_bytes,
)


@pytest.fixture
def owner():
    return Principal("mrom://origin/1.1", "technion.ee", "origin")


def make_portable(owner, extensible_meta=True):
    obj = MROMObject(
        guid="mrom://origin/2.1",
        domain="technion.ee",
        display_name="traveller",
        owner=owner,
        extensible_meta=extensible_meta,
        meta_acl=owner_only(owner),
    )
    obj.define_fixed_data("balance", 100, kind=Kind.INTEGER)
    obj.define_fixed_data("notes", ["a", "b"])
    obj.define_fixed_method(
        "spend",
        "self.set('balance', self.get('balance') - args[0])\n"
        "return self.get('balance')",
        pre="return args[0] <= self.get('balance')",
        post="return result >= 0",
    )
    obj.seal()
    view = obj.self_view()
    view.add_data("label", "hot", {"acl": allow_all().describe()})
    view.add_method("hello", "return 'hi from ' + self.get('label')")
    return obj


class TestRoundTrip:
    def test_identity_travels(self, owner):
        original = make_portable(owner)
        copy = unpack(pack(original))
        assert copy.guid == original.guid
        assert copy.owner.guid == owner.guid
        assert copy.principal.display_name == "traveller"

    def test_structure_and_behaviour_travel(self, owner):
        copy = unpack(pack(make_portable(owner)))
        assert copy.invoke("spend", [30], caller=owner) == 70
        assert copy.invoke("hello", caller=owner) == "hi from hot"

    def test_wrappers_travel(self, owner):
        from repro.core import PreProcedureVeto

        copy = unpack(pack(make_portable(owner)))
        with pytest.raises(PreProcedureVeto):
            copy.invoke("spend", [100000], caller=owner)

    def test_sections_preserved(self, owner):
        copy = unpack(pack(make_portable(owner)))
        assert copy.containers.lookup_data("balance")[1] == "fixed"
        assert copy.containers.lookup_data("label")[1] == "extensible"
        assert copy.containers.lookup_method("spend")[1] == "fixed"

    def test_kinds_and_acls_preserved(self, owner):
        mallory = Principal("mrom://evil/1.1", "evil", "mallory")
        copy = unpack(pack(make_portable(owner)))
        item, _ = copy.containers.lookup_data("balance")
        assert item.kind is Kind.INTEGER
        # owner-only meta ACL survived the trip
        from repro.core import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            copy.invoke("addDataItem", ["evil", 1], caller=mallory)
        copy.invoke("addDataItem", ["fine", 1], caller=owner)

    def test_copies_are_independent(self, owner):
        original = make_portable(owner)
        copy = unpack(pack(original))
        copy.invoke("spend", [50], caller=owner)
        assert original.get_data("balance") == 100
        copy.get_data("notes", caller=owner).append("c")
        assert original.get_data("notes") == ["a", "b"]

    def test_wire_round_trip(self, owner):
        wire = pack_bytes(make_portable(owner))
        assert isinstance(wire, bytes)
        copy = unpack_bytes(wire)
        assert copy.invoke("hello", caller=owner) == "hi from hot"

    def test_tower_travels(self, owner):
        original = make_portable(owner)
        original.invoke(
            "addMethod",
            ["invoke", "return ['meta', ctx.proceed()]",
             {"acl": allow_all().describe()}],
            caller=owner,
        )
        copy = unpack(pack(original))
        assert copy.invoke("hello", caller=owner) == ["meta", "hi from hot"]

    def test_environment_travels_but_host_bindings_do_not(self, owner):
        original = make_portable(owner)
        original.environment.update(
            {"goal": "explore", "site": "origin", "install_context": {"x": 1}}
        )
        copy = unpack(pack(original))
        assert copy.environment.get("goal") == "explore"
        assert "site" not in copy.environment
        assert "install_context" not in copy.environment


class TestPortability:
    def test_native_code_blocks_packing(self, owner):
        obj = MROMObject(owner=owner)
        obj.define_fixed_method("local_only", lambda self, args, ctx: 42)
        obj.seal()
        report = portability_report(obj)
        assert report == ["local_only"]
        with pytest.raises(NotPortableError) as excinfo:
            pack(obj)
        assert "local_only" in str(excinfo.value)

    def test_native_pre_procedure_blocks_packing(self, owner):
        obj = MROMObject(owner=owner)
        obj.define_fixed_method(
            "m", "return 1", pre=lambda self, args, ctx: True
        )
        obj.seal()
        assert portability_report(obj) == ["m"]

    def test_meta_methods_do_not_block(self, owner):
        # bundled meta-methods are native but reinstalled, never packed
        obj = MROMObject(owner=owner)
        obj.seal()
        assert portability_report(obj) == []
        assert unpack(pack(obj)).guid == obj.guid

    def test_bad_format_rejected(self):
        with pytest.raises(MobilityError):
            unpack({"format": "not-a-package"})

    def test_unpacked_code_is_reverified(self, owner):
        # tamper with a packed method body: the sandbox must reject it
        # at first invocation on the receiving side
        from repro.core import SandboxViolation

        package = pack(make_portable(owner))
        for method in package["ext_methods"]:
            if method["name"] == "hello":
                method["components"]["body"]["source"] = "import os\nreturn 1"
        hostile = unpack(package)
        with pytest.raises(SandboxViolation):
            hostile.invoke("hello", caller=owner)


class TestZeroCopyPackage:
    def test_pack_frame_bytes_identical_to_pack_bytes(self, owner):
        from repro.mobility import pack_frame

        original = make_portable(owner)
        with pack_frame(original) as frame:
            assert frame.tobytes() == pack_bytes(original)

    def test_lazy_unpack_equals_eager_unpack(self, owner):
        wire = pack_bytes(make_portable(owner))
        lazy, eager = unpack_bytes(wire, lazy=True), unpack_bytes(wire, lazy=False)
        assert lazy.guid == eager.guid
        for name in ("balance", "notes", "label"):
            assert lazy.get_data(name, caller=owner) == eager.get_data(
                name, caller=owner
            )
        assert lazy.invoke("spend", [30], caller=owner) == eager.invoke(
            "spend", [30], caller=owner
        )

    def test_lazy_unpack_repacks_to_identical_bytes(self, owner):
        """A lazily unpacked object (touched or not) must re-pack: no
        lazy container may leak into structure the encoder rejects."""
        wire = pack_bytes(make_portable(owner))
        untouched = unpack_bytes(wire, lazy=True)
        assert pack_bytes(untouched) == pack_bytes(unpack_bytes(wire, lazy=False))

    def test_untouched_values_stay_undecoded(self, owner):
        from repro.core.values import LazyCell

        wire = pack_bytes(make_portable(owner))
        obj = unpack_bytes(wire, lazy=True)
        # "notes" is fully untyped (Kind.ANY): its value arrives as an
        # undecoded wire slice and stays one until somebody reads it
        notes, _section = obj.containers.lookup_data("notes")
        assert isinstance(notes._value, LazyCell)
        assert obj.get_data("notes", caller=owner) == ["a", "b"]
        assert not isinstance(notes._value, LazyCell), "reads materialize"
        # "balance" declares INTEGER: coercion needs the value at admit
        # time, so concretely-kinded items are never lazy
        balance, _section = obj.containers.lookup_data("balance")
        assert balance._value == 100

    def test_compiled_state_never_travels(self, owner):
        """Warm every tier on the sender; the wire image and the arrived
        object must know nothing about it."""
        original = make_portable(owner)
        original.enable_fastpath(True, compiled=True)
        for _ in range(3):
            original.invoke("hello", caller=owner)
        cache = original.fastpath
        assert cache.compiled_entries > 0 and cache.compiled_hits > 0
        wire = pack_bytes(original)
        arrived = unpack_bytes(wire)
        assert arrived.fastpath is not None
        assert arrived.fastpath.entries == 0, "memo tables arrive cold"
        assert arrived.fastpath.compiled_entries == 0, (
            "compiled closures must never be packaged"
        )
        assert arrived.fastpath.invalidations == 0, (
            "arriving cold is not an invalidation"
        )
        # and the cold wire image is byte-identical to a never-warmed one
        assert wire == pack_bytes(make_portable(owner))
