"""The mobile-code sandbox: whitelist verification and restricted execution."""

import pytest

from repro.core import SandboxViolation
from repro.mobility.sandbox import (
    ALLOWED_BUILTINS,
    build_function,
    compile_restricted,
    validate_source,
)


class TestValidateAccepts:
    @pytest.mark.parametrize(
        "source",
        [
            "x = 1 + 2",
            "y = [i * i for i in range(10) if i % 2 == 0]",
            "d = {'a': 1}\nd['b'] = 2",
            "def helper(a, b):\n    return a + b\nresult = helper(1, 2)",
            "total = 0\nfor i in range(3):\n    total += i",
            "try:\n    x = 1 / 0\nexcept ZeroDivisionError:\n    x = 0",
            "f = lambda v: v * 2",
            "s = f'{1 + 1} things'",
            "a, b = 1, 2\na, b = b, a",
            "assert 1 < 2, 'math works'",
            "words = sorted({'b', 'a'})",
            "x = obj.attribute if hasattr_like else 0"
            if False
            else "x = 1",  # keep list literal simple
        ],
    )
    def test_accepted(self, source):
        validate_source(source)


class TestValidateRejects:
    @pytest.mark.parametrize(
        "source, construct",
        [
            ("import os", "Import"),
            ("from os import path", "ImportFrom"),
            ("class Evil:\n    pass", "ClassDef"),
            ("global leak", "Global"),
            ("x = obj._private", "._private"),
            ("x = obj.__dict__", ".__dict__"),
            ("eval('1+1')", "eval"),
            ("exec('x=1')", "exec"),
            ("open('/etc/passwd')", "open"),
            ("__import__('os')", "__import__"),
            ("getattr(obj, 'x')", "getattr"),
            ("type(obj)", "type"),
            ("globals()", "globals"),
            ("x = __name__", "__name__"),
            ("def gen():\n    yield 1", "Yield"),
            ("async def f():\n    pass", "AsyncFunctionDef"),
        ],
    )
    def test_rejected(self, source, construct):
        with pytest.raises(SandboxViolation) as excinfo:
            validate_source(source)
        assert construct in str(excinfo.value)

    def test_syntax_error_is_violation(self):
        with pytest.raises(SandboxViolation):
            validate_source("def broken(:")

    def test_decorators_rejected(self):
        with pytest.raises(SandboxViolation):
            validate_source("@deco\ndef f():\n    pass")

    def test_underscore_function_name_rejected(self):
        with pytest.raises(SandboxViolation):
            validate_source("def _sneaky():\n    pass")


class TestBuildFunction:
    def test_simple_body(self):
        func = build_function("return args[0] * 2", ["self", "args", "ctx"])
        assert func(None, [21], None) == 42

    def test_empty_body_becomes_pass(self):
        func = build_function("", ["self", "args", "ctx"])
        assert func(None, [], None) is None

    def test_whitelisted_builtins_work(self):
        func = build_function(
            "return sum(sorted(args[0]))", ["self", "args", "ctx"]
        )
        assert func(None, [[3, 1, 2]], None) == 6

    def test_dangerous_builtins_rejected_at_build_time(self):
        for source in ("return open('/tmp/x')", "return breakpoint()"):
            with pytest.raises(SandboxViolation):
                build_function(source, ["self", "args", "ctx"])

    def test_unlisted_name_fails_at_call_time(self):
        # 'bytearray' is neither forbidden nor whitelisted: it verifies,
        # but the restricted namespace does not provide it
        func = build_function("return bytearray(4)", ["self", "args", "ctx"])
        with pytest.raises(NameError):
            func(None, [], None)

    def test_host_bindings_visible(self):
        func = build_function(
            "return tax_rate * args[0]",
            ["self", "args", "ctx"],
            extra_bindings={"tax_rate": 0.17},
        )
        assert func(None, [100], None) == pytest.approx(17.0)

    def test_underscore_binding_rejected(self):
        with pytest.raises(SandboxViolation):
            build_function(
                "return 1", ["self", "args", "ctx"], extra_bindings={"_leak": 1}
            )

    def test_no_module_globals_leak(self):
        func = build_function("return len(args)", ["self", "args", "ctx"])
        globals_names = set(func.__globals__)
        assert "os" not in globals_names
        assert globals_names <= {"__builtins__", "portable"}

    def test_builtins_are_a_copy(self):
        first = build_function("return 1", ["self", "args", "ctx"])
        first.__globals__["__builtins__"]["len"] = None
        second = build_function("return len(args)", ["self", "args", "ctx"])
        assert second(None, [1, 2], None) == 2

    def test_nested_function_closure(self):
        source = (
            "def scale(factor):\n"
            "    def inner(v):\n"
            "        return v * factor\n"
            "    return inner\n"
            "return scale(3)(args[0])"
        )
        func = build_function(source, ["self", "args", "ctx"])
        assert func(None, [7], None) == 21

    def test_exceptions_propagate(self):
        func = build_function("raise ValueError('boom')", ["self", "args", "ctx"])
        with pytest.raises(ValueError, match="boom"):
            func(None, [], None)


def test_allowed_builtins_has_no_escape_hatches():
    for dangerous in ("eval", "exec", "open", "__import__", "getattr", "type"):
        assert dangerous not in ALLOWED_BUILTINS


def test_compile_restricted_returns_code_object():
    code = compile_restricted("x = 1")
    assert code.co_filename == "<portable>"
