"""Property-based tests (hypothesis) on core invariants.

Targets: the wire format (round-trip totality), generic coercion
(idempotence and stability), ACL algebra (deny dominance, monotonicity),
containers (add/remove inverses), guids (uniqueness), and pack/unpack
(behavioural equivalence).
"""

import string

import pytest

from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    AccessControlList,
    AclEntry,
    Decision,
    HtmlText,
    Kind,
    MROMObject,
    Permission,
    Principal,
    SYSTEM,
    coerce,
    kind_of,
)
from repro.core.containers import ItemContainer
from repro.core.errors import CoercionError, MarshalError
from repro.core.items import DataItem
from repro.mobility import pack, unpack
from repro.naming import GuidFactory
from repro.net import marshal, unmarshal

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**100), max_value=2**100),
    st.floats(allow_nan=False),
    st.text(max_size=80),
    st.binary(max_size=80),
    st.builds(HtmlText, st.text(max_size=40)),
)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(
            st.one_of(st.text(max_size=10), st.integers(), st.booleans()),
            children,
            max_size=5,
        ),
    ),
    max_leaves=25,
)

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)

permissions = st.sampled_from(
    [Permission.GET, Permission.SET, Permission.INVOKE, Permission.META]
)

principals = st.builds(
    Principal,
    guid=st.text(alphabet=string.ascii_lowercase + ":", min_size=1, max_size=20),
    domain=st.one_of(
        st.just(""),
        st.text(alphabet=string.ascii_lowercase + ".", min_size=1, max_size=15)
        .map(lambda s: s.strip(".")),
    ),
)

acl_entries = st.builds(
    AclEntry,
    subject=st.one_of(
        st.just("*"),
        names.map(lambda n: f"domain:{n}"),
        names,
    ),
    permissions=st.sets(permissions, min_size=1).map(
        lambda flags: __import__("functools").reduce(lambda a, b: a | b, flags)
    ),
    decision=st.sampled_from([Decision.ALLOW, Decision.DENY]),
)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------


class TestMarshalProperties:
    @given(wire_values)
    @settings(max_examples=300)
    def test_round_trip_is_identity_up_to_tuples(self, value):
        assert unmarshal(marshal(value)) == _normalize(value)

    @given(wire_values)
    def test_double_round_trip_is_fixed_point(self, value):
        once = unmarshal(marshal(value))
        twice = unmarshal(marshal(once))
        assert once == twice

    @given(wire_values)
    def test_kind_preserved_for_scalars(self, value):
        back = unmarshal(marshal(value))
        try:
            original_kind = kind_of(value)
        except Exception:
            return
        assert kind_of(back) == original_kind

    @given(st.binary(max_size=200))
    def test_decoder_never_crashes_unmanaged(self, noise):
        # arbitrary bytes: either a clean MarshalError or (astronomically
        # unlikely) a valid message — never any other exception
        try:
            unmarshal(b"MRM1" + noise)
        except MarshalError:
            pass


def _normalize(value):
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return value


# ---------------------------------------------------------------------------
# coercion
# ---------------------------------------------------------------------------


class TestCoercionProperties:
    @given(scalars, st.sampled_from(list(Kind)))
    @settings(max_examples=300)
    def test_coercion_is_idempotent(self, value, kind):
        try:
            once = coerce(value, kind)
        except (CoercionError, Exception) as exc:
            if not isinstance(exc, CoercionError):
                raise
            return
        assert coerce(once, kind) == once

    @given(st.text(max_size=60).map(lambda s: " ".join(s.split())))
    def test_text_html_text_round_trip(self, text):
        # escaping into HTML and rendering back is the identity on
        # whitespace-normalised text (rendering collapses whitespace)
        html = coerce(text, Kind.HTML)
        assert coerce(html, Kind.TEXT) == text.strip()

    @given(st.integers(min_value=-(10**12), max_value=10**12))
    def test_integer_text_integer_round_trip(self, number):
        assert coerce(coerce(number, Kind.TEXT), Kind.INTEGER) == number


def coerce_or_none(value, kind):
    try:
        return coerce(value, kind)
    except CoercionError:
        return None


# ---------------------------------------------------------------------------
# ACL algebra
# ---------------------------------------------------------------------------


class TestAclProperties:
    @given(st.lists(acl_entries, max_size=8), principals, permissions)
    @settings(max_examples=300)
    def test_deny_dominates(self, entries, principal, permission):
        # SYSTEM is the one documented exception to deny-overrides: the
        # object's own runtime passes every check (and the guid alphabet
        # can genuinely generate the literal "mrom:system")
        assume(principal.guid != SYSTEM.guid)
        acl = AccessControlList(entries)
        denied_applicable = any(
            e.decision is Decision.DENY
            and e.applies_to(principal)
            and e.covers(permission)
            for e in entries
        )
        if denied_applicable:
            assert not acl.permits(principal, permission)

    @given(st.lists(acl_entries, max_size=8), principals, permissions)
    def test_adding_a_grant_never_shrinks_access_for_others(
        self, entries, principal, permission
    ):
        acl = AccessControlList(entries)
        before = acl.permits(principal, permission)
        acl.grant("someone-else-entirely", Permission.ALL)
        assert acl.permits(principal, permission) == before

    @given(st.lists(acl_entries, max_size=8))
    def test_describe_round_trip_preserves_decisions(self, entries):
        acl = AccessControlList(entries)
        rebuilt = AccessControlList.from_description(acl.describe())
        probe_principals = [
            Principal("alice", "a.b"),
            Principal("bob", ""),
        ] + [Principal(e.subject, "") for e in entries if ":" not in e.subject]
        for principal in probe_principals:
            for permission in (
                Permission.GET, Permission.SET, Permission.INVOKE, Permission.META,
            ):
                assert rebuilt.permits(principal, permission) == acl.permits(
                    principal, permission
                )


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------


class TestContainerProperties:
    @given(st.lists(names, unique=True, min_size=1, max_size=20))
    def test_insertion_order_is_enumeration_order(self, item_names):
        container = ItemContainer("p")
        for name in item_names:
            container.add(DataItem(name, 0))
        assert list(container.names()) == item_names

    @given(
        st.lists(names, unique=True, min_size=2, max_size=20),
        st.data(),
    )
    def test_remove_is_inverse_of_add(self, item_names, data):
        container = ItemContainer("p")
        for name in item_names:
            container.add(DataItem(name, 0))
        victim = data.draw(st.sampled_from(item_names))
        container.remove(victim)
        assert victim not in container
        assert list(container.names()) == [n for n in item_names if n != victim]


# ---------------------------------------------------------------------------
# guids
# ---------------------------------------------------------------------------


class TestGuidProperties:
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=1000))
    def test_uniqueness_across_witnessing(self, count, noise_clock):
        mint = GuidFactory("site")
        minted = set()
        for index in range(count):
            if index % 3 == 0:
                mint.witness(noise_clock)
            minted.add(mint.fresh())
        assert len(minted) == count


# ---------------------------------------------------------------------------
# pack/unpack behavioural equivalence
# ---------------------------------------------------------------------------


class TestPackProperties:
    @given(
        st.lists(
            st.tuples(names, st.integers(min_value=-1000, max_value=1000)),
            unique_by=lambda pair: pair[0],
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_unpacked_object_computes_the_same(self, fields):
        owner = Principal("mrom://origin/1.1", "dom", "owner")
        obj = MROMObject(guid="mrom://origin/3.3", owner=owner)
        for name, value in fields:
            obj.define_fixed_data(name, value)
        total_expr = " + ".join(f"self.get({name!r})" for name, _ in fields)
        obj.define_fixed_method("total", f"return {total_expr}")
        obj.seal()
        expected = sum(value for _, value in fields)
        assert obj.invoke("total", caller=owner) == expected
        copy = unpack(pack(obj))
        assert copy.invoke("total", caller=owner) == expected


# ---------------------------------------------------------------------------
# exactly-once migration under random fault schedules
# ---------------------------------------------------------------------------


class TestRedeliveryProperties:
    @given(
        st.lists(
            st.tuples(names, st.integers(min_value=-1000, max_value=1000)),
            unique_by=lambda pair: pair[0],
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=50)
    def test_marshalled_package_survives_redelivery(self, fields, deliveries):
        """Re-sending one package any number of times (the retry/duplicate
        case) always reconstructs behaviourally identical objects."""
        owner = Principal("mrom://origin/1.1", "dom", "owner")
        obj = MROMObject(guid="mrom://origin/5.5", owner=owner)
        for name, value in fields:
            obj.define_fixed_data(name, value)
        total_expr = " + ".join(f"self.get({name!r})" for name, _ in fields)
        obj.define_fixed_method("total", f"return {total_expr}")
        obj.seal()
        wire = marshal(pack(obj))
        expected = sum(value for _, value in fields)
        for _ in range(deliveries):  # each delivery decodes independently
            copy = unpack(unmarshal(wire))
            assert copy.invoke("total", caller=owner) == expected
            assert copy.guid == obj.guid


@pytest.mark.chaos
class TestChaosProperties:
    """The acceptance bar: zero lost or duplicated objects across 100
    random fault schedules with drop rates up to 30%, random itineraries
    (the scenario seeds its route shuffle), plus crash and link flaps."""

    def test_exactly_one_live_copy_across_100_schedules(self):
        from repro.faults import run_chaos_scenario

        violations = []
        for seed in range(100):
            report = run_chaos_scenario(
                seed=seed,
                drop=(seed % 4) * 0.1,  # 0%, 10%, 20%, 30%
                dup=(seed % 3) * 0.1,
                reorder=(seed % 2) * 0.05,
            )
            if not report.ok:
                violations.append(
                    (seed, report.live_copies, report.agent_at,
                     report.unresolved, report.stray_objects)
                )
        assert violations == []
