"""The audit log: every outcome accounted for."""

import pytest

from repro.core import (
    AccessDeniedError,
    MROMObject,
    PreProcedureVeto,
    Principal,
    owner_only,
)
from repro.security import AuditKind, AuditLog, audited_invoke


@pytest.fixture
def owner():
    return Principal("mrom://h/1.1", "dom", "owner")


@pytest.fixture
def guarded(owner):
    obj = MROMObject(display_name="guarded", owner=owner)
    obj.define_fixed_data("x", 0)
    obj.define_fixed_method("bump", "self.set('x', self.get('x') + 1)\nreturn self.get('x')")
    obj.define_fixed_method("secret", "return 42", acl=owner_only(owner))
    obj.define_fixed_method("picky", "return 1", pre="return False")
    obj.define_fixed_method("broken", "return args[0] / 0")
    obj.seal()
    return obj


class TestAuditedInvoke:
    def test_success_recorded(self, guarded, owner):
        log = AuditLog()
        assert audited_invoke(guarded, log, "bump", caller=owner) == 1
        events = log.events(AuditKind.INVOCATION)
        assert len(events) == 1
        assert events[0].detail == "bump"
        assert events[0].actor == owner.guid

    def test_denial_recorded_and_reraised(self, guarded):
        log = AuditLog()
        stranger = Principal("mrom://evil/1.1", "evil", "stranger")
        with pytest.raises(AccessDeniedError):
            audited_invoke(guarded, log, "secret", caller=stranger)
        denials = log.denials()
        assert len(denials) == 1
        assert denials[0].actor == stranger.guid

    def test_veto_recorded(self, guarded, owner):
        log = AuditLog()
        with pytest.raises(PreProcedureVeto):
            audited_invoke(guarded, log, "picky", caller=owner)
        assert log.counts() == {"veto": 1}

    def test_error_recorded(self, guarded, owner):
        log = AuditLog()
        with pytest.raises(ZeroDivisionError):
            audited_invoke(guarded, log, "broken", [1], caller=owner)
        assert log.counts() == {"error": 1}


class TestLogQueries:
    def test_by_actor(self, guarded, owner):
        log = AuditLog()
        other = Principal("mrom://h/2.2", "dom", "other")
        audited_invoke(guarded, log, "bump", caller=owner)
        audited_invoke(guarded, log, "bump", caller=other)
        audited_invoke(guarded, log, "bump", caller=owner)
        assert len(log.by_actor(owner.guid)) == 2
        assert len(log.by_actor(other.guid)) == 1

    def test_clock_source(self, guarded, owner):
        ticks = iter([1.5, 2.5])
        log = AuditLog(clock=lambda: next(ticks))
        audited_invoke(guarded, log, "bump", caller=owner)
        audited_invoke(guarded, log, "bump", caller=owner)
        times = [event.time for event in log]
        assert times == [1.5, 2.5]

    def test_sink_receives_events(self, guarded, owner):
        log = AuditLog()
        seen = []
        log.add_sink(seen.append)
        audited_invoke(guarded, log, "bump", caller=owner)
        assert len(seen) == 1
        assert seen[0].kind is AuditKind.INVOCATION

    def test_manual_mobility_events(self):
        log = AuditLog()
        log.record(AuditKind.ARRIVAL, "mrom://g/1.1", "siteA")
        log.record(AuditKind.DEPARTURE, "mrom://g/1.1", "siteA")
        log.record(AuditKind.REJECTION, "mrom://g/2.2", "siteB", detail="policy")
        assert log.counts() == {"arrival": 1, "departure": 1, "rejection": 1}

    def test_str_rendering(self, guarded, owner):
        log = AuditLog()
        audited_invoke(guarded, log, "bump", caller=owner)
        rendered = str(log.events()[0])
        assert "invocation" in rendered and "bump" in rendered
