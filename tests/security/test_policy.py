"""Host/guest policies: admission control and its bypass-resistance."""

import pytest

from repro.core import MROMObject, Principal
from repro.core.errors import PolicyViolationError
from repro.mobility import pack
from repro.security import GuestPolicy, HostPolicy


@pytest.fixture
def owner():
    return Principal("mrom://origin/1.1", "technion.ee", "origin")


def packaged(owner, domain="technion.ee", methods=1, tower=0, source="return 1"):
    obj = MROMObject(
        guid="mrom://origin/5.5",
        domain=domain,
        owner=owner,
        extensible_meta=bool(tower),
    )
    for index in range(methods):
        obj.define_fixed_method(f"op{index}", source)
    obj.seal()
    for _ in range(tower):
        obj.invoke("addMethod", ["invoke", "return ctx.proceed()"], caller=owner)
    return pack(obj)


class TestHostPolicy:
    def test_default_admits_wellformed_object(self, owner):
        HostPolicy().admit(packaged(owner), "somewhere")

    def test_domain_allow_list(self, owner):
        policy = HostPolicy(allowed_domains=("technion",))
        policy.admit(packaged(owner, domain="technion.ee"), "x")
        with pytest.raises(PolicyViolationError):
            policy.admit(packaged(owner, domain="evil.example"), "x")

    def test_domain_matching_is_segment_wise(self, owner):
        policy = HostPolicy(allowed_domains=("technion",))
        with pytest.raises(PolicyViolationError):
            policy.admit(packaged(owner, domain="techniom.fake"), "x")

    def test_item_count_bound(self, owner):
        policy = HostPolicy(max_items=3)
        policy.admit(packaged(owner, methods=3), "x")
        with pytest.raises(PolicyViolationError):
            policy.admit(packaged(owner, methods=4), "x")

    def test_tower_depth_bound(self, owner):
        policy = HostPolicy(max_tower_depth=1)
        policy.admit(packaged(owner, tower=1), "x")
        with pytest.raises(PolicyViolationError):
            policy.admit(packaged(owner, tower=2), "x")

    def test_banned_names(self, owner):
        policy = HostPolicy(banned_method_names=frozenset({"op0"}))
        with pytest.raises(PolicyViolationError):
            policy.admit(packaged(owner), "x")

    def test_hostile_code_rejected_at_admission(self, owner):
        from repro.core import SandboxViolation

        package = packaged(owner)
        package["fixed_methods"][0]["components"]["body"]["source"] = "import os"
        with pytest.raises(SandboxViolation):
            HostPolicy().admit(package, "x")

    def test_code_size_bound(self, owner):
        policy = HostPolicy(max_code_bytes=10)
        package = packaged(owner, source="x = 'aaaaaaaaaaaaaaaaaaaa'\nreturn x")
        with pytest.raises(PolicyViolationError):
            policy.admit(package, "x")

    def test_lazy_verification_mode_skips_code_check(self, owner):
        package = packaged(owner)
        package["fixed_methods"][0]["components"]["body"]["source"] = "import os"
        HostPolicy(verify_code_eagerly=False).admit(package, "x")

    def test_policy_is_callable(self, owner):
        HostPolicy()(packaged(owner), "x")


class TestGuestPolicy:
    def test_trusted_domains(self):
        guest = GuestPolicy(trusted_domains=("technion",))
        guest.check_host("technion.ee")
        with pytest.raises(PolicyViolationError):
            guest.check_host("evil.example")

    def test_empty_trust_list_trusts_everyone(self):
        GuestPolicy().check_host("anywhere.at.all")

    def test_binding_filter(self):
        guest = GuestPolicy(accepted_bindings=("clock", "logger"))
        offered = {"clock": 1, "logger": 2, "filesystem": 3}
        assert guest.filter_bindings(offered) == {"clock": 1, "logger": 2}

    def test_no_accepted_bindings_means_none(self):
        assert GuestPolicy().filter_bindings({"anything": 1}) == {}
